//! Custom workload: multi-page objects with sub-object sharing.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```
//!
//! The paper's database model (§3.1) lets objects span several atoms and
//! *share* atoms with other objects of the same class (Figure 2). This
//! example builds a database of 4-page objects with heavy sharing and
//! compares two-phase locking against callback locking as the write
//! probability grows: page-level locks on shared atoms create conflicts
//! between logically distinct objects, which hurts the algorithms that
//! retain or block on locks.

use ccdb::model::DatabaseSpec;
use ccdb::{run_simulation, Algorithm, SimConfig, SimDuration, TxnParams};

fn main() {
    // 10 classes of 50 atoms; each object covers 4 consecutive atoms, so
    // on average every atom is shared by 4 objects.
    let db = DatabaseSpec::uniform(10, 50, 4, 1.0);
    let txn = TxnParams {
        min_xact_size: 2,
        max_xact_size: 6, // objects are 4 pages, so 8-24 page reads per txn
        inter_xact_set_size: 10,
        inter_xact_loc: 0.5,
        ..TxnParams::short_batch()
    };

    println!(
        "database: {} classes x {} atoms, {}-page objects (atoms shared by ~4 objects)\n",
        db.n_classes(),
        db.class(ccdb::model::ClassId(0)).n_pages,
        db.class(ccdb::model::ClassId(0)).object_size
    );
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>14}",
        "W", "2PL resp(s)", "CB resp(s)", "2PL deadlocks", "CB deadlocks"
    );

    for prob_write in [0.0, 0.1, 0.2, 0.4] {
        let mut row = Vec::new();
        for alg in [Algorithm::TwoPhase { inter: true }, Algorithm::Callback] {
            let mut cfg = SimConfig::table5(alg)
                .with_clients(20)
                .with_horizon(SimDuration::from_secs(20), SimDuration::from_secs(200));
            cfg.db = db.clone();
            cfg.txn = TxnParams {
                prob_write,
                ..txn.clone()
            };
            let r = run_simulation(cfg);
            row.push((r.resp_time_mean, r.lock_stats.deadlocks));
        }
        println!(
            "{:>6.2} {:>12.3} {:>12.3} {:>14} {:>14}",
            prob_write, row[0].0, row[1].0, row[0].1, row[1].1
        );
    }

    println!(
        "\nShared atoms turn object-level contention into page-level lock conflicts; \
         the deadlock counts show how quickly multi-page objects escalate under \
         update-heavy workloads."
    );
}
