//! Capacity planning: how many CAD workstations can one object server
//! support before interactive response degrades?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```
//!
//! The paper's motivating setting is persistent programming languages and
//! object-oriented DBMSs: engineering workstations caching design objects
//! from a shared server. This example grows the client population until
//! the mean transaction response time exceeds a 1.5 s service objective,
//! for each candidate consistency algorithm, and reports the supportable
//! population — exactly the question a deployment engineer would ask of
//! this simulator.

use ccdb::{run_simulation, Algorithm, SimConfig, SimDuration};

const SLO_SECONDS: f64 = 1.5;

fn main() {
    // Engineering workload: designers revisit their own working set
    // (high locality), updating a fifth of what they touch.
    let locality = 0.75;
    let prob_write = 0.2;

    println!("service objective: mean response time <= {SLO_SECONDS} s");
    println!("workload: short transactions, locality {locality}, write probability {prob_write}\n");

    for alg in [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ] {
        let mut supported = 0;
        let mut last_resp = 0.0;
        print!("{:<34}", alg.name());
        for clients in [2, 5, 10, 15, 20, 25, 30, 40, 50, 65, 80] {
            let cfg = SimConfig::table5(alg)
                .with_clients(clients)
                .with_locality(locality)
                .with_prob_write(prob_write)
                .with_horizon(SimDuration::from_secs(20), SimDuration::from_secs(150));
            let r = run_simulation(cfg);
            if r.resp_time_mean <= SLO_SECONDS {
                supported = clients;
                last_resp = r.resp_time_mean;
            } else {
                break;
            }
        }
        println!("supports ~{supported:>3} clients (at {last_resp:.3} s)");
    }

    println!(
        "\nThe retained read locks of callback locking avoid a server round trip for \
         every working-set hit, so the same server sustains a larger population when \
         locality is high."
    );
}
