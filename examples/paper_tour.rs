//! Paper tour: check each of the paper's §6 conclusions with a live
//! mini-experiment and print a verdict.
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```
//!
//! Uses shortened measurement windows so the whole tour takes well under a
//! minute; the bench harnesses regenerate the full figures.

use ccdb::core::experiments;
use ccdb::{run_simulation, Algorithm, RunReport, SimConfig, SimDuration};

fn run(cfg: SimConfig) -> RunReport {
    run_simulation(cfg.with_horizon(SimDuration::from_secs(15), SimDuration::from_secs(120)))
}

fn verdict(claim: &str, holds: bool, detail: String) {
    println!(
        "{} {claim}\n      {detail}\n",
        if holds { "  ok " } else { " MISS" }
    );
}

fn main() {
    println!("Wang & Rowe (SIGMOD 1991), conclusions replayed live:\n");

    // 1. Inter-transaction caching beats intra when locality is high.
    {
        let intra = run(experiments::caching_verification(
            Algorithm::TwoPhase { inter: false },
            30,
            0.5,
            0.0,
        ));
        let inter = run(experiments::caching_verification(
            Algorithm::TwoPhase { inter: true },
            30,
            0.5,
            0.0,
        ));
        let gain = 1.0 - inter.resp_time_mean / intra.resp_time_mean;
        verdict(
            "inter-transaction caching beats intra at high locality (paper: up to ~30%)",
            gain > 0.15,
            format!(
                "B2PL {:.2}s vs C2PL {:.2}s -> {:.0}% better",
                intra.resp_time_mean,
                inter.resp_time_mean,
                gain * 100.0
            ),
        );
    }

    // 2. Two-phase locking dominates certification under the ACL setting.
    {
        let tp = run(experiments::acl_verification(
            Algorithm::TwoPhase { inter: true },
            100,
        ));
        let occ = run(experiments::acl_verification(
            Algorithm::Certification { inter: true },
            100,
        ));
        verdict(
            "2PL outperforms certification with limited resources (ACL, MPL 100)",
            tp.throughput >= occ.throughput,
            format!(
                "2PL {:.2} txn/s vs certification {:.2} txn/s ({} validation aborts)",
                tp.throughput, occ.throughput, occ.validation_aborts
            ),
        );
    }

    // 3. Callback locking wins when inter-transaction locality is high.
    {
        let tp = run(experiments::short_txn(
            Algorithm::TwoPhase { inter: true },
            30,
            0.75,
            0.0,
        ));
        let cb = run(experiments::short_txn(Algorithm::Callback, 30, 0.75, 0.0));
        verdict(
            "callback locking dominates at high locality (paper: ~35% over 2PL)",
            cb.resp_time_mean < tp.resp_time_mean * 0.8,
            format!(
                "2PL {:.2}s vs CB {:.2}s; CB sent {:.1} msgs/commit vs 2PL {:.1}",
                tp.resp_time_mean, cb.resp_time_mean, cb.msgs_per_commit, tp.msgs_per_commit
            ),
        );
    }

    // 4. Notification does not pay when the server is the bottleneck.
    {
        let nw = run(experiments::short_txn(
            Algorithm::NoWait { notify: false },
            30,
            0.05,
            0.5,
        ));
        let nwn = run(experiments::short_txn(
            Algorithm::NoWait { notify: true },
            30,
            0.05,
            0.5,
        ));
        verdict(
            "notification wastes a saturated server (low locality, many clients)",
            nwn.resp_time_mean >= nw.resp_time_mean * 0.95,
            format!(
                "NW {:.2}s vs NWN {:.2}s ({} pages pushed for nothing)",
                nw.resp_time_mean, nwn.resp_time_mean, nwn.updates_pushed
            ),
        );
    }

    // 5. ...but pays once the network and server are fast (disk-bound).
    {
        let nw = run(experiments::fast_net_fast_server(
            Algorithm::NoWait { notify: false },
            50,
            0.25,
            0.5,
        ));
        let nwn = run(experiments::fast_net_fast_server(
            Algorithm::NoWait { notify: true },
            50,
            0.25,
            0.5,
        ));
        verdict(
            "with a fast net + server, notification rehabilitates no-wait",
            nwn.stale_aborts < nw.stale_aborts && nwn.resp_time_mean <= nw.resp_time_mean * 1.05,
            format!(
                "stale aborts {} -> {}, response {:.2}s -> {:.2}s (disks at {:.0}%)",
                nw.stale_aborts,
                nwn.stale_aborts,
                nw.resp_time_mean,
                nwn.resp_time_mean,
                nwn.data_disk_util * 100.0
            ),
        );
    }

    // 6. Interactive transactions: think time flattens everything at W=0.
    {
        let cfg = experiments::interactive(Algorithm::TwoPhase { inter: true }, 10, 0.25, 0.0)
            .with_horizon(SimDuration::from_secs(60), SimDuration::from_secs(900));
        let r = run_simulation(cfg);
        verdict(
            "interactive response is dominated by the ~56s of think time",
            (45.0..70.0).contains(&r.resp_time_mean),
            format!(
                "measured {:.1}s mean ({} commits, server CPU {:.0}%)",
                r.resp_time_mean,
                r.commits,
                r.server_cpu_util * 100.0
            ),
        );
    }

    println!("full figures: cargo bench --workspace   (see EXPERIMENTS.md)");
}
