//! Quickstart: simulate one configuration and read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates 30 client workstations running short batch transactions
//! against a page server under callback locking — the algorithm the paper
//! recommends when inter-transaction locality is high — and prints every
//! metric the simulator reports.

use ccdb::{run_simulation, Algorithm, SimConfig, SimDuration};

fn main() {
    // The paper's Table 5 baseline: 8 MB database over 2 data disks, 2 MIPS
    // server, 100-page client caches, 400-page server buffer pool.
    let cfg = SimConfig::table5(Algorithm::Callback)
        .with_clients(30)
        .with_locality(0.75) // 75% of reads hit the recent working set
        .with_prob_write(0.2) // each page of a read object is updated 20% of the time
        .with_horizon(SimDuration::from_secs(30), SimDuration::from_secs(300));

    println!(
        "simulating {} with {} clients (locality {}, write probability {}) ...",
        cfg.algorithm.name(),
        cfg.sys.n_clients,
        cfg.txn.inter_xact_loc,
        cfg.txn.prob_write
    );

    let r = run_simulation(cfg);

    println!();
    println!(
        "mean response time   {:.3} s (±{:.3} at 95%)",
        r.resp_time_mean, r.resp_time_ci95
    );
    println!("throughput           {:.2} committed txn/s", r.throughput);
    println!("commits / aborts     {} / {}", r.commits, r.aborts);
    println!("restarts per commit  {:.3}", r.restarts_per_commit);
    println!("messages per commit  {:.1}", r.msgs_per_commit);
    println!();
    println!("server CPU           {:.1}%", r.server_cpu_util * 100.0);
    println!("client CPU (mean)    {:.1}%", r.client_cpu_util * 100.0);
    println!("network              {:.1}%", r.net_util * 100.0);
    println!("data disk (max)      {:.1}%", r.data_disk_util * 100.0);
    println!("log disk             {:.1}%", r.log_disk_util * 100.0);
    println!();
    println!("client cache hits    {:.1}%", r.cache_hit_ratio * 100.0);
    println!("server buffer hits   {:.1}%", r.buffer_hit_ratio * 100.0);
    println!(
        "lock requests        {} ({} blocked, {} deadlocks, {} callbacks)",
        r.lock_stats.requests, r.lock_stats.blocks, r.lock_stats.deadlocks, r.lock_stats.callbacks
    );
    println!("simulation events    {}", r.events);
}
