//! Mixed workload: interactive designers sharing a server with nightly
//! batch reports (paper §3.2: "a simulation run can simulate ... a mix of
//! transactions belonging to different types").
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```
//!
//! 80% of transactions are interactive edits (think time between
//! operations, small read sets, frequent updates) and 20% are large
//! read-only batch scans. The per-type response-time breakdown shows how
//! each algorithm treats the two populations.

use ccdb::{run_simulation, Algorithm, SimConfig, SimDuration, TxnParams};

fn main() {
    let interactive_edit = TxnParams {
        min_xact_size: 2,
        max_xact_size: 6,
        prob_write: 0.4,
        update_delay: SimDuration::from_millis(500),
        internal_delay: SimDuration::from_millis(200),
        external_delay: SimDuration::from_secs(2),
        inter_xact_set_size: 20,
        inter_xact_loc: 0.6,
    };
    let batch_scan = TxnParams {
        min_xact_size: 20,
        max_xact_size: 40,
        prob_write: 0.0,
        update_delay: SimDuration::ZERO,
        internal_delay: SimDuration::ZERO,
        external_delay: SimDuration::from_secs(5),
        inter_xact_set_size: 20,
        inter_xact_loc: 0.1,
    };

    println!("mix: 80% interactive edits (2-6 objects, W=0.4), 20% batch scans (20-40 objects, read-only)\n");
    println!(
        "{:<6} {:>10} {:>14} {:>13} {:>9} {:>8}",
        "alg", "tput(/s)", "edit resp(s)", "scan resp(s)", "aborts", "p99(s)"
    );

    for alg in [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ] {
        let cfg = SimConfig::table5(alg)
            .with_clients(20)
            .with_named_txn_mix(vec![
                ("edit".to_string(), interactive_edit.clone(), 0.8),
                ("scan".to_string(), batch_scan.clone(), 0.2),
            ])
            .with_horizon(SimDuration::from_secs(30), SimDuration::from_secs(300));
        let r = run_simulation(cfg);
        let edit = r.resp_by_type.first().map(|t| t.resp_mean_s).unwrap_or(0.0);
        let scan = r.resp_by_type.get(1).map(|t| t.resp_mean_s).unwrap_or(0.0);
        println!(
            "{:<6} {:>10.2} {:>14.3} {:>13.3} {:>9} {:>8.3}",
            r.algorithm.label(),
            r.throughput,
            edit,
            scan,
            r.aborts,
            r.resp_p99
        );
    }

    println!(
        "\nInteractive edits carry ~0.7s of think time per operation, so their mean \
         response dominates; the scans surface in the tail instead — no-wait's restarts \
         of long stale-read scans inflate its p99 well past the blocking algorithms'."
    );
}
