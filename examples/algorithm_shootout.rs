//! Algorithm shootout: compare all seven algorithm configurations on one
//! workload and print a recommendation.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout -- [locality] [prob_write] [clients]
//! ```
//!
//! Defaults reproduce the paper's most interesting regime — medium
//! locality with moderate updates — where the choice genuinely matters.

use ccdb::{run_simulation, Algorithm, RunReport, SimConfig, SimDuration};

fn main() {
    let mut args = std::env::args().skip(1);
    let locality: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.5);
    let prob_write: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.2);
    let clients: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);

    let algorithms = [
        Algorithm::TwoPhase { inter: false },
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: false },
        Algorithm::Certification { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    println!("workload: {clients} clients, locality {locality}, write probability {prob_write}\n");
    println!(
        "{:<6} {:>9} {:>9} {:>8} {:>9} {:>8} {:>7}",
        "alg", "resp(s)", "tput(/s)", "aborts", "msgs/txn", "cpuS%", "hit%"
    );

    let mut best: Option<RunReport> = None;
    for alg in algorithms {
        let cfg = SimConfig::table5(alg)
            .with_clients(clients)
            .with_locality(locality)
            .with_prob_write(prob_write)
            .with_horizon(SimDuration::from_secs(30), SimDuration::from_secs(300));
        let r = run_simulation(cfg);
        println!(
            "{:<6} {:>9.3} {:>9.2} {:>8} {:>9.1} {:>8.1} {:>7.1}",
            r.algorithm.label(),
            r.resp_time_mean,
            r.throughput,
            r.aborts,
            r.msgs_per_commit,
            r.server_cpu_util * 100.0,
            r.cache_hit_ratio * 100.0
        );
        let better = match &best {
            None => true,
            Some(b) => r.resp_time_mean < b.resp_time_mean,
        };
        if better {
            best = Some(r);
        }
    }

    let best = best.expect("at least one algorithm ran");
    println!(
        "\nrecommendation: {} ({:.3} s mean response time)",
        best.algorithm.name(),
        best.resp_time_mean
    );
    println!(
        "paper's guidance: callback locking when locality is high (or medium with few \
         updates); two-phase locking otherwise; no-wait + notification when the network \
         and server are both fast."
    );
}
