//! Replicated runs: independent replications with cross-seed confidence
//! intervals — the standard output-analysis methodology for terminating
//! simulations (the per-run CI in [`RunReport`] treats transaction
//! response times as independent, which under heavy contention they are
//! not; replication does not need that assumption).
//!
//! Two consumption styles:
//!
//! * [`run_replicated`] keeps every [`RunReport`] (callers that inspect
//!   individual replications);
//! * [`run_replicated_folded`] / [`ReplicationAccumulator`] fold each
//!   report into O(1) aggregate state as it completes, so arbitrarily
//!   long replication series never buffer all reports in memory — this
//!   is the path the sweep orchestrator and the CLI use.

use ccdb_des::Tally;
use ccdb_obs::{MergedSeries, MergedSnapshot, SeriesMerger, SnapshotMerger};

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::runner::{run_simulation, run_simulation_observed, ObsOptions};
use crate::trace::Trace;

/// Streaming aggregation of replications: push per-run reports, read the
/// cross-seed aggregate at any point. Memory is O(1) in the number of
/// replications.
#[derive(Clone, Debug, Default)]
pub struct ReplicationAccumulator {
    resp: Tally,
    tput: Tally,
    commits: u64,
    aborts: u64,
}

impl ReplicationAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        ReplicationAccumulator::default()
    }

    /// Fold one replication's report in.
    pub fn push(&mut self, r: &RunReport) {
        self.push_values(r.resp_time_mean, r.throughput, r.commits, r.aborts);
    }

    /// Fold one replication's headline values in without a full
    /// [`RunReport`] — the replay path for checkpointed sweep records,
    /// which persist exactly these four quantities. Folding replayed
    /// values produces bit-identical aggregates to folding the original
    /// reports (the JSONL writer uses shortest-round-trip floats).
    pub fn push_values(&mut self, resp_time_mean: f64, throughput: f64, commits: u64, aborts: u64) {
        self.resp.record(resp_time_mean);
        self.tput.record(throughput);
        self.commits += commits;
        self.aborts += aborts;
    }

    /// Number of replications folded so far.
    pub fn count(&self) -> u32 {
        self.resp.count() as u32
    }

    /// The cross-replication aggregate at this point.
    pub fn aggregate(&self) -> ReplicationAggregate {
        ReplicationAggregate {
            replications: self.count(),
            resp_time_mean: self.resp.mean(),
            resp_time_ci95: self.resp.ci95_half_width(),
            throughput_mean: self.tput.mean(),
            throughput_ci95: self.tput.ci95_half_width(),
            commits: self.commits,
            aborts: self.aborts,
        }
    }
}

/// Cross-seed aggregate of `replications` independent runs, without the
/// per-run reports (see [`ReplicatedReport`] for the buffered variant).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicationAggregate {
    /// Number of replications aggregated.
    pub replications: u32,
    /// Mean of the per-run mean response times.
    pub resp_time_mean: f64,
    /// 95% half-width of the response-time mean across replications.
    pub resp_time_ci95: f64,
    /// Mean throughput across replications.
    pub throughput_mean: f64,
    /// 95% half-width of the throughput across replications.
    pub throughput_ci95: f64,
    /// Total commits across replications.
    pub commits: u64,
    /// Total aborts across replications.
    pub aborts: u64,
}

impl ReplicationAggregate {
    /// Relative half-width of the response-time estimate (0 when the mean
    /// is 0); the usual stopping criterion for adding replications.
    pub fn resp_relative_precision(&self) -> f64 {
        if self.resp_time_mean == 0.0 {
            0.0
        } else {
            self.resp_time_ci95 / self.resp_time_mean
        }
    }
}

/// Aggregate of `n` independent replications of one configuration,
/// retaining every per-run report.
#[derive(Clone, Debug)]
pub struct ReplicatedReport {
    /// The reports of the individual replications, in seed order.
    pub runs: Vec<RunReport>,
    /// Mean of the per-run mean response times.
    pub resp_time_mean: f64,
    /// 95% half-width of the response-time mean across replications.
    pub resp_time_ci95: f64,
    /// Mean throughput across replications.
    pub throughput_mean: f64,
    /// 95% half-width of the throughput across replications.
    pub throughput_ci95: f64,
    /// Total commits across replications.
    pub commits: u64,
    /// Total aborts across replications.
    pub aborts: u64,
}

impl ReplicatedReport {
    /// Relative half-width of the response-time estimate (0 when the mean
    /// is 0); the usual stopping criterion for adding replications.
    pub fn resp_relative_precision(&self) -> f64 {
        if self.resp_time_mean == 0.0 {
            0.0
        } else {
            self.resp_time_ci95 / self.resp_time_mean
        }
    }
}

/// The seed of replication `k` of a base configuration: `cfg.seed + k`
/// (wrapping). Centralised so every replication consumer — serial,
/// folded, and the parallel sweep — derives identical seeds.
pub fn replication_seed(base_seed: u64, k: u32) -> u64 {
    base_seed.wrapping_add(k as u64)
}

/// Run `replications` independent copies of `cfg`, differing only in the
/// seed (derived as `cfg.seed + k`), and aggregate, keeping every report.
pub fn run_replicated(cfg: SimConfig, replications: u32) -> ReplicatedReport {
    assert!(replications > 0, "need at least one replication");
    let base_seed = cfg.seed;
    let mut runs = Vec::with_capacity(replications as usize);
    let mut acc = ReplicationAccumulator::new();
    for k in 0..replications {
        let r = run_simulation(cfg.clone().with_seed(replication_seed(base_seed, k)));
        acc.push(&r);
        runs.push(r);
    }
    let agg = acc.aggregate();
    ReplicatedReport {
        runs,
        resp_time_mean: agg.resp_time_mean,
        resp_time_ci95: agg.resp_time_ci95,
        throughput_mean: agg.throughput_mean,
        throughput_ci95: agg.throughput_ci95,
        commits: agg.commits,
        aborts: agg.aborts,
    }
}

/// [`run_replicated`] without buffering: each report is folded into the
/// accumulator and dropped, so memory stays O(1) however long the series.
pub fn run_replicated_folded(cfg: SimConfig, replications: u32) -> ReplicationAggregate {
    assert!(replications > 0, "need at least one replication");
    let base_seed = cfg.seed;
    let mut acc = ReplicationAccumulator::new();
    for k in 0..replications {
        acc.push(&run_simulation(
            cfg.clone().with_seed(replication_seed(base_seed, k)),
        ));
    }
    acc.aggregate()
}

/// Cross-replication aggregate carrying the full observability fold:
/// headline aggregate, merged end-of-run metrics, and (when sampling was
/// enabled) the merged time series.
#[derive(Clone, Debug)]
pub struct ReplicatedObserved {
    /// Headline cross-seed aggregate (same fold as
    /// [`run_replicated_folded`]).
    pub aggregate: ReplicationAggregate,
    /// Every registered metric merged across replications.
    pub metrics: MergedSnapshot,
    /// Merged metric trajectories; `None` when `obs.sample_interval` was
    /// unset.
    pub series: Option<MergedSeries>,
}

/// [`run_replicated_folded`] with the observability fold: each
/// replication's end-of-run snapshot goes through a
/// [`SnapshotMerger`] and, when sampling is enabled, its series through
/// a [`SeriesMerger`] — O(1) memory in the number of replications.
pub fn run_replicated_observed(
    cfg: SimConfig,
    replications: u32,
    obs: ObsOptions,
) -> ReplicatedObserved {
    assert!(replications > 0, "need at least one replication");
    let base_seed = cfg.seed;
    let mut acc = ReplicationAccumulator::new();
    let mut snapshots = SnapshotMerger::new();
    let mut series = SeriesMerger::new();
    for k in 0..replications {
        let observed = run_simulation_observed(
            cfg.clone().with_seed(replication_seed(base_seed, k)),
            Trace::disabled(),
            obs.clone(),
        );
        acc.push(&observed.report);
        snapshots.push(&observed.snapshot);
        if let Some(set) = &observed.series {
            series.push(set);
        }
    }
    ReplicatedObserved {
        aggregate: acc.aggregate(),
        metrics: snapshots.finish().expect("at least one replication ran"),
        series: series.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use ccdb_des::SimDuration;

    fn quick() -> SimConfig {
        SimConfig::table5(Algorithm::TwoPhase { inter: true })
            .with_clients(5)
            .with_locality(0.5)
            .with_prob_write(0.2)
            .with_horizon(SimDuration::from_secs(2), SimDuration::from_secs(15))
    }

    #[test]
    fn replications_differ_but_agree_statistically() {
        let rep = run_replicated(quick(), 4);
        assert_eq!(rep.runs.len(), 4);
        // Distinct seeds -> distinct trajectories.
        assert!(
            rep.runs.windows(2).any(|w| w[0].events != w[1].events),
            "replications must not be identical"
        );
        // But the same regime.
        assert!(rep.resp_relative_precision() < 0.5);
        assert_eq!(rep.commits, rep.runs.iter().map(|r| r.commits).sum::<u64>());
    }

    #[test]
    fn single_replication_has_no_ci() {
        let rep = run_replicated(quick(), 1);
        assert_eq!(rep.resp_time_ci95, 0.0);
        assert_eq!(rep.runs.len(), 1);
    }

    #[test]
    fn ci_shrinks_with_more_replications() {
        let few = run_replicated(quick(), 2);
        let many = run_replicated(quick(), 6);
        // Not guaranteed pointwise, but with identical seeds prefixes the
        // 6-rep CI uses the same spread over more samples.
        assert!(many.resp_time_ci95 <= few.resp_time_ci95 * 2.0);
        assert!(many.resp_time_mean > 0.0);
    }

    #[test]
    fn folded_path_matches_buffered_aggregates() {
        let buffered = run_replicated(quick(), 3);
        let folded = run_replicated_folded(quick(), 3);
        assert_eq!(folded.replications, 3);
        assert_eq!(folded.resp_time_mean, buffered.resp_time_mean);
        assert_eq!(folded.resp_time_ci95, buffered.resp_time_ci95);
        assert_eq!(folded.throughput_mean, buffered.throughput_mean);
        assert_eq!(folded.throughput_ci95, buffered.throughput_ci95);
        assert_eq!(folded.commits, buffered.commits);
        assert_eq!(folded.aborts, buffered.aborts);
    }

    #[test]
    fn accumulator_counts_and_precision() {
        let mut acc = ReplicationAccumulator::new();
        assert_eq!(acc.count(), 0);
        for k in 0..2 {
            acc.push(&crate::runner::run_simulation(
                quick().with_seed(replication_seed(0xCCDB, k)),
            ));
        }
        assert_eq!(acc.count(), 2);
        let agg = acc.aggregate();
        assert!(agg.resp_time_mean > 0.0);
        assert!(agg.resp_relative_precision() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = run_replicated(quick(), 0);
    }

    #[test]
    fn observed_fold_matches_folded_and_merges_series() {
        let obs = ObsOptions {
            sample_interval: Some(SimDuration::from_secs(1)),
            ring_capacity: 8,
            ..ObsOptions::default()
        };
        let observed = run_replicated_observed(quick(), 2, obs);
        assert_eq!(observed.aggregate, run_replicated_folded(quick(), 2));
        assert_eq!(observed.metrics.replications, 2);
        let series = observed.series.expect("sampling was enabled");
        assert_eq!(series.replications, 2);
        assert!(!series.is_empty());
        assert!(series.len() <= 8);
        // Every replication ran to the same 17s horizon, so the merged
        // grid ends exactly there.
        assert_eq!(series.times.last(), Some(&17.0));
        assert!(series.col("server.cpu.util").is_some());
    }

    #[test]
    fn observed_without_sampling_has_no_series() {
        let observed = run_replicated_observed(quick(), 1, ObsOptions::default());
        assert!(observed.series.is_none());
        assert!(!observed.metrics.entries.is_empty());
    }
}
