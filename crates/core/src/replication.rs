//! Replicated runs: independent replications with cross-seed confidence
//! intervals — the standard output-analysis methodology for terminating
//! simulations (the per-run CI in [`RunReport`] treats transaction
//! response times as independent, which under heavy contention they are
//! not; replication does not need that assumption).

use ccdb_des::Tally;

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::runner::run_simulation;

/// Aggregate of `n` independent replications of one configuration.
#[derive(Clone, Debug)]
pub struct ReplicatedReport {
    /// The reports of the individual replications, in seed order.
    pub runs: Vec<RunReport>,
    /// Mean of the per-run mean response times.
    pub resp_time_mean: f64,
    /// 95% half-width of the response-time mean across replications.
    pub resp_time_ci95: f64,
    /// Mean throughput across replications.
    pub throughput_mean: f64,
    /// 95% half-width of the throughput across replications.
    pub throughput_ci95: f64,
    /// Total commits across replications.
    pub commits: u64,
    /// Total aborts across replications.
    pub aborts: u64,
}

impl ReplicatedReport {
    /// Relative half-width of the response-time estimate (0 when the mean
    /// is 0); the usual stopping criterion for adding replications.
    pub fn resp_relative_precision(&self) -> f64 {
        if self.resp_time_mean == 0.0 {
            0.0
        } else {
            self.resp_time_ci95 / self.resp_time_mean
        }
    }
}

/// Run `replications` independent copies of `cfg`, differing only in the
/// seed (derived as `cfg.seed + k`), and aggregate.
pub fn run_replicated(cfg: SimConfig, replications: u32) -> ReplicatedReport {
    assert!(replications > 0, "need at least one replication");
    let base_seed = cfg.seed;
    let mut runs = Vec::with_capacity(replications as usize);
    let mut resp = Tally::new();
    let mut tput = Tally::new();
    let mut commits = 0;
    let mut aborts = 0;
    for k in 0..replications {
        let r = run_simulation(cfg.clone().with_seed(base_seed.wrapping_add(k as u64)));
        resp.record(r.resp_time_mean);
        tput.record(r.throughput);
        commits += r.commits;
        aborts += r.aborts;
        runs.push(r);
    }
    ReplicatedReport {
        runs,
        resp_time_mean: resp.mean(),
        resp_time_ci95: resp.ci95_half_width(),
        throughput_mean: tput.mean(),
        throughput_ci95: tput.ci95_half_width(),
        commits,
        aborts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use ccdb_des::SimDuration;

    fn quick() -> SimConfig {
        SimConfig::table5(Algorithm::TwoPhase { inter: true })
            .with_clients(5)
            .with_locality(0.5)
            .with_prob_write(0.2)
            .with_horizon(SimDuration::from_secs(2), SimDuration::from_secs(15))
    }

    #[test]
    fn replications_differ_but_agree_statistically() {
        let rep = run_replicated(quick(), 4);
        assert_eq!(rep.runs.len(), 4);
        // Distinct seeds -> distinct trajectories.
        assert!(
            rep.runs.windows(2).any(|w| w[0].events != w[1].events),
            "replications must not be identical"
        );
        // But the same regime.
        assert!(rep.resp_relative_precision() < 0.5);
        assert_eq!(rep.commits, rep.runs.iter().map(|r| r.commits).sum::<u64>());
    }

    #[test]
    fn single_replication_has_no_ci() {
        let rep = run_replicated(quick(), 1);
        assert_eq!(rep.resp_time_ci95, 0.0);
        assert_eq!(rep.runs.len(), 1);
    }

    #[test]
    fn ci_shrinks_with_more_replications() {
        let few = run_replicated(quick(), 2);
        let many = run_replicated(quick(), 6);
        // Not guaranteed pointwise, but with identical seeds prefixes the
        // 6-rep CI uses the same spread over more samples.
        assert!(many.resp_time_ci95 <= few.resp_time_ci95 * 2.0);
        assert!(many.resp_time_mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replication")]
    fn zero_replications_rejected() {
        let _ = run_replicated(quick(), 0);
    }
}
