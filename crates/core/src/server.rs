//! The server transaction module (STM): the DES driver over the sans-io
//! [`ServerCore`] (paper §3.3.4, §3.4).
//!
//! One dispatcher process receives every client message and spawns a
//! handler process per message. Every protocol *decision* — lock grants,
//! version validation, commit certification, retention policy,
//! notification fan-out, abort propagation — is made by the shared
//! [`ServerCore`] from `ccdb-proto`; this module adds what the core
//! deliberately knows nothing about: simulated CPUs, disks, the log, the
//! MPL admission gate, parked-continuation signals, wait attribution,
//! and message transport over the simulated network.
//!
//! All five algorithms are served by this module; the paper's
//! "algorithm-dependent server transaction manager" corresponds to the
//! branch points inside [`ServerCore`].

use std::cell::RefCell;
use std::collections::VecDeque;

use ccdb_model::FxHashMap as HashMap;
use std::rc::Rc;

use std::future::Future;

use ccdb_des::{oneshot, Env, Facility, FacilityGuard, OneshotSender, Pcg32, WaitClass};
use ccdb_lock::{ClientId, Mode, TxnId, Wake};
use ccdb_model::{PageId, SystemParams};
use ccdb_net::{Network, NetworkNode};
use ccdb_proto::{GrantDecision, ServerCore};
use ccdb_storage::{BufferManager, DiskArray, LogManager};

use crate::config::SimConfig;
use crate::metrics::AbortKind;
use crate::msg::{OpId, ReplyKind, C2S, S2C};
use crate::trace::{Trace, TraceEvent};
use crate::wait::WaitBook;

/// Result of waiting for a parked lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GrantResult {
    Granted,
    Aborted,
}

/// Runtime-only transaction state: admission bookkeeping and the
/// commit-gate signal. The protocol-visible state (ops resolved, failed,
/// parked pages) lives in the [`ServerCore`] entry with the same key;
/// both entries are created and removed together.
struct DriverTxn {
    admitted: bool,
    admission_waiters: Vec<OneshotSender<()>>,
    mpl_guard: Option<FacilityGuard>,
    commit_waiter: Option<OneshotSender<()>>,
}

/// Mutable server state shared by all handler processes. Borrows are always
/// released before any `.await`.
pub struct ServerState {
    /// The sans-io protocol core: lock manager, version table, caching
    /// directory, transaction registry.
    pub core: ServerCore,
    /// The buffer manager.
    pub buffer: BufferManager,
    txns: HashMap<TxnId, DriverTxn>,
    /// Parked lock-request signals, fired on grant or abort. A queue:
    /// no-wait locking can park an S and an X request of the same
    /// transaction on the same page.
    grants: HashMap<(TxnId, PageId), VecDeque<OneshotSender<GrantResult>>>,
}

/// The server: cheap to clone into handler processes.
#[derive(Clone)]
pub struct Server {
    env: Env,
    cfg: Rc<SimConfig>,
    /// The server station (CPUs + inbox of `(from, msg)`).
    pub node: NetworkNode<(ClientId, C2S)>,
    /// Client stations, indexed by client id (for replies).
    pub client_nodes: Rc<Vec<NetworkNode<S2C>>>,
    net: Network,
    /// Data disks.
    pub data_disks: DiskArray,
    /// The log manager.
    pub log: LogManager,
    mpl: Facility,
    /// Shared mutable state.
    pub state: Rc<RefCell<ServerState>>,
    /// Wait-attribution ledgers shared with the clients.
    book: WaitBook,
    trace: Trace,
}

/// Transaction to trace, from `CCDB_TRACE_TXN` (diagnostics; parsed once).
fn trace_txn() -> Option<TxnId> {
    use std::sync::OnceLock;
    static TRACE: OnceLock<Option<u64>> = OnceLock::new();
    TRACE
        .get_or_init(|| {
            std::env::var("CCDB_TRACE_TXN")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .map(TxnId)
}

impl Server {
    /// Build the server and spawn its dispatcher process.
    pub fn spawn(
        env: &Env,
        cfg: Rc<SimConfig>,
        net: Network,
        client_nodes: Rc<Vec<NetworkNode<S2C>>>,
        rng: &mut Pcg32,
        book: WaitBook,
        trace: Trace,
    ) -> Server {
        let sys = &cfg.sys;
        let node = NetworkNode::new(
            env,
            "server-cpu",
            sys.n_server_cpus,
            sys.server_mips,
            WaitClass::Cpu,
        );
        let data_disks = DiskArray::new(env, sys, rng);
        let log = LogManager::new(env, sys, rng);
        let mpl = Facility::new(env, "mpl", sys.mpl).with_wait_class(WaitClass::MplGate);
        let state = Rc::new(RefCell::new(ServerState {
            core: ServerCore::new(
                cfg.algorithm,
                cfg.tuning,
                cfg.oracle,
                sys.n_clients,
                sys.lock_shards,
                cfg.db.clone(),
            ),
            buffer: BufferManager::new(sys.buffer_size),
            txns: HashMap::default(),
            grants: HashMap::default(),
        }));
        let server = Server {
            env: env.clone(),
            cfg,
            node,
            client_nodes,
            net,
            data_disks,
            log,
            mpl,
            state,
            book,
            trace,
        };
        let dispatcher = server.clone();
        env.spawn(async move {
            loop {
                let (from, msg) = dispatcher.node.inbox.recv().await;
                let worker = dispatcher.clone();
                dispatcher.env.spawn(async move {
                    worker.handle(from, msg).await;
                });
            }
        });
        server
    }

    /// The MPL admission facility (reports and sampling).
    pub fn mpl(&self) -> &Facility {
        &self.mpl
    }

    /// Diagnostic dump of stuck transactions (used by the runner when
    /// `CCDB_DEBUG` is set).
    pub fn debug_dump(&self) {
        let state = self.state.borrow();
        eprintln!(
            "server: {} live txns, {} parked grant keys, lock table {} pages",
            state.core.live_txn_count(),
            state.grants.len(),
            state.core.lock_table_len()
        );
        for txn in state.core.live_txns() {
            let (client, ops_resolved, failed, parked) =
                state.core.txn_debug(txn).expect("listed as live");
            let (admitted, commit_waiting) = match state.txns.get(&txn) {
                Some(d) => (d.admitted, d.commit_waiter.is_some()),
                None => (false, false),
            };
            eprintln!(
                "  txn {:?} client {:?} admitted={} ops_resolved={} failed={} commit_waiting={} parked={:?}",
                txn, client, admitted, ops_resolved, failed, commit_waiting, parked
            );
            for page in &parked {
                eprintln!("    {:?}: {}", page, state.core.lock_debug_entry(*page));
            }
        }
    }

    /// Current committed version of a page.
    pub fn version_of(&self, page: PageId) -> u64 {
        self.state.borrow().core.version_of(page)
    }

    fn sys(&self) -> &SystemParams {
        &self.cfg.sys
    }

    fn reply(&self, to: ClientId, op: OpId, kind: ReplyKind) {
        let msg = S2C::Reply { op, kind };
        let bytes = msg.payload_bytes(self.sys().page_size);
        self.net
            .send(&self.node, &self.client_nodes[to.0 as usize], msg, bytes);
    }

    fn send_async(&self, to: ClientId, msg: S2C) {
        let bytes = msg.payload_bytes(self.sys().page_size);
        self.net
            .send(&self.node, &self.client_nodes[to.0 as usize], msg, bytes);
    }

    /// Run `fut` and, when `attr` names a transaction whose client is
    /// blocked on this handler (a synchronous request), charge the elapsed
    /// simulated time to `class` in that transaction's wait ledger.
    /// Asynchronous work passes `None`: it overlaps client execution and
    /// must not be counted as client-visible waiting.
    async fn attributed<F: Future>(
        &self,
        attr: Option<TxnId>,
        class: WaitClass,
        fut: F,
    ) -> F::Output {
        match attr {
            None => fut.await,
            Some(txn) => {
                let t0 = self.env.now();
                let out = fut.await;
                let now = self.env.now();
                self.book.add(txn, class, now.since(t0));
                self.trace.span_txn(txn, class, t0, now);
                out
            }
        }
    }

    async fn handle(&self, from: ClientId, msg: C2S) {
        match msg {
            C2S::LockFetch {
                txn,
                page,
                mode,
                cached_version,
                wait,
                op,
            } => {
                self.handle_lock_fetch(from, txn, page, mode, cached_version, wait, op)
                    .await;
            }
            C2S::Fetch { txn, page, op } => {
                if !self.ensure_admitted(txn, from, Some(txn)).await {
                    self.reply(from, op, ReplyKind::Aborted);
                    return;
                }
                self.ship_page(from, txn, page, op, Some(txn)).await;
                self.resolve_op(txn);
            }
            C2S::CheckVersion {
                txn,
                page,
                version,
                op,
            } => {
                if !self.ensure_admitted(txn, from, Some(txn)).await {
                    self.reply(from, op, ReplyKind::Aborted);
                    return;
                }
                let current = self.state.borrow().core.version_of(page);
                if current == version {
                    self.reply(from, op, ReplyKind::Valid);
                } else {
                    self.ship_page(from, txn, page, op, Some(txn)).await;
                }
                self.resolve_op(txn);
            }
            C2S::Commit {
                txn,
                read_set,
                dirty,
                ops_sent,
                op,
            } => {
                self.handle_commit(from, txn, read_set, dirty, ops_sent, op)
                    .await;
            }
            C2S::CallbackReply {
                page,
                released,
                blocker,
            } => {
                if released {
                    let (wakes, cbs) = {
                        let mut state = self.state.borrow_mut();
                        state.core.release_retained(from, page)
                    };
                    self.process_wakes(wakes, cbs);
                } else {
                    let blocker = blocker.expect("deferred callback names its blocker");
                    let victim = {
                        let mut state = self.state.borrow_mut();
                        state.core.callback_deferred(page, from, blocker)
                    };
                    if let Some(v) = victim {
                        self.abort_txn(v, AbortKind::Deadlock).await;
                    }
                }
            }
            C2S::ReleaseRetained { page } => {
                let (wakes, cbs) = {
                    let mut state = self.state.borrow_mut();
                    state.core.release_retained(from, page)
                };
                self.process_wakes(wakes, cbs);
            }
        }
    }

    /// Register the transaction and hold it at the MPL admission gate until
    /// the server accepts it. Returns `false` if the transaction is already
    /// aborted (straggler message). `attr` attributes the admission wait
    /// (for synchronous requests) to the MPL gate.
    async fn ensure_admitted(&self, txn: TxnId, client: ClientId, attr: Option<TxnId>) -> bool {
        enum Role {
            Ready,
            Creator,
            Waiter(ccdb_des::OneshotReceiver<()>),
            Dead,
        }
        let role = {
            let mut state = self.state.borrow_mut();
            if state.core.is_aborted(txn) {
                Role::Dead
            } else if let Some(entry) = state.txns.get_mut(&txn) {
                if entry.admitted {
                    Role::Ready
                } else {
                    let (tx, rx) = oneshot(&self.env);
                    entry.admission_waiters.push(tx);
                    Role::Waiter(rx)
                }
            } else {
                state.core.register_txn(txn, client);
                state.txns.insert(
                    txn,
                    DriverTxn {
                        admitted: false,
                        admission_waiters: Vec::new(),
                        mpl_guard: None,
                        commit_waiter: None,
                    },
                );
                Role::Creator
            }
        };
        match role {
            Role::Ready => true,
            Role::Dead => false,
            Role::Waiter(rx) => {
                self.attributed(attr, WaitClass::MplGate, rx.wait()).await;
                !self.state.borrow().core.is_aborted(txn)
            }
            Role::Creator => {
                let guard = self
                    .attributed(attr, WaitClass::MplGate, self.mpl.acquire())
                    .await;
                let waiters = {
                    let mut state = self.state.borrow_mut();
                    match state.txns.get_mut(&txn) {
                        Some(entry) => {
                            entry.admitted = true;
                            entry.mpl_guard = Some(guard);
                            std::mem::take(&mut entry.admission_waiters)
                        }
                        // Aborted while waiting for admission.
                        None => Vec::new(),
                    }
                };
                for w in waiters {
                    w.fire(());
                }
                !self.state.borrow().core.is_aborted(txn)
            }
        }
    }

    /// Count one protocol operation of `txn` as resolved and wake a pending
    /// commit that was waiting for it.
    fn resolve_op(&self, txn: TxnId) {
        if trace_txn() == Some(txn) {
            eprintln!("[{}] resolve_op {txn:?}", self.env.now());
        }
        let waiter = {
            let mut state = self.state.borrow_mut();
            if state.core.resolve_op(txn) {
                state
                    .txns
                    .get_mut(&txn)
                    .and_then(|e| e.commit_waiter.take())
            } else {
                None
            }
        };
        if let Some(w) = waiter {
            w.fire(());
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the LockFetch message fields
    async fn handle_lock_fetch(
        &self,
        from: ClientId,
        txn: TxnId,
        page: PageId,
        mode: Mode,
        cached_version: Option<u64>,
        wait: bool,
        op: OpId,
    ) {
        // Only a synchronous request (the client blocks on the reply) has
        // its blocked time attributed; async no-wait requests overlap
        // client execution.
        let attr = wait.then_some(txn);
        if !self.ensure_admitted(txn, from, attr).await {
            if wait {
                self.reply(from, op, ReplyKind::Aborted);
            }
            return;
        }
        let outcome = {
            let mut state = self.state.borrow_mut();
            state.core.request_lock(txn, from, page, mode)
        };
        if trace_txn() == Some(txn) {
            eprintln!(
                "[{}] lockfetch {txn:?} {page:?} {mode:?} wait={wait} v={cached_version:?} -> {outcome:?}",
                self.env.now()
            );
        }
        match outcome {
            ccdb_lock::RequestOutcome::Granted => {}
            ccdb_lock::RequestOutcome::Blocked { callbacks } => {
                for c in callbacks {
                    self.trace
                        .record(self.env.now(), TraceEvent::Callback { client: c, page });
                    self.send_async(c, S2C::Callback { page });
                }
                let (tx, rx) = oneshot(&self.env);
                let shard = {
                    let mut state = self.state.borrow_mut();
                    state.grants.entry((txn, page)).or_default().push_back(tx);
                    state.core.park(txn, page);
                    state.core.shard_of(page)
                };
                let result = self
                    .attributed(attr, WaitClass::LockShard(shard), rx.wait())
                    .await;
                {
                    let mut state = self.state.borrow_mut();
                    state.core.unpark(txn, page);
                }
                if result == GrantResult::Granted {
                    self.trace
                        .record(self.env.now(), TraceEvent::GrantedAfterWait { txn, page });
                }
                if result == GrantResult::Aborted {
                    if wait {
                        self.reply(from, op, ReplyKind::Aborted);
                    }
                    return;
                }
            }
            ccdb_lock::RequestOutcome::Deadlock => {
                // abort_txn notifies the client with a Restart message; a
                // synchronous requester additionally gets its reply.
                self.abort_txn(txn, AbortKind::Deadlock).await;
                if wait {
                    self.reply(from, op, ReplyKind::Aborted);
                }
                return;
            }
        }
        // Lock granted: the core validates the cached version *now* (it
        // may have gone stale while we were blocked).
        let decision = self
            .state
            .borrow()
            .core
            .after_grant(page, cached_version, wait);
        match decision {
            GrantDecision::UseCached => {
                if wait {
                    self.reply(from, op, ReplyKind::Valid);
                }
                self.resolve_op(txn);
            }
            GrantDecision::StaleAbort => {
                // No-wait locking read a stale cached page: abort. The
                // restart message names the page so the client refetches
                // it instead of looping on the same stale copy.
                self.abort_txn_stale(txn, AbortKind::StaleRead, Some(page))
                    .await;
            }
            GrantDecision::Ship => {
                self.ship_page(from, txn, page, op, attr).await;
                self.resolve_op(txn);
            }
        }
    }

    /// Read `page` (buffer or disk), charge per-page CPU, and reply with
    /// the data; records the client in the caching directory.
    async fn ship_page(
        &self,
        to: ClientId,
        _txn: TxnId,
        page: PageId,
        op: OpId,
        attr: Option<TxnId>,
    ) {
        self.read_into_buffer(page, attr).await;
        self.attributed(
            attr,
            WaitClass::Cpu,
            self.node.charge_cpu(self.sys().server_proc_page),
        )
        .await;
        let version = {
            let mut state = self.state.borrow_mut();
            state.core.note_shipped(to, page)
        };
        self.reply(to, op, ReplyKind::PageData { version });
    }

    /// Ensure `page` is resident in the buffer pool, performing the miss
    /// I/O and any eviction write-back.
    async fn read_into_buffer(&self, page: PageId, attr: Option<TxnId>) {
        let (hit, eviction) = {
            let mut state = self.state.borrow_mut();
            if state.buffer.lookup(page) {
                (true, None)
            } else {
                (false, state.buffer.admit(page))
            }
        };
        if hit {
            return;
        }
        if let Some(ev) = eviction {
            if ev.write_back {
                if let Some(t) = ev.uncommitted_of {
                    self.log.note_stolen_flush(t, ev.page);
                }
                self.attributed(
                    attr,
                    WaitClass::Cpu,
                    self.node.charge_cpu(self.sys().init_disk_cost),
                )
                .await;
                self.attributed(
                    attr,
                    WaitClass::DataDisk,
                    self.data_disks
                        .for_class(ev.page.class.0)
                        .access_page(ev.page, self.cfg.db.cluster_factor),
                )
                .await;
            }
        }
        self.attributed(
            attr,
            WaitClass::Cpu,
            self.node.charge_cpu(self.sys().init_disk_cost),
        )
        .await;
        self.attributed(
            attr,
            WaitClass::DataDisk,
            self.data_disks
                .for_class(page.class.0)
                .access_page(page, self.cfg.db.cluster_factor),
        )
        .await;
    }

    /// Install one updated page received from a client into the buffer.
    async fn install_update(&self, page: PageId, txn: TxnId, attr: Option<TxnId>) {
        self.attributed(
            attr,
            WaitClass::Cpu,
            self.node.charge_cpu(self.sys().server_proc_page),
        )
        .await;
        let eviction = {
            let mut state = self.state.borrow_mut();
            let ev = state.buffer.admit(page);
            state.buffer.mark_dirty(page, Some(txn.0));
            ev
        };
        if let Some(ev) = eviction {
            if ev.write_back {
                if let Some(t) = ev.uncommitted_of {
                    self.log.note_stolen_flush(t, ev.page);
                }
                self.attributed(
                    attr,
                    WaitClass::Cpu,
                    self.node.charge_cpu(self.sys().init_disk_cost),
                )
                .await;
                self.attributed(
                    attr,
                    WaitClass::DataDisk,
                    self.data_disks
                        .for_class(ev.page.class.0)
                        .access_page(ev.page, self.cfg.db.cluster_factor),
                )
                .await;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    async fn handle_commit(
        &self,
        from: ClientId,
        txn: TxnId,
        read_set: Vec<(PageId, u64)>,
        dirty: Vec<PageId>,
        ops_sent: u32,
        op: OpId,
    ) {
        if !self.ensure_admitted(txn, from, Some(txn)).await {
            self.reply(from, op, ReplyKind::Aborted);
            return;
        }
        if trace_txn() == Some(txn) {
            eprintln!(
                "[{}] commit arrives {txn:?} ops_sent={ops_sent} dirty={}",
                self.env.now(),
                dirty.len()
            );
        }
        // Wait until every protocol op the client issued has been resolved
        // (no-wait locking: async lock requests may still be queued).
        loop {
            let wait = {
                let mut state = self.state.borrow_mut();
                if state.core.commit_ready(txn, ops_sent) {
                    None
                } else {
                    let (tx, rx) = oneshot(&self.env);
                    if let Some(entry) = state.txns.get_mut(&txn) {
                        entry.commit_waiter = Some(tx);
                    }
                    // An unresolved op is either parked on a lock (attribute
                    // to that page's shard; the smallest parked page for
                    // determinism) or still in flight (attribute to the
                    // network).
                    let class = state
                        .core
                        .min_parked(txn)
                        .map(|p| WaitClass::LockShard(state.core.shard_of(p)))
                        .unwrap_or(WaitClass::Network);
                    Some((rx, class))
                }
            };
            match wait {
                Some((rx, class)) => {
                    self.attributed(Some(txn), class, rx.wait()).await;
                }
                None => break,
            }
        }
        let failed = self.state.borrow().core.commit_doomed(txn);
        if failed {
            self.cleanup_txn(txn);
            self.reply(from, op, ReplyKind::Aborted);
            return;
        }

        // Certification: the core validates the read set against committed
        // versions and — atomically with the validation — bumps the written
        // pages' versions. The version bump IS the logical commit point: a
        // concurrent certifier that read any of these pages will now fail
        // its own validation instead of silently losing an update. The
        // data movement and log force follow; the client sees the commit
        // only after the force completes. (For the locking family the same
        // call runs the serializability oracle instead.)
        let new_version = ServerCore::commit_version(txn);
        let valid = {
            let mut state = self.state.borrow_mut();
            state.core.validate_commit(txn, &read_set, &dirty)
        };
        if !valid {
            self.cleanup_txn(txn);
            self.reply(from, op, ReplyKind::Aborted);
            return;
        }

        // Install updates (charges ServerProcPage per page + buffer I/O).
        for &page in &dirty {
            self.install_update(page, txn, Some(txn)).await;
        }
        // Force the log.
        self.attributed(
            Some(txn),
            WaitClass::LogDisk,
            self.log.force_commit(txn.0, dirty.len() as u64),
        )
        .await;
        // Bump versions (already done at the validation point for
        // certification); committed frames become anonymous dirty frames.
        {
            let mut state = self.state.borrow_mut();
            state.buffer.commit_txn(txn.0);
            state.core.publish_versions(txn, &dirty);
        }
        // Release locks (callback locking retains them as read locks, or
        // as read+write locks under the write-retention variant).
        if trace_txn() == Some(txn) {
            eprintln!("[{}] commit release_all {txn:?}", self.env.now());
        }
        let (wakes, cbs) = {
            let mut state = self.state.borrow_mut();
            state.core.release_commit_locks(txn, from)
        };
        self.process_wakes(wakes, cbs);

        // Notification: push the new pages to every other caching client.
        if self.state.borrow().core.should_push_updates(&dirty) {
            self.push_updates(from, &dirty, new_version, Some(txn))
                .await;
        }

        self.cleanup_txn(txn);
        self.reply(from, op, ReplyKind::Committed { new_version });
    }

    /// Ship the updated pages to every other caching client, per the
    /// core's notification plan (batched per client, deterministic order).
    async fn push_updates(
        &self,
        committer: ClientId,
        dirty: &[PageId],
        version: u64,
        attr: Option<TxnId>,
    ) {
        let targets = self.state.borrow().core.notification_plan(committer, dirty);
        let invalidate = self.cfg.tuning.notify_invalidate;
        for (client, pages) in targets {
            self.trace.record(
                self.env.now(),
                TraceEvent::UpdatePush {
                    client,
                    pages: pages.len(),
                    invalidate,
                },
            );
            if invalidate {
                // Invalidation variant: a small control message, no page
                // contents and no per-page processing cost.
                self.send_async(client, S2C::Invalidate { pages });
            } else {
                // Server CPU per page pushed (it is "sent to a client").
                self.attributed(
                    attr,
                    WaitClass::Cpu,
                    self.node
                        .charge_cpu(self.sys().server_proc_page * pages.len() as u64),
                )
                .await;
                self.send_async(client, S2C::Update { pages, version });
            }
        }
    }

    /// Server-side transaction abort: drop locks and queued requests, wake
    /// parked handlers with `Aborted`, undo buffered updates, charge undo
    /// I/O for stolen flushes, free the MPL slot.
    pub async fn abort_txn(&self, txn: TxnId, why: AbortKind) {
        self.abort_txn_stale(txn, why, None).await;
    }

    /// [`Server::abort_txn`] naming the stale page that triggered the
    /// abort, so the client can invalidate it before restarting.
    pub async fn abort_txn_stale(&self, txn: TxnId, why: AbortKind, stale_page: Option<PageId>) {
        if trace_txn() == Some(txn) {
            eprintln!(
                "[{}] abort_txn {txn:?} why={why:?} stale={stale_page:?}",
                self.env.now()
            );
        }
        let (client, wakes, cbs, parked_signals, commit_waiter) = {
            let mut state = self.state.borrow_mut();
            let outcome = match state.core.abort_txn(txn) {
                // Unknown or already aborted (the core keeps the mark so
                // straggler messages are dropped).
                None => return,
                Some(out) => out,
            };
            let mut signals = Vec::new();
            for p in &outcome.parked {
                if let Some(q) = state.grants.remove(&(txn, *p)) {
                    signals.extend(q);
                }
            }
            let commit_waiter = state
                .txns
                .get_mut(&txn)
                .and_then(|e| e.commit_waiter.take());
            state.buffer.abort_txn(txn.0);
            (
                outcome.client,
                outcome.wakes,
                outcome.callbacks,
                signals,
                commit_waiter,
            )
        };
        self.send_async(
            client,
            S2C::Restart {
                txn,
                kind: why,
                stale_page,
            },
        );
        self.process_wakes(wakes, cbs);
        for s in parked_signals {
            s.fire(GrantResult::Aborted);
        }
        if let Some(w) = commit_waiter {
            w.fire(());
        }
        // Undo I/O for stolen flushes: read the log, rewrite before-images.
        let undo_pages = self.log.process_abort(txn.0).await;
        for page in undo_pages {
            self.node.charge_cpu(self.sys().init_disk_cost).await;
            self.data_disks
                .for_class(page.class.0)
                .access_page(page, self.cfg.db.cluster_factor)
                .await;
        }
        self.cleanup_txn(txn);
    }

    /// Drop the transaction entry, releasing its MPL slot. Any handlers
    /// still waiting for admission are released (they re-check the aborted
    /// set and bail out).
    fn cleanup_txn(&self, txn: TxnId) {
        if trace_txn() == Some(txn) {
            eprintln!("[{}] cleanup {txn:?}", self.env.now());
        }
        let (guard, waiters) = {
            let mut state = self.state.borrow_mut();
            state.core.forget_txn(txn);
            match state.txns.remove(&txn) {
                Some(mut e) => (e.mpl_guard.take(), std::mem::take(&mut e.admission_waiters)),
                None => (None, Vec::new()),
            }
        };
        for w in waiters {
            w.fire(());
        }
        drop(guard); // admits the next transaction, if any is waiting
    }

    /// Fire grant signals and issue callbacks produced by a lock-manager
    /// release.
    fn process_wakes(&self, wakes: Vec<Wake>, callbacks: Vec<(ClientId, PageId)>) {
        for w in wakes {
            let signal = {
                let mut state = self.state.borrow_mut();
                match state.grants.get_mut(&(w.txn, w.page)) {
                    Some(q) => {
                        let tx = q.pop_front();
                        if q.is_empty() {
                            state.grants.remove(&(w.txn, w.page));
                        }
                        tx
                    }
                    None => None,
                }
            };
            if let Some(tx) = signal {
                tx.fire(GrantResult::Granted);
            }
        }
        for (client, page) in callbacks {
            self.trace
                .record(self.env.now(), TraceEvent::Callback { client, page });
            self.send_async(client, S2C::Callback { page });
        }
    }
}
