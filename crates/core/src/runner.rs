//! Assembling and running one simulation (Figure 1's physical structure).

use std::cell::Cell;
use std::rc::Rc;

use ccdb_des::{Pcg32, Sim, SimTime};
use ccdb_lock::ClientId;
use ccdb_model::Workload;
use ccdb_net::{Network, NetworkNode};

use crate::client::{run_client, Client};
use crate::config::SimConfig;
use crate::metrics::{MetricsHub, RunReport};
use crate::msg::S2C;
use crate::server::Server;
use crate::trace::Trace;

/// Run one simulation to completion and report.
///
/// The run is a pure function of the configuration (including its seed):
/// rerunning with the same `SimConfig` yields an identical report.
pub fn run_simulation(cfg: SimConfig) -> RunReport {
    run_simulation_traced(cfg, Trace::disabled())
}

/// [`run_simulation`] with protocol tracing: every client/server protocol
/// event is recorded into `trace` (bounded by its capacity).
pub fn run_simulation_traced(cfg: SimConfig, trace: Trace) -> RunReport {
    cfg.validate();
    let sim = Sim::new();
    let env = sim.env();
    let mut root_rng = Pcg32::new(cfg.seed, 0x5EED);

    let net = Network::new(&env, &cfg.sys, root_rng.split(1));
    let n_clients = cfg.sys.n_clients;
    let client_nodes: Rc<Vec<NetworkNode<S2C>>> = Rc::new(
        (0..n_clients)
            .map(|i| {
                NetworkNode::new(
                    &env,
                    format!("client-cpu-{i}"),
                    cfg.sys.n_client_cpus,
                    cfg.sys.client_mips,
                )
            })
            .collect(),
    );
    let cfg = Rc::new(cfg);
    let server = Server::spawn(
        &env,
        Rc::clone(&cfg),
        net.clone(),
        Rc::clone(&client_nodes),
        &mut root_rng,
        trace.clone(),
    );

    let warmup_end = SimTime::ZERO + cfg.warmup;
    let hub = MetricsHub::new(warmup_end);

    // Clients.
    let mut caches = Vec::with_capacity(n_clients as usize);
    for i in 0..n_clients {
        let workload_rng = root_rng.split(10_000 + i as u64);
        let client_rng = root_rng.split(20_000 + i as u64);
        let workload = if cfg.txn_mix.is_empty() {
            Workload::new(cfg.db.clone(), cfg.txn.clone(), workload_rng)
        } else {
            Workload::with_mix(cfg.db.clone(), cfg.txn_mix.clone(), workload_rng)
        };
        let client = Client::new(
            &env,
            ClientId(i),
            Rc::clone(&cfg),
            client_nodes[i as usize].clone(),
            server.node.clone(),
            net.clone(),
            workload,
            client_rng,
            hub.clone(),
            trace.clone(),
        );
        caches.push(Rc::clone(&client.cache));
        env.spawn(run_client(client));
    }

    // Warm-up boundary: reset all resource statistics so utilisations and
    // counters cover the measurement window only.
    let msgs_at_warmup = Rc::new(Cell::new(0u64));
    {
        let env2 = env.clone();
        let cfg2 = Rc::clone(&cfg);
        let net2 = net.clone();
        let server2 = server.clone();
        let client_nodes2 = Rc::clone(&client_nodes);
        let caches2 = caches.clone();
        let msgs_at_warmup2 = Rc::clone(&msgs_at_warmup);
        env.spawn(async move {
            env2.hold(cfg2.warmup).await;
            server2.node.cpu.reset_stats();
            net2.reset_stats();
            server2.data_disks.reset_stats();
            server2.log.reset_stats();
            for node in client_nodes2.iter() {
                node.cpu.reset_stats();
            }
            for cache in &caches2 {
                cache.borrow_mut().reset_stats();
            }
            server2.state.borrow_mut().buffer.reset_stats();
            msgs_at_warmup2.set(net2.stats().messages);
        });
    }

    let horizon = SimTime::ZERO + cfg.warmup + cfg.measure;
    sim.run_until(horizon);
    if std::env::var_os("CCDB_DEBUG").is_some() {
        eprintln!("live processes at horizon: {}", sim.live_processes());
        server.debug_dump();
    }

    // Collect.
    let measure_secs = cfg.measure.as_secs_f64();
    let msgs = net.stats().messages - msgs_at_warmup.get();
    let server_cpu_util = server.node.cpu.utilization();
    let client_cpu_util = if client_nodes.is_empty() {
        0.0
    } else {
        client_nodes
            .iter()
            .map(|n| n.cpu.utilization())
            .sum::<f64>()
            / client_nodes.len() as f64
    };
    let net_util = net.utilization();
    let data_disk_util = server.data_disks.max_utilization();
    let log_disk_util = server.log.max_utilization();
    let mut cache_stats = ccdb_storage::CacheStats::default();
    for c in &caches {
        let s = c.borrow().stats();
        cache_stats.hits += s.hits;
        cache_stats.misses += s.misses;
        cache_stats.evictions += s.evictions;
    }
    let (buffer_stats, lock_stats) = {
        let state = server.state.borrow();
        (state.buffer.stats(), state.lm.stats())
    };
    let log_stats = server.log.stats();

    RunReport::assemble(
        cfg.algorithm,
        &cfg.sys,
        cfg.txn.prob_write,
        cfg.txn.inter_xact_loc,
        &hub,
        measure_secs,
        msgs,
        server_cpu_util,
        client_cpu_util,
        net_util,
        data_disk_util,
        log_disk_util,
        cache_stats,
        buffer_stats,
        lock_stats,
        log_stats,
        sim.events_processed(),
    )
}
