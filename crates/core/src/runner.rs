//! Assembling and running one simulation (Figure 1's physical structure).

use std::cell::Cell;
use std::rc::Rc;

use ccdb_des::{FacilitySnapshot, KernelProfile, Pcg32, Sim, SimDuration, SimTime, WaitClass};
use ccdb_lock::ClientId;
use ccdb_model::Workload;
use ccdb_net::{Network, NetworkNode};
use ccdb_obs::{run_sampler, Registry, SeriesRing, SeriesSet};
use ccdb_storage::ClientCache;

use crate::client::{run_client, Client};
use crate::config::SimConfig;
use crate::metrics::{MetricsHub, RunReport};
use crate::msg::S2C;
use crate::server::Server;
use crate::trace::Trace;
use crate::wait::WaitBook;

/// Observability options for a run.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Snapshot every registered metric at this simulated-time interval.
    /// `None` disables sampling (no sampler process is spawned).
    pub sample_interval: Option<SimDuration>,
    /// Retained points per metric; beyond this the sampler doubles its
    /// interval and folds adjacent samples instead of evicting (must be
    /// at least 3).
    pub ring_capacity: usize,
    /// Kernel dispatch workers for same-instant event windows (see
    /// [`Sim::set_dispatch_jobs`]). `1` (the default) is the strictly
    /// serial event loop; any value produces an identical report.
    pub kernel_jobs: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            sample_interval: None,
            ring_capacity: 4096,
            kernel_jobs: 1,
        }
    }
}

/// What an observed run returns: the aggregate report plus the sampled
/// time series (when sampling was enabled).
pub struct Observed {
    /// End-of-run aggregates.
    pub report: RunReport,
    /// Adaptively-sampled metric trajectories, frozen into owned `Send`
    /// data; `None` without a sample interval.
    pub series: Option<SeriesSet>,
    /// Every registered metric frozen at the horizon: plain `Send` data,
    /// so callers (the sweep orchestrator in particular) can carry it out
    /// of a worker thread and merge it across replications.
    pub snapshot: ccdb_obs::Snapshot,
}

/// Run one simulation to completion and report.
///
/// The run is a pure function of the configuration (including its seed):
/// rerunning with the same `SimConfig` yields an identical report.
pub fn run_simulation(cfg: SimConfig) -> RunReport {
    run_simulation_traced(cfg, Trace::disabled())
}

/// [`run_simulation`] with protocol tracing: every client/server protocol
/// event is recorded into `trace` (bounded by its capacity).
pub fn run_simulation_traced(cfg: SimConfig, trace: Trace) -> RunReport {
    run_simulation_observed(cfg, trace, ObsOptions::default()).report
}

/// What a profiled run returns: the report plus the kernel's own
/// dispatch statistics (see [`Sim::enable_profiling`]).
pub struct Profiled {
    /// End-of-run aggregates, identical to an unprofiled run's.
    pub report: RunReport,
    /// Per-[`ccdb_des::EventKind`] dispatch counts and wall-clock nanos.
    pub profile: KernelProfile,
}

/// [`run_simulation`] with kernel self-profiling: the event loop counts
/// and times every dispatch by [`ccdb_des::EventKind`]. Profiling only
/// watches the kernel — the simulated outcome (and thus the report) is
/// bit-identical to an unprofiled run; only wall-clock cost changes.
pub fn run_simulation_profiled(cfg: SimConfig) -> Profiled {
    run_simulation_profiled_jobs(cfg, 1)
}

/// [`run_simulation_profiled`] over the windowed dispatcher with `jobs`
/// kernel workers. Counters — and the report — are identical for every
/// `jobs` value; per-kind wall-clock nanos are measured on the worker
/// that polled the event and merged at commit, so profiling never
/// perturbs dispatch order.
pub fn run_simulation_profiled_jobs(cfg: SimConfig, jobs: usize) -> Profiled {
    let sim = Sim::new();
    sim.enable_profiling();
    let obs = ObsOptions {
        kernel_jobs: jobs,
        ..ObsOptions::default()
    };
    let observed = run_observed_on(&sim, cfg, Trace::disabled(), obs);
    Profiled {
        report: observed.report,
        profile: sim.profile(),
    }
}

/// [`run_simulation_traced`] with metric sampling: every component's
/// gauges and counters are registered into a [`Registry`] and, when
/// `obs.sample_interval` is set, a sampler process snapshots them into
/// an adaptively-folding series over the whole run.
///
/// The sampler only reads, so enabling it does not change the simulated
/// outcome: the report is identical with sampling on or off.
pub fn run_simulation_observed(cfg: SimConfig, trace: Trace, obs: ObsOptions) -> Observed {
    run_observed_on(&Sim::new(), cfg, trace, obs)
}

/// The body shared by every entry point: build the world on `sim`, run
/// to the horizon, and collect the report.
fn run_observed_on(sim: &Sim, cfg: SimConfig, trace: Trace, obs: ObsOptions) -> Observed {
    cfg.validate();
    sim.set_dispatch_jobs(obs.kernel_jobs);
    let env = sim.env();
    let mut root_rng = Pcg32::new(cfg.seed, 0x5EED);

    let net = Network::new(&env, &cfg.sys, root_rng.split(1));
    let n_clients = cfg.sys.n_clients;
    let client_nodes: Rc<Vec<NetworkNode<S2C>>> = Rc::new(
        (0..n_clients)
            .map(|i| {
                NetworkNode::new(
                    &env,
                    format!("client-cpu-{i}"),
                    cfg.sys.n_client_cpus,
                    cfg.sys.client_mips,
                    WaitClass::ClientCpu,
                )
            })
            .collect(),
    );
    let cfg = Rc::new(cfg);
    let book = WaitBook::new();
    let server = Server::spawn(
        &env,
        Rc::clone(&cfg),
        net.clone(),
        Rc::clone(&client_nodes),
        &mut root_rng,
        book.clone(),
        trace.clone(),
    );

    let warmup_end = SimTime::ZERO + cfg.warmup;
    let hub = MetricsHub::new(warmup_end);

    // Clients.
    let mut caches = Vec::with_capacity(n_clients as usize);
    for i in 0..n_clients {
        let workload_rng = root_rng.split(10_000 + i as u64);
        let client_rng = root_rng.split(20_000 + i as u64);
        let workload = if cfg.txn_mix.is_empty() {
            Workload::new(cfg.db.clone(), cfg.txn.clone(), workload_rng)
        } else {
            Workload::with_mix(cfg.db.clone(), cfg.txn_mix.clone(), workload_rng)
        };
        let client = Client::new(
            &env,
            ClientId(i),
            Rc::clone(&cfg),
            client_nodes[i as usize].clone(),
            server.node.clone(),
            net.clone(),
            workload,
            client_rng,
            hub.clone(),
            book.clone(),
            trace.clone(),
        );
        caches.push(Rc::clone(&client.cache));
        env.spawn(run_client(client));
    }

    // Warm-up boundary: reset all resource statistics so utilisations and
    // counters cover the measurement window only.
    let msgs_at_warmup = Rc::new(Cell::new(0u64));
    {
        let env2 = env.clone();
        let cfg2 = Rc::clone(&cfg);
        let net2 = net.clone();
        let server2 = server.clone();
        let client_nodes2 = Rc::clone(&client_nodes);
        let caches2 = caches.clone();
        let msgs_at_warmup2 = Rc::clone(&msgs_at_warmup);
        env.spawn(async move {
            env2.hold(cfg2.warmup).await;
            server2.node.cpu.reset_stats();
            net2.reset_stats();
            server2.data_disks.reset_stats();
            server2.log.reset_stats();
            for node in client_nodes2.iter() {
                node.cpu.reset_stats();
            }
            for cache in &caches2 {
                cache.borrow_mut().reset_stats();
            }
            server2.state.borrow_mut().buffer.reset_stats();
            msgs_at_warmup2.set(net2.stats().messages);
        });
    }

    // Every component registers its metrics; the sampler (spawned last so
    // it perturbs nothing that came before) snapshots them periodically.
    let registry = Registry::new();
    register_all(&registry, &server, &net, &client_nodes, &caches, &hub);
    let ring = obs.sample_interval.map(|interval| {
        let ring = SeriesRing::new(&registry, interval, obs.ring_capacity);
        env.spawn(run_sampler(env.clone(), registry.clone(), ring.clone()));
        ring
    });

    let horizon = SimTime::ZERO + cfg.warmup + cfg.measure;
    sim.run_until(horizon);
    if std::env::var_os("CCDB_DEBUG").is_some() {
        eprintln!("live processes at horizon: {}", sim.live_processes());
        server.debug_dump();
    }
    // One final sample exactly at the horizon, so series endpoints equal
    // the report's end-of-run figures (a no-op if the last sampler tick
    // already landed there).
    if let Some(ring) = &ring {
        ring.sample(&registry, sim.now());
    }
    let series = ring.map(SeriesRing::into_set);

    // Collect.
    let measure_secs = cfg.measure.as_secs_f64();
    let msgs = net.stats().messages - msgs_at_warmup.get();
    let server_cpu_util = server.node.cpu.utilization();
    let client_cpu_util = if client_nodes.is_empty() {
        0.0
    } else {
        client_nodes
            .iter()
            .map(|n| n.cpu.utilization())
            .sum::<f64>()
            / client_nodes.len() as f64
    };
    let net_util = net.utilization();
    let data_disk_util = server.data_disks.max_utilization();
    let log_disk_util = server.log.max_utilization();
    let mut cache_stats = ccdb_storage::CacheStats::default();
    for c in &caches {
        let s = c.borrow().stats();
        cache_stats.hits += s.hits;
        cache_stats.misses += s.misses;
        cache_stats.evictions += s.evictions;
    }
    let (buffer_stats, lock_stats, lock_shard_stats) = {
        let state = server.state.borrow();
        (
            state.buffer.stats(),
            state.core.lock_stats(),
            state.core.per_shard_lock_stats(),
        )
    };
    let log_stats = server.log.stats();

    let mut resources: Vec<FacilitySnapshot> = vec![server.node.cpu.snapshot()];
    // With more than one server CPU the pool also reports each core, so
    // per-core imbalance is visible next to the aggregate.
    if server.node.cpu.servers() > 1 {
        resources.extend(server.node.cpu.core_snapshots());
    }
    resources.push(server.mpl().snapshot());
    resources.push(net.medium().snapshot());
    resources.extend(server.data_disks.snapshots());
    resources.extend(server.log.snapshots());

    let n_types = cfg.txn_mix.len().max(1);
    let type_labels = (0..n_types).map(|i| cfg.type_label(i)).collect();

    let report = RunReport::assemble(
        cfg.algorithm,
        &cfg.sys,
        cfg.txn.prob_write,
        cfg.txn.inter_xact_loc,
        cfg.seed,
        cfg.warmup.as_secs_f64(),
        type_labels,
        resources,
        &hub,
        measure_secs,
        msgs,
        server_cpu_util,
        client_cpu_util,
        net_util,
        data_disk_util,
        log_disk_util,
        cache_stats,
        buffer_stats,
        lock_stats,
        lock_shard_stats,
        log_stats,
        sim.events_processed(),
    );
    let snapshot = registry.snapshot();
    Observed {
        report,
        series,
        snapshot,
    }
}

/// Wire every component's statistics into the registry. Registration
/// order is export order, so keep it stable: server, network, disks,
/// clients, lock/buffer state, transaction counters.
fn register_all(
    registry: &Registry,
    server: &Server,
    net: &Network,
    client_nodes: &Rc<Vec<NetworkNode<S2C>>>,
    caches: &[Rc<std::cell::RefCell<ClientCache>>],
    hub: &MetricsHub,
) {
    // The server CPU is a pool of per-core facilities, not a single
    // Facility; register the same `server.cpu.util` / `server.cpu.qlen`
    // gauges (same names, same order) by hand over the aggregate.
    {
        let pool = server.node.cpu.clone();
        registry.gauge("server.cpu.util", move || pool.utilization());
    }
    {
        let pool = server.node.cpu.clone();
        registry.gauge("server.cpu.qlen", move || pool.queue_len() as f64);
    }
    registry.facility("server.mpl", server.mpl());
    net.register_metrics(registry);
    server.data_disks.register_metrics(registry);
    server.log.register_metrics(registry);

    {
        let nodes = Rc::clone(client_nodes);
        registry.gauge("client.cpu.mean_util", move || {
            if nodes.is_empty() {
                0.0
            } else {
                nodes.iter().map(|n| n.cpu.utilization()).sum::<f64>() / nodes.len() as f64
            }
        });
    }
    {
        let caches: Vec<_> = caches.to_vec();
        registry.gauge("client.cache.hit_ratio", move || {
            let (mut hits, mut total) = (0u64, 0u64);
            for c in &caches {
                let s = c.borrow().stats();
                hits += s.hits;
                total += s.hits + s.misses;
            }
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        });
    }

    {
        let state = Rc::clone(&server.state);
        registry.gauge("server.lock.table_pages", move || {
            state.borrow().core.lock_table_len() as f64
        });
    }
    {
        let state = Rc::clone(&server.state);
        registry.gauge("server.lock.blocked_txns", move || {
            state.borrow().core.blocked_txn_count() as f64
        });
    }
    {
        let state = Rc::clone(&server.state);
        registry.gauge("server.buffer.resident", move || {
            state.borrow().buffer.len() as f64
        });
    }
    {
        let state = Rc::clone(&server.state);
        registry.gauge("server.buffer.dirty", move || {
            state.borrow().buffer.dirty_count() as f64
        });
    }
    {
        let state = Rc::clone(&server.state);
        registry.gauge("server.buffer.hit_ratio", move || {
            let s = state.borrow().buffer.stats();
            let total = s.hits + s.misses;
            if total == 0 {
                0.0
            } else {
                s.hits as f64 / total as f64
            }
        });
    }

    {
        let hub = hub.clone();
        registry.counter_fn("txn.commits", move || hub.commits());
    }
    {
        let hub = hub.clone();
        registry.counter_fn("txn.aborts", move || hub.aborts());
    }
    {
        let hub = hub.clone();
        registry.counter_fn("txn.callbacks", move || hub.callbacks());
    }
}
