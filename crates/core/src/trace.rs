//! Protocol tracing: a structured, time-ordered transcript of what the
//! clients and the server did. Used by `ccdb trace` to produce a readable
//! walk-through of a small run, and by tests to assert protocol-level
//! event sequences.
//!
//! Tracing is off by default (a disabled [`Trace`] costs one branch per
//! event site) and bounded: recording stops after `capacity` events.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use ccdb_des::SimTime;
use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::PageId;

use crate::metrics::AbortKind;

/// One protocol-level event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A client began a transaction attempt.
    TxnBegin {
        /// Client.
        client: ClientId,
        /// Transaction attempt id.
        txn: TxnId,
        /// Restart count (0 for the first attempt).
        attempt: u32,
    },
    /// A page read was satisfied locally from the client cache.
    LocalRead {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// A page update was performed locally (deferred updates or a
    /// retained write lock).
    LocalWrite {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// The client asked the server for a lock and/or the page.
    Request {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Page.
        page: PageId,
        /// Requested mode (None for certification fetch/check).
        mode: Option<Mode>,
        /// Whether the client blocks for the reply.
        sync: bool,
    },
    /// The server granted a lock request after it had blocked.
    GrantedAfterWait {
        /// Transaction.
        txn: TxnId,
        /// Page.
        page: PageId,
    },
    /// The server asked a client to release a retained lock.
    Callback {
        /// Client being called back.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// A client answered a callback.
    CallbackAnswer {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
        /// Released now, or deferred to the end of the current txn.
        released: bool,
    },
    /// The server pushed updated pages (notification).
    UpdatePush {
        /// Receiving client.
        client: ClientId,
        /// Pages pushed.
        pages: usize,
        /// Invalidate (vs propagate) variant.
        invalidate: bool,
    },
    /// A transaction committed.
    Commit {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Pages written.
        dirty: usize,
        /// Entirely local (callback locking's no-message commit).
        local: bool,
    },
    /// A transaction aborted.
    Abort {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Why.
        kind: AbortKind,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxnBegin {
                client,
                txn,
                attempt,
            } => {
                if *attempt == 0 {
                    write!(f, "client {} begins txn {}", client.0, txn.0)
                } else {
                    write!(
                        f,
                        "client {} restarts as txn {} (attempt {})",
                        client.0,
                        txn.0,
                        attempt + 1
                    )
                }
            }
            TraceEvent::LocalRead { client, page } => {
                write!(f, "client {} reads {page:?} from its cache", client.0)
            }
            TraceEvent::LocalWrite { client, page } => {
                write!(f, "client {} updates {page:?} locally", client.0)
            }
            TraceEvent::Request {
                client,
                txn,
                page,
                mode,
                sync,
            } => {
                let what = match mode {
                    Some(Mode::S) => "S lock",
                    Some(Mode::X) => "X lock",
                    None => "validity/fetch",
                };
                let how = if *sync { "waits for" } else { "fires async" };
                write!(
                    f,
                    "client {} (txn {}) {how} {what} on {page:?}",
                    client.0, txn.0
                )
            }
            TraceEvent::GrantedAfterWait { txn, page } => {
                write!(f, "server grants txn {} its lock on {page:?}", txn.0)
            }
            TraceEvent::Callback { client, page } => {
                write!(
                    f,
                    "server calls back client {}'s lock on {page:?}",
                    client.0
                )
            }
            TraceEvent::CallbackAnswer {
                client,
                page,
                released,
            } => {
                if *released {
                    write!(f, "client {} releases {page:?}", client.0)
                } else {
                    write!(f, "client {} defers {page:?} until its txn ends", client.0)
                }
            }
            TraceEvent::UpdatePush {
                client,
                pages,
                invalidate,
            } => {
                let verb = if *invalidate { "invalidates" } else { "pushes" };
                write!(f, "server {verb} {pages} page(s) at client {}", client.0)
            }
            TraceEvent::Commit {
                client,
                txn,
                dirty,
                local,
            } => {
                if *local {
                    write!(
                        f,
                        "client {} commits txn {} locally (retained locks only)",
                        client.0, txn.0
                    )
                } else {
                    write!(
                        f,
                        "client {} commits txn {} ({dirty} dirty page(s))",
                        client.0, txn.0
                    )
                }
            }
            TraceEvent::Abort { client, txn, kind } => {
                let why = match kind {
                    AbortKind::Deadlock => "deadlock victim",
                    AbortKind::StaleRead => "stale cached read",
                    AbortKind::Validation => "failed certification",
                };
                write!(f, "client {}'s txn {} aborts: {why}", client.0, txn.0)
            }
        }
    }
}

struct Inner {
    events: Vec<(SimTime, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

/// A shared, bounded protocol trace. Cheap to clone; a disabled trace
/// records nothing.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Trace {
    /// A trace that records up to `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            inner: Some(Rc::new(RefCell::new(Inner {
                events: Vec::new(),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// True if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event at simulation time `now`. When disabled this is a
    /// no-op; when the capacity is reached the event is dropped and
    /// counted, so callers can report the truncation.
    pub fn record(&self, now: SimTime, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if inner.events.len() < inner.capacity {
                inner.events.push((now, event));
            } else {
                inner.dropped += 1;
            }
        }
    }

    /// The recording capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().capacity)
    }

    /// Events dropped because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// Snapshot of the recorded events, in record order (= time order,
    /// since the simulation is single-threaded).
    pub fn events(&self) -> Vec<(SimTime, TraceEvent)> {
        match &self.inner {
            Some(inner) => inner.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Render the transcript, one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, e) in self.events() {
            let _ = writeln!(out, "[{:>12.6}s] {e}", t.as_secs_f64());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.record(
            SimTime::ZERO,
            TraceEvent::LocalRead {
                client: ClientId(0),
                page: page(1),
            },
        );
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert!(t.render().is_empty());
    }

    #[test]
    fn capacity_bounds_recording() {
        let t = Trace::enabled(2);
        for i in 0..5 {
            t.record(
                SimTime::from_nanos(i),
                TraceEvent::LocalRead {
                    client: ClientId(0),
                    page: page(i as u32),
                },
            );
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3, "overflow is counted, not silent");
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn unfilled_trace_reports_no_drops() {
        let t = Trace::enabled(8);
        t.record(
            SimTime::ZERO,
            TraceEvent::LocalRead {
                client: ClientId(0),
                page: page(1),
            },
        );
        assert_eq!(t.dropped(), 0);
        assert_eq!(Trace::disabled().dropped(), 0);
        assert_eq!(Trace::disabled().capacity(), 0);
    }

    #[test]
    fn rendering_is_readable() {
        let t = Trace::enabled(16);
        t.record(
            SimTime::from_nanos(1_500_000),
            TraceEvent::TxnBegin {
                client: ClientId(3),
                txn: TxnId(77),
                attempt: 0,
            },
        );
        t.record(
            SimTime::from_nanos(2_000_000),
            TraceEvent::Abort {
                client: ClientId(3),
                txn: TxnId(77),
                kind: AbortKind::Deadlock,
            },
        );
        let s = t.render();
        assert!(s.contains("client 3 begins txn 77"));
        assert!(s.contains("deadlock victim"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Trace::enabled(8);
        let t2 = t.clone();
        t2.record(
            SimTime::ZERO,
            TraceEvent::LocalWrite {
                client: ClientId(1),
                page: page(9),
            },
        );
        assert_eq!(t.events().len(), 1);
    }
}
