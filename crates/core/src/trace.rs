//! Protocol tracing: a structured, time-ordered transcript of what the
//! clients and the server did. Used by `ccdb trace` to produce a readable
//! walk-through of a small run, and by tests to assert protocol-level
//! event sequences.
//!
//! Besides point events, an enabled trace records *lifecycle spans* —
//! timed intervals a transaction spent thinking, waiting for locks,
//! doing I/O, or backing off before a restart. Spans are emitted at the
//! same sites that feed the [`crate::wait::WaitBook`] ledger (the
//! server's `attributed` wrapper) plus the client-side waits, so the
//! span set mirrors the end-to-end wait attribution. The whole trace
//! exports as Chrome trace-event JSON ([`Trace::to_chrome_json`]) for
//! Perfetto / `chrome://tracing`, byte-identically across runs.
//!
//! Tracing is off by default (a disabled [`Trace`] costs one branch per
//! event site) and bounded: recording stops after `capacity` events.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use ccdb_des::{SimTime, WaitClass};
use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::PageId;
use ccdb_obs::Json;

use crate::metrics::AbortKind;

/// One protocol-level event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A client began a transaction attempt.
    TxnBegin {
        /// Client.
        client: ClientId,
        /// Transaction attempt id.
        txn: TxnId,
        /// Restart count (0 for the first attempt).
        attempt: u32,
    },
    /// A page read was satisfied locally from the client cache.
    LocalRead {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// A page update was performed locally (deferred updates or a
    /// retained write lock).
    LocalWrite {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// The client asked the server for a lock and/or the page.
    Request {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Page.
        page: PageId,
        /// Requested mode (None for certification fetch/check).
        mode: Option<Mode>,
        /// Whether the client blocks for the reply.
        sync: bool,
    },
    /// The server granted a lock request after it had blocked.
    GrantedAfterWait {
        /// Transaction.
        txn: TxnId,
        /// Page.
        page: PageId,
    },
    /// The server asked a client to release a retained lock.
    Callback {
        /// Client being called back.
        client: ClientId,
        /// Page.
        page: PageId,
    },
    /// A client answered a callback.
    CallbackAnswer {
        /// Client.
        client: ClientId,
        /// Page.
        page: PageId,
        /// Released now, or deferred to the end of the current txn.
        released: bool,
    },
    /// The server pushed updated pages (notification).
    UpdatePush {
        /// Receiving client.
        client: ClientId,
        /// Pages pushed.
        pages: usize,
        /// Invalidate (vs propagate) variant.
        invalidate: bool,
    },
    /// A transaction committed.
    Commit {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Pages written.
        dirty: usize,
        /// Entirely local (callback locking's no-message commit).
        local: bool,
    },
    /// A transaction aborted.
    Abort {
        /// Client.
        client: ClientId,
        /// Transaction.
        txn: TxnId,
        /// Why.
        kind: AbortKind,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::TxnBegin {
                client,
                txn,
                attempt,
            } => {
                if *attempt == 0 {
                    write!(f, "client {} begins txn {}", client.0, txn.0)
                } else {
                    write!(
                        f,
                        "client {} restarts as txn {} (attempt {})",
                        client.0,
                        txn.0,
                        attempt + 1
                    )
                }
            }
            TraceEvent::LocalRead { client, page } => {
                write!(f, "client {} reads {page:?} from its cache", client.0)
            }
            TraceEvent::LocalWrite { client, page } => {
                write!(f, "client {} updates {page:?} locally", client.0)
            }
            TraceEvent::Request {
                client,
                txn,
                page,
                mode,
                sync,
            } => {
                let what = match mode {
                    Some(Mode::S) => "S lock",
                    Some(Mode::X) => "X lock",
                    None => "validity/fetch",
                };
                let how = if *sync { "waits for" } else { "fires async" };
                write!(
                    f,
                    "client {} (txn {}) {how} {what} on {page:?}",
                    client.0, txn.0
                )
            }
            TraceEvent::GrantedAfterWait { txn, page } => {
                write!(f, "server grants txn {} its lock on {page:?}", txn.0)
            }
            TraceEvent::Callback { client, page } => {
                write!(
                    f,
                    "server calls back client {}'s lock on {page:?}",
                    client.0
                )
            }
            TraceEvent::CallbackAnswer {
                client,
                page,
                released,
            } => {
                if *released {
                    write!(f, "client {} releases {page:?}", client.0)
                } else {
                    write!(f, "client {} defers {page:?} until its txn ends", client.0)
                }
            }
            TraceEvent::UpdatePush {
                client,
                pages,
                invalidate,
            } => {
                let verb = if *invalidate { "invalidates" } else { "pushes" };
                write!(f, "server {verb} {pages} page(s) at client {}", client.0)
            }
            TraceEvent::Commit {
                client,
                txn,
                dirty,
                local,
            } => {
                if *local {
                    write!(
                        f,
                        "client {} commits txn {} locally (retained locks only)",
                        client.0, txn.0
                    )
                } else {
                    write!(
                        f,
                        "client {} commits txn {} ({dirty} dirty page(s))",
                        client.0, txn.0
                    )
                }
            }
            TraceEvent::Abort { client, txn, kind } => {
                let why = match kind {
                    AbortKind::Deadlock => "deadlock victim",
                    AbortKind::StaleRead => "stale cached read",
                    AbortKind::Validation => "failed certification",
                };
                write!(f, "client {}'s txn {} aborts: {why}", client.0, txn.0)
            }
        }
    }
}

impl TraceEvent {
    /// Short kebab-case name of the event kind (the Chrome event name;
    /// the full [`fmt::Display`] line goes into the event's `args`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            TraceEvent::TxnBegin { .. } => "txn-begin",
            TraceEvent::LocalRead { .. } => "local-read",
            TraceEvent::LocalWrite { .. } => "local-write",
            TraceEvent::Request { .. } => "request",
            TraceEvent::GrantedAfterWait { .. } => "granted",
            TraceEvent::Callback { .. } => "callback",
            TraceEvent::CallbackAnswer { .. } => "callback-answer",
            TraceEvent::UpdatePush { .. } => "update-push",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Abort { .. } => "abort",
        }
    }

    /// The client this event is filed under in a Chrome export (one
    /// trace thread per client workstation).
    pub fn client(&self) -> ClientId {
        match self {
            TraceEvent::TxnBegin { client, .. }
            | TraceEvent::LocalRead { client, .. }
            | TraceEvent::LocalWrite { client, .. }
            | TraceEvent::Request { client, .. }
            | TraceEvent::Callback { client, .. }
            | TraceEvent::CallbackAnswer { client, .. }
            | TraceEvent::UpdatePush { client, .. }
            | TraceEvent::Commit { client, .. }
            | TraceEvent::Abort { client, .. } => *client,
            TraceEvent::GrantedAfterWait { txn, .. } => txn_client(*txn),
        }
    }
}

/// The client that issued `txn`: client ids occupy the high 32 bits of
/// every transaction id (see the client module's id construction).
fn txn_client(txn: TxnId) -> ClientId {
    ClientId((txn.0 >> 32) as u32)
}

/// Lifecycle-span label for a wait class (coarser than
/// [`WaitClass::label`]: all lock shards collapse into one lane, as do
/// the restart causes).
fn span_label(class: WaitClass) -> &'static str {
    match class {
        WaitClass::Cpu => "server-cpu",
        WaitClass::ClientCpu => "client-cpu",
        WaitClass::DataDisk => "io-data",
        WaitClass::LogDisk => "io-log",
        WaitClass::Network => "network",
        WaitClass::MplGate => "admission",
        WaitClass::LockShard(_) => "lock-wait",
        WaitClass::Restart(_) => "restart-backoff",
        WaitClass::Other => "think",
    }
}

/// One timed lifecycle interval of a client's transaction (thinking,
/// blocked on a lock, doing I/O, backing off before a restart, ...).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Client workstation the interval belongs to.
    pub client: ClientId,
    /// Lifecycle label (`"think"`, `"lock-wait"`, `"io-data"`, ...).
    pub label: &'static str,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (`>= start`).
    pub end: SimTime,
}

struct Inner {
    events: Vec<(SimTime, TraceEvent)>,
    spans: Vec<TraceSpan>,
    capacity: usize,
    dropped: u64,
}

/// A shared, bounded protocol trace. Cheap to clone; a disabled trace
/// records nothing.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Rc<RefCell<Inner>>>,
}

impl Trace {
    /// A trace that records up to `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            inner: Some(Rc::new(RefCell::new(Inner {
                events: Vec::new(),
                spans: Vec::new(),
                capacity,
                dropped: 0,
            }))),
        }
    }

    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace { inner: None }
    }

    /// True if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event at simulation time `now`. When disabled this is a
    /// no-op; when the capacity is reached the event is dropped and
    /// counted, so callers can report the truncation.
    pub fn record(&self, now: SimTime, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if inner.events.len() < inner.capacity {
                inner.events.push((now, event));
            } else {
                inner.dropped += 1;
            }
        }
    }

    /// The recording capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().capacity)
    }

    /// Events dropped because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// Record a lifecycle span `[start, end]` for `client`, labelled by
    /// the wait class it was attributed to. Zero-length spans and spans
    /// on a disabled trace are dropped silently; spans past the capacity
    /// are dropped and counted like events.
    pub fn span(&self, client: ClientId, class: WaitClass, start: SimTime, end: SimTime) {
        self.span_labelled(client, span_label(class), start, end);
    }

    /// [`Trace::span`] keyed by transaction instead of client (the
    /// server-side hook: handlers know the transaction, whose id encodes
    /// the issuing client).
    pub fn span_txn(&self, txn: TxnId, class: WaitClass, start: SimTime, end: SimTime) {
        self.span_labelled(txn_client(txn), span_label(class), start, end);
    }

    /// [`Trace::span`] with an explicit label, for intervals that have
    /// no wait class (e.g. the client's whole reply wait).
    pub fn span_labelled(
        &self,
        client: ClientId,
        label: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if let Some(inner) = &self.inner {
            if end.since(start).is_zero() {
                return;
            }
            let mut inner = inner.borrow_mut();
            if inner.spans.len() < inner.capacity {
                inner.spans.push(TraceSpan {
                    client,
                    label,
                    start,
                    end,
                });
            } else {
                inner.dropped += 1;
            }
        }
    }

    /// Snapshot of the recorded events, in record order (= time order,
    /// since the simulation is single-threaded).
    pub fn events(&self) -> Vec<(SimTime, TraceEvent)> {
        match &self.inner {
            Some(inner) => inner.borrow().events.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the recorded lifecycle spans, in record order (=
    /// span-*end* order: a span is recorded when its interval closes).
    pub fn spans(&self) -> Vec<TraceSpan> {
        match &self.inner {
            Some(inner) => inner.borrow().spans.clone(),
            None => Vec::new(),
        }
    }

    /// Export the trace as Chrome trace-event JSON — the
    /// `{"traceEvents": [...]}` document Perfetto and `chrome://tracing`
    /// load. Spans become complete (`"ph":"X"`) slices and point events
    /// become thread-scoped instants, one trace thread per client.
    /// Deterministic: the same run renders byte-identical output.
    pub fn to_chrome_json(&self) -> String {
        let us = |t: SimTime| t.as_nanos() as f64 / 1000.0;
        let spans = self.spans();
        let events = self.events();
        let mut clients: Vec<u32> = spans
            .iter()
            .map(|s| s.client.0)
            .chain(events.iter().map(|(_, e)| e.client().0))
            .collect();
        clients.sort_unstable();
        clients.dedup();

        let mut list: Vec<Json> = Vec::new();
        let mut meta = Json::obj();
        meta.set("name", "process_name")
            .set("ph", "M")
            .set("pid", 0u64);
        let mut args = Json::obj();
        args.set("name", "ccdb simulation");
        meta.set("args", args);
        list.push(meta);
        for c in clients {
            let mut meta = Json::obj();
            meta.set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0u64)
                .set("tid", u64::from(c));
            let mut args = Json::obj();
            args.set("name", format!("client {c}"));
            meta.set("args", args);
            list.push(meta);
        }
        for s in &spans {
            let mut ev = Json::obj();
            ev.set("name", s.label)
                .set("cat", "span")
                .set("ph", "X")
                .set("ts", us(s.start))
                .set("dur", (s.end.since(s.start).as_nanos()) as f64 / 1000.0)
                .set("pid", 0u64)
                .set("tid", u64::from(s.client.0));
            list.push(ev);
        }
        for (t, e) in &events {
            let mut ev = Json::obj();
            ev.set("name", e.kind_label())
                .set("cat", "event")
                .set("ph", "i")
                .set("s", "t")
                .set("ts", us(*t))
                .set("pid", 0u64)
                .set("tid", u64::from(e.client().0));
            let mut args = Json::obj();
            args.set("detail", e.to_string());
            ev.set("args", args);
            list.push(ev);
        }
        let mut doc = Json::obj();
        doc.set("traceEvents", list).set("displayTimeUnit", "ms");
        doc.render()
    }

    /// Render the transcript, one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (t, e) in self.events() {
            let _ = writeln!(out, "[{:>12.6}s] {e}", t.as_secs_f64());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.record(
            SimTime::ZERO,
            TraceEvent::LocalRead {
                client: ClientId(0),
                page: page(1),
            },
        );
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert!(t.render().is_empty());
    }

    #[test]
    fn capacity_bounds_recording() {
        let t = Trace::enabled(2);
        for i in 0..5 {
            t.record(
                SimTime::from_nanos(i),
                TraceEvent::LocalRead {
                    client: ClientId(0),
                    page: page(i as u32),
                },
            );
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3, "overflow is counted, not silent");
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn unfilled_trace_reports_no_drops() {
        let t = Trace::enabled(8);
        t.record(
            SimTime::ZERO,
            TraceEvent::LocalRead {
                client: ClientId(0),
                page: page(1),
            },
        );
        assert_eq!(t.dropped(), 0);
        assert_eq!(Trace::disabled().dropped(), 0);
        assert_eq!(Trace::disabled().capacity(), 0);
    }

    #[test]
    fn rendering_is_readable() {
        let t = Trace::enabled(16);
        t.record(
            SimTime::from_nanos(1_500_000),
            TraceEvent::TxnBegin {
                client: ClientId(3),
                txn: TxnId(77),
                attempt: 0,
            },
        );
        t.record(
            SimTime::from_nanos(2_000_000),
            TraceEvent::Abort {
                client: ClientId(3),
                txn: TxnId(77),
                kind: AbortKind::Deadlock,
            },
        );
        let s = t.render();
        assert!(s.contains("client 3 begins txn 77"));
        assert!(s.contains("deadlock victim"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn spans_record_and_bound_like_events() {
        let t = Trace::enabled(2);
        for i in 0..4u64 {
            t.span(
                ClientId(0),
                WaitClass::LockShard(1),
                SimTime::from_nanos(i * 10),
                SimTime::from_nanos(i * 10 + 5),
            );
        }
        // Zero-length spans vanish without counting as drops.
        t.span(ClientId(0), WaitClass::Cpu, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.spans()[0].label, "lock-wait");
        assert!(Trace::disabled().spans().is_empty());
    }

    #[test]
    fn span_txn_recovers_the_client() {
        let t = Trace::enabled(8);
        let txn = TxnId((7u64 << 32) | 3);
        t.span_txn(
            txn,
            WaitClass::DataDisk,
            SimTime::ZERO,
            SimTime::from_nanos(100),
        );
        assert_eq!(t.spans()[0].client, ClientId(7));
        assert_eq!(t.spans()[0].label, "io-data");
    }

    #[test]
    fn chrome_export_shape() {
        let t = Trace::enabled(16);
        t.span(
            ClientId(1),
            WaitClass::Restart(ccdb_des::RestartCause::Deadlock),
            SimTime::from_nanos(2_000),
            SimTime::from_nanos(5_500),
        );
        t.record(
            SimTime::from_nanos(1_000),
            TraceEvent::TxnBegin {
                client: ClientId(1),
                txn: TxnId(77),
                attempt: 0,
            },
        );
        let json = t.to_chrome_json();
        let doc = Json::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").expect("traceEvents present");
        let Json::Arr(items) = events else {
            panic!("traceEvents is an array");
        };
        // process_name + thread_name + one span + one instant.
        assert_eq!(items.len(), 4);
        assert!(json.contains(r#""name":"restart-backoff""#));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""dur":3.5"#));
        assert!(json.contains(r#""name":"txn-begin""#));
        assert!(json.contains(r#""name":"client 1""#));
        // Repeat render is byte-identical.
        assert_eq!(json, t.to_chrome_json());
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Trace::enabled(8);
        let t2 = t.clone();
        t2.record(
            SimTime::ZERO,
            TraceEvent::LocalWrite {
                client: ClientId(1),
                page: page(9),
            },
        );
        assert_eq!(t.events().len(), 1);
    }
}
