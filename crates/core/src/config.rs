//! Simulation configuration: algorithm selection and run control.

use ccdb_des::SimDuration;
use ccdb_model::{DatabaseSpec, SystemParams, TxnParams};

/// The cache consistency algorithm to simulate (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Two-phase locking with caching; `inter` keeps the cache across
    /// transaction boundaries (check-on-access via the lock request).
    TwoPhase {
        /// Inter-transaction caching (vs intra-transaction).
        inter: bool,
    },
    /// Certification (optimistic concurrency control) with deferred
    /// updates; `inter` keeps the cache across transactions
    /// (check-on-access on first touch per transaction).
    Certification {
        /// Inter-transaction caching (vs intra-transaction).
        inter: bool,
    },
    /// Callback locking: read locks are retained by clients across
    /// transactions; the server calls conflicting locks back.
    Callback,
    /// No-wait (optimistic) locking: clients proceed on cached pages and
    /// send lock requests asynchronously; the server aborts on stale reads
    /// or deadlock. `notify` adds update propagation after commits.
    NoWait {
        /// Send updated pages to caching clients after commit.
        notify: bool,
    },
}

impl Algorithm {
    /// Every algorithm variant, in paper order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::TwoPhase { inter: false },
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: false },
        Algorithm::Certification { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// The five inter-transaction algorithms of §5, in the paper's order.
    pub const INTER_TRANSACTION: [Algorithm; 5] = [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// The four lock-based algorithms compared in the §5 experiments.
    pub const EXPERIMENT_SET: [Algorithm; 4] = [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// True if the client cache survives transaction boundaries.
    pub fn inter_transaction(self) -> bool {
        match self {
            Algorithm::TwoPhase { inter } | Algorithm::Certification { inter } => inter,
            Algorithm::Callback | Algorithm::NoWait { .. } => true,
        }
    }

    /// True for the deferred-update (certification) family.
    pub fn deferred_updates(self) -> bool {
        matches!(self, Algorithm::Certification { .. })
    }

    /// Short label used in reports (matches the paper's terminology).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::TwoPhase { inter: false } => "B2PL",
            Algorithm::TwoPhase { inter: true } => "C2PL",
            Algorithm::Certification { inter: false } => "OCC",
            Algorithm::Certification { inter: true } => "COCC",
            Algorithm::Callback => "CB",
            Algorithm::NoWait { notify: false } => "NW",
            Algorithm::NoWait { notify: true } => "NWN",
        }
    }

    /// The exact inverse of [`Algorithm::label`]: the reader path for
    /// documents that record algorithms by label (sweep specs, JSONL job
    /// records).
    pub fn from_label(label: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.label() == label)
    }

    /// Full name for human-readable output.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::TwoPhase { inter: false } => "two-phase locking (intra)",
            Algorithm::TwoPhase { inter: true } => "two-phase locking",
            Algorithm::Certification { inter: false } => "certification (intra)",
            Algorithm::Certification { inter: true } => "certification",
            Algorithm::Callback => "callback locking",
            Algorithm::NoWait { notify: false } => "no-wait locking",
            Algorithm::NoWait { notify: true } => "no-wait locking w/ notification",
        }
    }
}

/// Modelling variants beyond the paper's baseline protocols. All default
/// to `false` (the paper's choices); the ablation benches flip them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tuning {
    /// Callback locking: retain write locks *as write locks* after commit
    /// instead of demoting them to read locks — the variant §2.3 discusses
    /// and declines. Subsequent writes by the same client need no server
    /// message, but other clients' reads now trigger callbacks.
    pub retain_write_locks: bool,
    /// Notification: send invalidations instead of propagating the new
    /// page contents — the alternative §2.5 discusses (cheap messages, but
    /// clients must refetch).
    pub notify_invalidate: bool,
    /// Restart aborted transactions immediately instead of after the ACL
    /// adaptive delay (exponential with mean = average response time).
    pub zero_restart_delay: bool,
    /// Notification: broadcast updates to every client instead of using
    /// the per-page caching directory — the simpler server the paper's
    /// §6 mentions ("if it sends updates to individual clients instead of
    /// broadcasting them to all clients").
    pub notify_broadcast: bool,
    /// Process asynchronous server messages during update/internal think
    /// times. The paper's implementation does NOT ("in the current
    /// implementation, these messages are not processed during the
    /// internal delay time", §5.5) and blames callback/no-wait locking's
    /// poor interactive results on it; this flag removes the limitation.
    pub responsive_client: bool,
}

/// A complete simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// Database shape (Table 1).
    pub db: DatabaseSpec,
    /// Transaction type (Table 2). When `txn_mix` is set this field only
    /// provides defaults for reporting (its `prob_write`/`inter_xact_loc`
    /// label the run).
    pub txn: TxnParams,
    /// Optional weighted mix of transaction types (paper §3.2); overrides
    /// `txn` for workload generation when non-empty.
    pub txn_mix: Vec<(TxnParams, f64)>,
    /// Labels for the mix entries, used to name per-type response times in
    /// reports. Empty means auto-label (`type-0`, `type-1`, ...); when
    /// non-empty it must parallel `txn_mix`.
    pub txn_mix_names: Vec<String>,
    /// System parameters (Table 3).
    pub sys: SystemParams,
    /// Random seed; a run is a pure function of (config, seed).
    pub seed: u64,
    /// Warm-up period excluded from statistics.
    pub warmup: SimDuration,
    /// Measured period; the run ends at `warmup + measure`.
    pub measure: SimDuration,
    /// Run the serializability oracle (panic on a consistency violation).
    pub oracle: bool,
    /// Modelling variants (ablations); default is the paper's protocol.
    pub tuning: Tuning,
}

impl SimConfig {
    /// The Table 5 baseline with the short-batch workload.
    pub fn table5(algorithm: Algorithm) -> Self {
        SimConfig {
            algorithm,
            db: ccdb_model::table5_database(),
            txn: TxnParams::short_batch(),
            txn_mix: Vec::new(),
            txn_mix_names: Vec::new(),
            sys: SystemParams::table5(),
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(300),
            oracle: true,
            tuning: Tuning::default(),
        }
    }

    /// The Table 4 ACL-comparison configuration.
    pub fn table4_acl(algorithm: Algorithm) -> Self {
        SimConfig {
            algorithm,
            db: ccdb_model::table4_database(),
            txn: ccdb_model::table4_txn(),
            txn_mix: Vec::new(),
            txn_mix_names: Vec::new(),
            sys: SystemParams::table4_acl(),
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(300),
            oracle: true,
            tuning: Tuning::default(),
        }
    }

    /// Builder-style setters for the swept parameters.
    pub fn with_clients(mut self, n: u32) -> Self {
        self.sys.n_clients = n;
        self
    }

    /// Set the write probability (`ProbWrite`).
    pub fn with_prob_write(mut self, p: f64) -> Self {
        self.txn.prob_write = p;
        self
    }

    /// Set the inter-transaction locality (`InterXactLoc`).
    pub fn with_locality(mut self, l: f64) -> Self {
        self.txn.inter_xact_loc = l;
        self
    }

    /// Set the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set warm-up and measurement windows.
    pub fn with_horizon(mut self, warmup: SimDuration, measure: SimDuration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Set the modelling variants (ablations).
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Run a weighted mix of transaction types instead of a single type.
    pub fn with_txn_mix(mut self, mix: Vec<(TxnParams, f64)>) -> Self {
        self.txn_mix = mix;
        self.txn_mix_names = Vec::new();
        self
    }

    /// [`SimConfig::with_txn_mix`] with a label per type; reports use the
    /// labels for per-type response times.
    pub fn with_named_txn_mix(mut self, mix: Vec<(String, TxnParams, f64)>) -> Self {
        self.txn_mix_names = mix.iter().map(|(n, _, _)| n.clone()).collect();
        self.txn_mix = mix.into_iter().map(|(_, t, w)| (t, w)).collect();
        self
    }

    /// The report label for transaction type `idx` of the mix.
    pub fn type_label(&self, idx: usize) -> String {
        match self.txn_mix_names.get(idx) {
            Some(name) => name.clone(),
            None => format!("type-{idx}"),
        }
    }

    /// Panic on inconsistent settings.
    pub fn validate(&self) {
        self.txn.validate();
        for (t, w) in &self.txn_mix {
            t.validate();
            assert!(*w > 0.0, "mix weights must be positive");
        }
        assert!(
            self.txn_mix_names.is_empty() || self.txn_mix_names.len() == self.txn_mix.len(),
            "txn_mix_names must be empty or parallel txn_mix"
        );
        self.sys.validate();
        assert!(!self.measure.is_zero(), "measurement window must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = Algorithm::INTER_TRANSACTION
            .iter()
            .map(|a| a.label())
            .collect();
        labels.push(Algorithm::TwoPhase { inter: false }.label());
        labels.push(Algorithm::Certification { inter: false }.label());
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::from_label(alg.label()), Some(alg));
        }
        assert_eq!(Algorithm::from_label("2pl"), None);
        assert_eq!(Algorithm::from_label(""), None);
    }

    #[test]
    fn caching_modes() {
        assert!(!Algorithm::TwoPhase { inter: false }.inter_transaction());
        assert!(Algorithm::TwoPhase { inter: true }.inter_transaction());
        assert!(Algorithm::Callback.inter_transaction());
        assert!(Algorithm::NoWait { notify: true }.inter_transaction());
        assert!(Algorithm::Certification { inter: true }.deferred_updates());
        assert!(!Algorithm::Callback.deferred_updates());
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::table5(Algorithm::Callback)
            .with_clients(30)
            .with_prob_write(0.5)
            .with_locality(0.75)
            .with_seed(7);
        c.validate();
        assert_eq!(c.sys.n_clients, 30);
        assert_eq!(c.txn.prob_write, 0.5);
        assert_eq!(c.txn.inter_xact_loc, 0.75);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn named_mix_carries_labels() {
        let small = TxnParams::short_batch();
        let c = SimConfig::table5(Algorithm::Callback).with_named_txn_mix(vec![
            ("edit".to_string(), small.clone(), 0.8),
            ("scan".to_string(), small, 0.2),
        ]);
        c.validate();
        assert_eq!(c.txn_mix.len(), 2);
        assert_eq!(c.type_label(0), "edit");
        assert_eq!(c.type_label(1), "scan");
        assert_eq!(c.type_label(2), "type-2");
    }

    #[test]
    #[should_panic(expected = "parallel txn_mix")]
    fn mismatched_mix_names_rejected() {
        let mut c = SimConfig::table5(Algorithm::Callback);
        c.txn_mix_names = vec!["lonely".to_string()];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "measurement window")]
    fn zero_measure_rejected() {
        let mut c = SimConfig::table5(Algorithm::Callback);
        c.measure = SimDuration::ZERO;
        c.validate();
    }
}
