//! Simulation configuration: algorithm selection and run control.
//!
//! The algorithm taxonomy ([`Algorithm`], [`Tuning`]) lives in
//! `ccdb-proto` (the sans-io protocol cores branch on it) and is
//! re-exported here unchanged, so existing users keep their import paths.

use ccdb_des::SimDuration;
use ccdb_model::{DatabaseSpec, SystemParams, TxnParams};

pub use ccdb_proto::{Algorithm, ParseAlgorithmError, Tuning};

/// A complete simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// Database shape (Table 1).
    pub db: DatabaseSpec,
    /// Transaction type (Table 2). When `txn_mix` is set this field only
    /// provides defaults for reporting (its `prob_write`/`inter_xact_loc`
    /// label the run).
    pub txn: TxnParams,
    /// Optional weighted mix of transaction types (paper §3.2); overrides
    /// `txn` for workload generation when non-empty.
    pub txn_mix: Vec<(TxnParams, f64)>,
    /// Labels for the mix entries, used to name per-type response times in
    /// reports. Empty means auto-label (`type-0`, `type-1`, ...); when
    /// non-empty it must parallel `txn_mix`.
    pub txn_mix_names: Vec<String>,
    /// System parameters (Table 3).
    pub sys: SystemParams,
    /// Random seed; a run is a pure function of (config, seed).
    pub seed: u64,
    /// Warm-up period excluded from statistics.
    pub warmup: SimDuration,
    /// Measured period; the run ends at `warmup + measure`.
    pub measure: SimDuration,
    /// Run the serializability oracle (panic on a consistency violation).
    pub oracle: bool,
    /// Modelling variants (ablations); default is the paper's protocol.
    pub tuning: Tuning,
}

impl SimConfig {
    /// The Table 5 baseline with the short-batch workload.
    pub fn table5(algorithm: Algorithm) -> Self {
        SimConfig {
            algorithm,
            db: ccdb_model::table5_database(),
            txn: TxnParams::short_batch(),
            txn_mix: Vec::new(),
            txn_mix_names: Vec::new(),
            sys: SystemParams::table5(),
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(300),
            oracle: true,
            tuning: Tuning::default(),
        }
    }

    /// The Table 4 ACL-comparison configuration.
    pub fn table4_acl(algorithm: Algorithm) -> Self {
        SimConfig {
            algorithm,
            db: ccdb_model::table4_database(),
            txn: ccdb_model::table4_txn(),
            txn_mix: Vec::new(),
            txn_mix_names: Vec::new(),
            sys: SystemParams::table4_acl(),
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(300),
            oracle: true,
            tuning: Tuning::default(),
        }
    }

    /// Builder-style setters for the swept parameters.
    pub fn with_clients(mut self, n: u32) -> Self {
        self.sys.n_clients = n;
        self
    }

    /// Set the write probability (`ProbWrite`).
    pub fn with_prob_write(mut self, p: f64) -> Self {
        self.txn.prob_write = p;
        self
    }

    /// Set the inter-transaction locality (`InterXactLoc`).
    pub fn with_locality(mut self, l: f64) -> Self {
        self.txn.inter_xact_loc = l;
        self
    }

    /// Set the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set warm-up and measurement windows.
    pub fn with_horizon(mut self, warmup: SimDuration, measure: SimDuration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Set the modelling variants (ablations).
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Run a weighted mix of transaction types instead of a single type.
    pub fn with_txn_mix(mut self, mix: Vec<(TxnParams, f64)>) -> Self {
        self.txn_mix = mix;
        self.txn_mix_names = Vec::new();
        self
    }

    /// [`SimConfig::with_txn_mix`] with a label per type; reports use the
    /// labels for per-type response times.
    pub fn with_named_txn_mix(mut self, mix: Vec<(String, TxnParams, f64)>) -> Self {
        self.txn_mix_names = mix.iter().map(|(n, _, _)| n.clone()).collect();
        self.txn_mix = mix.into_iter().map(|(_, t, w)| (t, w)).collect();
        self
    }

    /// The report label for transaction type `idx` of the mix.
    pub fn type_label(&self, idx: usize) -> String {
        match self.txn_mix_names.get(idx) {
            Some(name) => name.clone(),
            None => format!("type-{idx}"),
        }
    }

    /// Panic on inconsistent settings.
    pub fn validate(&self) {
        self.txn.validate();
        for (t, w) in &self.txn_mix {
            t.validate();
            assert!(*w > 0.0, "mix weights must be positive");
        }
        assert!(
            self.txn_mix_names.is_empty() || self.txn_mix_names.len() == self.txn_mix.len(),
            "txn_mix_names must be empty or parallel txn_mix"
        );
        self.sys.validate();
        assert!(!self.measure.is_zero(), "measurement window must be > 0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = SimConfig::table5(Algorithm::Callback)
            .with_clients(30)
            .with_prob_write(0.5)
            .with_locality(0.75)
            .with_seed(7);
        c.validate();
        assert_eq!(c.sys.n_clients, 30);
        assert_eq!(c.txn.prob_write, 0.5);
        assert_eq!(c.txn.inter_xact_loc, 0.75);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn named_mix_carries_labels() {
        let small = TxnParams::short_batch();
        let c = SimConfig::table5(Algorithm::Callback).with_named_txn_mix(vec![
            ("edit".to_string(), small.clone(), 0.8),
            ("scan".to_string(), small, 0.2),
        ]);
        c.validate();
        assert_eq!(c.txn_mix.len(), 2);
        assert_eq!(c.type_label(0), "edit");
        assert_eq!(c.type_label(1), "scan");
        assert_eq!(c.type_label(2), "type-2");
    }

    #[test]
    #[should_panic(expected = "parallel txn_mix")]
    fn mismatched_mix_names_rejected() {
        let mut c = SimConfig::table5(Algorithm::Callback);
        c.txn_mix_names = vec!["lonely".to_string()];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "measurement window")]
    fn zero_measure_rejected() {
        let mut c = SimConfig::table5(Algorithm::Callback);
        c.measure = SimDuration::ZERO;
        c.validate();
    }
}
