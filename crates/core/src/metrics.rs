//! Output metrics: per-run collection and the final report.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use ccdb_des::{BatchMeans, FacilitySnapshot, Histogram, SimDuration, SimTime, Tally, WaitClass};
use ccdb_lock::LockStats;
use ccdb_model::SystemParams;
use ccdb_obs::{Json, LatencyHistogram};
use ccdb_storage::{BufferStats, CacheStats, LogStats};

use crate::config::Algorithm;

/// Shared metrics sink; clients and the server record into it.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Rc<RefCell<Inner>>,
}

struct Inner {
    warmup_end: SimTime,
    resp_time: Tally,
    resp_batches: BatchMeans,
    resp_hist: Histogram,
    resp_by_type: Vec<Tally>,
    restarts: Tally,
    commits: u64,
    aborts: u64,
    deadlock_aborts: u64,
    stale_aborts: u64,
    validation_aborts: u64,
    callbacks_received: u64,
    updates_pushed: u64,
    /// Total blocked time of committed transactions, by resource class.
    wait_totals: BTreeMap<WaitClass, SimDuration>,
    /// Log-bucketed response-time distribution (mergeable across seeds).
    resp_lat: LatencyHistogram,
    /// Per-commit total lock wait (all lock shards of one transaction).
    lock_wait_lat: LatencyHistogram,
    /// Per-commit blocked time by resource class.
    wait_lat: BTreeMap<WaitClass, LatencyHistogram>,
}

impl MetricsHub {
    /// Create a hub; observations before `warmup_end` are discarded.
    pub fn new(warmup_end: SimTime) -> Self {
        MetricsHub {
            inner: Rc::new(RefCell::new(Inner {
                warmup_end,
                resp_time: Tally::new(),
                // ~30 observations per batch keeps 20+ batches for typical
                // measurement windows while decorrelating neighbours.
                resp_batches: BatchMeans::new(30),
                resp_hist: Histogram::new(),
                resp_by_type: Vec::new(),
                restarts: Tally::new(),
                commits: 0,
                aborts: 0,
                deadlock_aborts: 0,
                stale_aborts: 0,
                validation_aborts: 0,
                callbacks_received: 0,
                updates_pushed: 0,
                wait_totals: BTreeMap::new(),
                resp_lat: LatencyHistogram::new(),
                lock_wait_lat: LatencyHistogram::new(),
                wait_lat: BTreeMap::new(),
            })),
        }
    }

    /// End of the warm-up window.
    pub fn warmup_end(&self) -> SimTime {
        self.inner.borrow().warmup_end
    }

    /// Record a committed transaction: its response time (origination to
    /// commit, restarts included) and how many restarts it took.
    pub fn record_commit(&self, now: SimTime, response_secs: f64, restarts: u32) {
        self.record_commit_typed(now, response_secs, restarts, 0);
    }

    /// [`MetricsHub::record_commit`] attributing the commit to one
    /// transaction type of a workload mix.
    pub fn record_commit_typed(
        &self,
        now: SimTime,
        response_secs: f64,
        restarts: u32,
        type_idx: usize,
    ) {
        let mut m = self.inner.borrow_mut();
        if now >= m.warmup_end {
            m.commits += 1;
            m.resp_time.record(response_secs);
            m.resp_batches.record(response_secs);
            m.resp_hist.record(response_secs);
            if m.resp_by_type.len() <= type_idx {
                m.resp_by_type.resize_with(type_idx + 1, Tally::new);
            }
            m.resp_by_type[type_idx].record(response_secs);
            m.restarts.record(restarts as f64);
            m.resp_lat.record(response_secs);
        }
    }

    /// Response-time quantile over the measurement window.
    pub fn resp_quantile(&self, q: f64) -> f64 {
        self.inner.borrow().resp_hist.quantile(q)
    }

    /// Batch-means 95% half-width of the mean response time (robust to the
    /// autocorrelation a saturated system induces).
    pub fn resp_batch_ci95(&self) -> f64 {
        self.inner.borrow().resp_batches.ci95_half_width()
    }

    /// Per-type (commits, mean response) for workload mixes, in type-index
    /// order. Labels are attached by `RunReport::assemble` from the
    /// configuration's mix names.
    pub fn resp_by_type(&self) -> Vec<(u64, f64)> {
        self.inner
            .borrow()
            .resp_by_type
            .iter()
            .map(|t| (t.count(), t.mean()))
            .collect()
    }

    /// Committed transactions in the measurement window (sampling gauge).
    pub fn commits(&self) -> u64 {
        self.inner.borrow().commits
    }

    /// Aborts in the measurement window (sampling gauge).
    pub fn aborts(&self) -> u64 {
        self.inner.borrow().aborts
    }

    /// Callbacks processed by clients in the window (sampling gauge).
    pub fn callbacks(&self) -> u64 {
        self.inner.borrow().callbacks_received
    }

    /// Record a transaction abort of the given kind.
    pub fn record_abort(&self, now: SimTime, kind: AbortKind) {
        let mut m = self.inner.borrow_mut();
        if now >= m.warmup_end {
            m.aborts += 1;
            match kind {
                AbortKind::Deadlock => m.deadlock_aborts += 1,
                AbortKind::StaleRead => m.stale_aborts += 1,
                AbortKind::Validation => m.validation_aborts += 1,
            }
        }
    }

    /// Record a callback message processed by a client.
    pub fn record_callback(&self, now: SimTime) {
        let mut m = self.inner.borrow_mut();
        if now >= m.warmup_end {
            m.callbacks_received += 1;
        }
    }

    /// Record a committed transaction's wait profile (origin→commit blocked
    /// time by resource class, restarts included). Gated on the same
    /// warm-up window as [`MetricsHub::record_commit_typed`] so the totals
    /// divide by the windowed commit count.
    pub fn record_commit_waits(&self, now: SimTime, waits: &BTreeMap<WaitClass, SimDuration>) {
        let mut m = self.inner.borrow_mut();
        if now >= m.warmup_end {
            let mut lock_wait = SimDuration::ZERO;
            for (&class, &d) in waits {
                *m.wait_totals.entry(class).or_insert(SimDuration::ZERO) += d;
                m.wait_lat.entry(class).or_default().record(d.as_secs_f64());
                if matches!(class, WaitClass::LockShard(_)) {
                    lock_wait += d;
                }
            }
            if lock_wait > SimDuration::ZERO {
                m.lock_wait_lat.record(lock_wait.as_secs_f64());
            }
        }
    }

    /// Accumulated wait totals of committed transactions (window).
    pub fn wait_totals(&self) -> BTreeMap<WaitClass, SimDuration> {
        self.inner.borrow().wait_totals.clone()
    }

    /// The window's latency histograms in canonical label order:
    /// `response`, `lock_wait`, then `wait.<class>` for every resource
    /// class a committed transaction blocked on. Lock-free classes a run
    /// never touched are simply absent, so the set is data-driven but
    /// deterministic (BTreeMap class order).
    pub fn hists(&self) -> Vec<(String, LatencyHistogram)> {
        let m = self.inner.borrow();
        let mut out = vec![
            ("response".to_string(), m.resp_lat.clone()),
            ("lock_wait".to_string(), m.lock_wait_lat.clone()),
        ];
        for (class, h) in &m.wait_lat {
            out.push((format!("wait.{}", class.label()), h.clone()));
        }
        out
    }

    /// Record pages pushed in a notification message.
    pub fn record_update_push(&self, now: SimTime, pages: u64) {
        let mut m = self.inner.borrow_mut();
        if now >= m.warmup_end {
            m.updates_pushed += pages;
        }
    }

    fn snapshot(&self) -> (Tally, Tally, u64, u64, u64, u64, u64, u64, u64) {
        let m = self.inner.borrow();
        (
            m.resp_time.clone(),
            m.restarts.clone(),
            m.commits,
            m.aborts,
            m.deadlock_aborts,
            m.stale_aborts,
            m.validation_aborts,
            m.callbacks_received,
            m.updates_pushed,
        )
    }
}

pub use ccdb_proto::AbortKind;

/// One row of the end-to-end wait decomposition: the mean time per
/// committed transaction spent blocked on one resource class. The rows
/// (including the residual) sum to the mean response time.
#[derive(Clone, Debug, PartialEq)]
pub struct WaitRow {
    /// Resource-class label (`cpu`, `data-disk`, `lock-shard-0`, ... or
    /// `residual` for the unattributed remainder).
    pub label: String,
    /// Mean seconds per committed transaction.
    pub mean_s: f64,
}

/// One transaction type's share of a workload mix in a report.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeResponse {
    /// The type's label (from `SimConfig::txn_mix_names`, or `type-N`).
    pub label: String,
    /// Commits of this type in the measurement window.
    pub commits: u64,
    /// Mean response time of this type, seconds.
    pub resp_mean_s: f64,
}

/// Everything a run reports. All rates are over the measurement window.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Algorithm simulated.
    pub algorithm: Algorithm,
    /// Number of clients.
    pub n_clients: u32,
    /// Write probability.
    pub prob_write: f64,
    /// Inter-transaction locality.
    pub locality: f64,
    /// Random seed of the run.
    pub seed: u64,
    /// Warm-up window length, seconds.
    pub warmup_secs: f64,
    /// Measurement window length, seconds.
    pub measure_secs: f64,
    /// Mean transaction response time in seconds.
    pub resp_time_mean: f64,
    /// 95% confidence half-width of the response time (treats observations
    /// as independent; optimistic under saturation).
    pub resp_time_ci95: f64,
    /// Batch-means 95% half-width (robust to autocorrelation).
    pub resp_time_bm_ci95: f64,
    /// Median response time (histogram approximation).
    pub resp_p50: f64,
    /// 90th percentile response time.
    pub resp_p90: f64,
    /// 99th percentile response time.
    pub resp_p99: f64,
    /// Per-transaction-type labelled response times; one entry for
    /// single-type workloads.
    pub resp_by_type: Vec<TypeResponse>,
    /// Committed transactions per second.
    pub throughput: f64,
    /// Committed transactions in the window.
    pub commits: u64,
    /// Aborts in the window.
    pub aborts: u64,
    /// Mean restarts per committed transaction.
    pub restarts_per_commit: f64,
    /// Deadlock-victim aborts.
    pub deadlock_aborts: u64,
    /// Stale-read aborts (no-wait).
    pub stale_aborts: u64,
    /// Certification-failure aborts.
    pub validation_aborts: u64,
    /// Messages per committed transaction.
    pub msgs_per_commit: f64,
    /// Server CPU utilisation.
    pub server_cpu_util: f64,
    /// Mean client CPU utilisation.
    pub client_cpu_util: f64,
    /// Network medium utilisation.
    pub net_util: f64,
    /// Busiest data disk utilisation.
    pub data_disk_util: f64,
    /// Busiest log disk utilisation.
    pub log_disk_util: f64,
    /// Mean client cache hit ratio.
    pub cache_hit_ratio: f64,
    /// Server buffer hit ratio.
    pub buffer_hit_ratio: f64,
    /// Lock manager counters (whole run, not windowed), summed over shards.
    pub lock_stats: LockStats,
    /// Per-shard lock manager counters (one entry when `lock_shards` is 1).
    pub lock_shard_stats: Vec<LockStats>,
    /// Log manager counters (whole run).
    pub log_stats: LogStats,
    /// Callbacks processed by clients (window).
    pub callbacks: u64,
    /// Pages pushed by notification (window).
    pub updates_pushed: u64,
    /// Per-facility statistics (server CPU, MPL gate, network medium,
    /// every data and log disk), for bottleneck analysis.
    pub resources: Vec<FacilitySnapshot>,
    /// End-to-end wait decomposition: mean blocked seconds per committed
    /// transaction by resource class, plus a `residual` row. Rows sum to
    /// `resp_time_mean`.
    pub wait_profile: Vec<WaitRow>,
    /// Labelled latency histograms (`response`, `lock_wait`,
    /// `wait.<class>`), in [`MetricsHub::hists`] order. Mergeable across
    /// seeds bit-identically.
    pub hists: Vec<(String, LatencyHistogram)>,
    /// Simulation events processed (performance diagnostics).
    pub events: u64,
}

impl RunReport {
    /// Assemble a report from the hub and component statistics.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        algorithm: Algorithm,
        sys: &SystemParams,
        prob_write: f64,
        locality: f64,
        seed: u64,
        warmup_secs: f64,
        type_labels: Vec<String>,
        resources: Vec<FacilitySnapshot>,
        hub: &MetricsHub,
        measure_secs: f64,
        msgs: u64,
        server_cpu_util: f64,
        client_cpu_util: f64,
        net_util: f64,
        data_disk_util: f64,
        log_disk_util: f64,
        cache_stats: CacheStats,
        buffer_stats: BufferStats,
        lock_stats: LockStats,
        lock_shard_stats: Vec<LockStats>,
        log_stats: LogStats,
        events: u64,
    ) -> RunReport {
        let (resp, restarts, commits, aborts, dl, stale, val, cb, upd) = hub.snapshot();
        // Wait decomposition: windowed totals over windowed commits. The
        // client accounts every blocked interval of a committed
        // transaction, so the rows sum to the mean response time; the
        // residual row absorbs float rounding and is reported so the
        // invariant is visible (and checkable) in the output.
        let mut wait_profile: Vec<WaitRow> = Vec::new();
        if commits > 0 {
            let mut attributed = 0.0;
            for (class, total) in hub.wait_totals() {
                let mean_s = total.as_secs_f64() / commits as f64;
                attributed += mean_s;
                wait_profile.push(WaitRow {
                    label: class.label(),
                    mean_s,
                });
            }
            wait_profile.push(WaitRow {
                label: "residual".into(),
                mean_s: resp.mean() - attributed,
            });
        }
        let cache_total = cache_stats.hits + cache_stats.misses;
        let buf_total = buffer_stats.hits + buffer_stats.misses;
        let resp_by_type = hub
            .resp_by_type()
            .into_iter()
            .enumerate()
            .map(|(i, (n, mean))| TypeResponse {
                label: type_labels
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("type-{i}")),
                commits: n,
                resp_mean_s: mean,
            })
            .collect();
        RunReport {
            algorithm,
            n_clients: sys.n_clients,
            prob_write,
            locality,
            seed,
            warmup_secs,
            measure_secs,
            resp_time_mean: resp.mean(),
            resp_time_ci95: resp.ci95_half_width(),
            resp_time_bm_ci95: hub.resp_batch_ci95(),
            resp_p50: hub.resp_quantile(0.5),
            resp_p90: hub.resp_quantile(0.9),
            resp_p99: hub.resp_quantile(0.99),
            resp_by_type,
            throughput: commits as f64 / measure_secs,
            commits,
            aborts,
            restarts_per_commit: restarts.mean(),
            deadlock_aborts: dl,
            stale_aborts: stale,
            validation_aborts: val,
            msgs_per_commit: if commits == 0 {
                0.0
            } else {
                msgs as f64 / commits as f64
            },
            server_cpu_util,
            client_cpu_util,
            net_util,
            data_disk_util,
            log_disk_util,
            cache_hit_ratio: if cache_total == 0 {
                0.0
            } else {
                cache_stats.hits as f64 / cache_total as f64
            },
            buffer_hit_ratio: if buf_total == 0 {
                0.0
            } else {
                buffer_stats.hits as f64 / buf_total as f64
            },
            lock_stats,
            lock_shard_stats,
            log_stats,
            callbacks: cb,
            updates_pushed: upd,
            resources,
            wait_profile,
            hists: hub.hists(),
            events,
        }
    }

    /// The report as a deterministic JSON document: the same run always
    /// renders to the same bytes. Simulated quantities only — wall-clock
    /// figures live in the CLI so they can never perturb the bytes.
    ///
    /// Schema v2 extends v1 with a `waits` wait-decomposition array,
    /// per-shard lock counters under `locks.shards`, and per-facility wait
    /// statistics in `resources`. Schema v3 extends v2 with a
    /// `histograms` section of labelled log-bucketed latency histograms
    /// (`response`, `lock_wait`, `wait.<class>`); every v2 field is
    /// preserved, so readers that ignore unknown fields keep working (see
    /// [`ReportSummary::from_json`] for the reader path).
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        root.set("schema", "ccdb.run_report/v3")
            .set("algorithm", self.algorithm.label())
            .set("algorithm_name", self.algorithm.name());

        let mut config = Json::obj();
        config
            .set("clients", self.n_clients)
            .set("prob_write", self.prob_write)
            .set("locality", self.locality)
            .set("seed", self.seed)
            .set("warmup_s", self.warmup_secs)
            .set("measure_s", self.measure_secs);
        root.set("config", config);

        let mut resp = Json::obj();
        resp.set("mean_s", self.resp_time_mean)
            .set("ci95_s", self.resp_time_ci95)
            .set("bm_ci95_s", self.resp_time_bm_ci95)
            .set("p50_s", self.resp_p50)
            .set("p90_s", self.resp_p90)
            .set("p99_s", self.resp_p99);
        let mut by_type = Vec::new();
        for t in &self.resp_by_type {
            let mut o = Json::obj();
            o.set("label", t.label.clone())
                .set("commits", t.commits)
                .set("mean_s", t.resp_mean_s);
            by_type.push(o);
        }
        resp.set("by_type", Json::Arr(by_type));
        root.set("response", resp);

        root.set("throughput_tps", self.throughput);

        let mut txns = Json::obj();
        txns.set("commits", self.commits)
            .set("aborts", self.aborts)
            .set("restarts_per_commit", self.restarts_per_commit)
            .set("deadlock_aborts", self.deadlock_aborts)
            .set("stale_aborts", self.stale_aborts)
            .set("validation_aborts", self.validation_aborts)
            .set("callbacks", self.callbacks)
            .set("updates_pushed", self.updates_pushed);
        root.set("transactions", txns);

        root.set("msgs_per_commit", self.msgs_per_commit);

        let mut util = Json::obj();
        util.set("server_cpu", self.server_cpu_util)
            .set("client_cpu", self.client_cpu_util)
            .set("network", self.net_util)
            .set("data_disk", self.data_disk_util)
            .set("log_disk", self.log_disk_util);
        root.set("utilization", util);

        let mut ratios = Json::obj();
        ratios
            .set("cache_hit", self.cache_hit_ratio)
            .set("buffer_hit", self.buffer_hit_ratio);
        root.set("hit_ratios", ratios);

        let mut locks = Json::obj();
        locks
            .set("requests", self.lock_stats.requests)
            .set("blocks", self.lock_stats.blocks)
            .set("deadlocks", self.lock_stats.deadlocks)
            .set("callbacks", self.lock_stats.callbacks);
        let mut shards = Vec::new();
        for (i, s) in self.lock_shard_stats.iter().enumerate() {
            let mut o = Json::obj();
            o.set("shard", i as u64)
                .set("requests", s.requests)
                .set("blocks", s.blocks)
                .set("deadlocks", s.deadlocks)
                .set("callbacks", s.callbacks);
            shards.push(o);
        }
        locks.set("shards", Json::Arr(shards));
        root.set("locks", locks);

        let mut log = Json::obj();
        log.set("commits_forced", self.log_stats.commits_forced)
            .set("pages_written", self.log_stats.pages_written)
            .set("undo_aborts", self.log_stats.undo_aborts)
            .set("pages_undone", self.log_stats.pages_undone);
        root.set("log", log);

        let mut resources = Vec::new();
        for r in &self.resources {
            let mut o = Json::obj();
            o.set("name", r.name.clone())
                .set("servers", r.servers)
                .set("utilization", r.utilization)
                .set("mean_queue_len", r.mean_queue_len)
                .set("completions", r.completions)
                .set("waits", r.waits)
                .set("total_wait_s", r.total_wait_s)
                .set("max_wait_s", r.max_wait_s);
            resources.push(o);
        }
        root.set("resources", Json::Arr(resources));

        let mut waits = Vec::new();
        for row in &self.wait_profile {
            let mut o = Json::obj();
            o.set("class", row.label.clone()).set("mean_s", row.mean_s);
            waits.push(o);
        }
        root.set("waits", Json::Arr(waits));

        let mut hists = Json::obj();
        for (label, h) in &self.hists {
            hists.set(label.clone(), h.to_json());
        }
        root.set("histograms", hists);

        root.set("events", self.events);
        root
    }

    /// The resource with the highest utilisation — the run's bottleneck in
    /// the paper's sense (§5 explains every crossover by which resource
    /// saturates first).
    pub fn bottleneck(&self) -> Option<&FacilitySnapshot> {
        self.resources
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization))
    }
}

/// The cross-version reader for emitted run-report documents: the fields
/// every schema version carries, plus the v2 wait decomposition and the
/// v3 latency histograms when present. Older v1 documents (no `waits`,
/// no `locks.shards`) parse with an empty profile — the reader path that
/// keeps archived reports usable.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportSummary {
    /// The document's schema tag (`ccdb.run_report/v1`, `/v2`, or `/v3`).
    pub schema: String,
    /// Algorithm label (e.g. `CB`, `2PL-i`).
    pub algorithm: String,
    /// Committed transactions in the measurement window.
    pub commits: u64,
    /// Mean response time, seconds.
    pub resp_mean_s: f64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Wait decomposition rows (empty for v1 documents).
    pub waits: Vec<WaitRow>,
    /// Labelled latency histograms (empty for v1/v2 documents).
    pub hists: Vec<(String, LatencyHistogram)>,
}

impl ReportSummary {
    /// Parse a run-report JSON document of any supported schema version.
    pub fn from_json(text: &str) -> Result<ReportSummary, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?
            .to_string();
        if !matches!(
            schema.as_str(),
            "ccdb.run_report/v1" | "ccdb.run_report/v2" | "ccdb.run_report/v3"
        ) {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let algorithm = doc
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("missing algorithm")?
            .to_string();
        let commits = doc
            .get("transactions")
            .and_then(|t| t.get("commits"))
            .and_then(Json::as_u64)
            .ok_or("missing transactions.commits")?;
        let resp_mean_s = doc
            .get("response")
            .and_then(|r| r.get("mean_s"))
            .and_then(Json::as_f64)
            .ok_or("missing response.mean_s")?;
        let throughput_tps = doc
            .get("throughput_tps")
            .and_then(Json::as_f64)
            .ok_or("missing throughput_tps")?;
        let mut waits = Vec::new();
        if let Some(rows) = doc.get("waits").and_then(Json::items) {
            for row in rows {
                waits.push(WaitRow {
                    label: row
                        .get("class")
                        .and_then(Json::as_str)
                        .ok_or("wait row missing class")?
                        .to_string(),
                    mean_s: row
                        .get("mean_s")
                        .and_then(Json::as_f64)
                        .ok_or("wait row missing mean_s")?,
                });
            }
        }
        let mut hists = Vec::new();
        if let Some(Json::Obj(pairs)) = doc.get("histograms") {
            for (label, value) in pairs {
                hists.push((
                    label.clone(),
                    LatencyHistogram::from_json(value)
                        .map_err(|e| format!("histogram '{label}': {e}"))?,
                ));
            }
        }
        Ok(ReportSummary {
            schema,
            algorithm,
            commits,
            resp_mean_s,
            throughput_tps,
            waits,
            hists,
        })
    }
}

impl RunReport {
    /// Column names for [`RunReport::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "algorithm,clients,locality,prob_write,resp_mean_s,resp_ci95_s,resp_p50_s,resp_p90_s,resp_p99_s,throughput_tps,commits,aborts,restarts_per_commit,deadlock_aborts,stale_aborts,validation_aborts,msgs_per_commit,server_cpu_util,client_cpu_util,net_util,data_disk_util,log_disk_util,cache_hit_ratio,buffer_hit_ratio,lock_requests,lock_blocks,lock_deadlocks,callbacks,updates_pushed,events"
    }

    /// One CSV row (matching [`RunReport::csv_header`]); for piping runs
    /// into external plotting tools.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{},{},{:.4},{},{},{},{:.2},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{}",self.algorithm.label(),self.n_clients,self.locality,self.prob_write,self.resp_time_mean,self.resp_time_ci95,self.resp_p50,self.resp_p90,self.resp_p99,self.throughput,self.commits,self.aborts,self.restarts_per_commit,self.deadlock_aborts,self.stale_aborts,self.validation_aborts,self.msgs_per_commit,self.server_cpu_util,self.client_cpu_util,self.net_util,self.data_disk_util,self.log_disk_util,self.cache_hit_ratio,self.buffer_hit_ratio,self.lock_stats.requests,self.lock_stats.blocks,self.lock_stats.deadlocks,self.callbacks,self.updates_pushed,self.events,)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<5} clients={:<3} W={:<4} L={:<4} resp={:.3}s±{:.3} tput={:.2}/s \
             commits={} aborts={} cpuS={:.0}% net={:.0}% disk={:.0}% hit={:.0}%",
            self.algorithm.label(),
            self.n_clients,
            self.prob_write,
            self.locality,
            self.resp_time_mean,
            self.resp_time_ci95,
            self.throughput,
            self.commits,
            self.aborts,
            self.server_cpu_util * 100.0,
            self.net_util * 100.0,
            self.data_disk_util * 100.0,
            self.cache_hit_ratio * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_des::SimDuration;

    #[test]
    fn warmup_window_filters_observations() {
        let warmup_end = SimTime::ZERO + SimDuration::from_secs(10);
        let hub = MetricsHub::new(warmup_end);
        hub.record_commit(SimTime::ZERO + SimDuration::from_secs(5), 1.0, 0);
        hub.record_commit(SimTime::ZERO + SimDuration::from_secs(15), 2.0, 1);
        hub.record_abort(
            SimTime::ZERO + SimDuration::from_secs(5),
            AbortKind::Deadlock,
        );
        hub.record_abort(
            SimTime::ZERO + SimDuration::from_secs(20),
            AbortKind::StaleRead,
        );
        let (resp, restarts, commits, aborts, dl, stale, ..) = hub.snapshot();
        assert_eq!(commits, 1);
        assert_eq!(resp.mean(), 2.0);
        assert_eq!(restarts.mean(), 1.0);
        assert_eq!(aborts, 1);
        assert_eq!(dl, 0);
        assert_eq!(stale, 1);
    }

    #[test]
    fn wait_totals_follow_the_warmup_gate() {
        let warmup_end = SimTime::ZERO + SimDuration::from_secs(10);
        let hub = MetricsHub::new(warmup_end);
        let mut waits = BTreeMap::new();
        waits.insert(WaitClass::Cpu, SimDuration::from_millis(30));
        waits.insert(WaitClass::LockShard(2), SimDuration::from_millis(70));
        // Before the warm-up boundary: discarded.
        hub.record_commit_waits(SimTime::ZERO + SimDuration::from_secs(5), &waits);
        assert!(hub.wait_totals().is_empty());
        // After: accumulated per class.
        hub.record_commit_waits(SimTime::ZERO + SimDuration::from_secs(15), &waits);
        hub.record_commit_waits(SimTime::ZERO + SimDuration::from_secs(16), &waits);
        let totals = hub.wait_totals();
        assert_eq!(totals[&WaitClass::Cpu], SimDuration::from_millis(60));
        assert_eq!(
            totals[&WaitClass::LockShard(2)],
            SimDuration::from_millis(140)
        );
    }

    #[test]
    fn v1_documents_still_parse() {
        // A minimal schema-v1 document as emitted before the wait
        // decomposition existed: no `waits`, no `locks.shards`, resources
        // without wait statistics. The reader must accept it.
        let v1 = r#"{"schema":"ccdb.run_report/v1","algorithm":"CB","algorithm_name":"callback locking","config":{"clients":10,"prob_write":0.2,"locality":0.25,"seed":42,"warmup_s":5,"measure_s":20},"response":{"mean_s":0.125,"ci95_s":0.01,"bm_ci95_s":0.012,"p50_s":0.1,"p90_s":0.2,"p99_s":0.3,"by_type":[{"label":"type-0","commits":160,"mean_s":0.125}]},"throughput_tps":8,"transactions":{"commits":160,"aborts":3,"restarts_per_commit":0.02,"deadlock_aborts":3,"stale_aborts":0,"validation_aborts":0,"callbacks":12,"updates_pushed":0},"msgs_per_commit":6.5,"utilization":{"server_cpu":0.55,"client_cpu":0.1,"network":0.3,"data_disk":0.4,"log_disk":0.2},"hit_ratios":{"cache_hit":0.7,"buffer_hit":0.5},"locks":{"requests":900,"blocks":40,"deadlocks":3,"callbacks":12},"log":{"commits_forced":160,"pages_written":300,"undo_aborts":0,"pages_undone":0},"resources":[{"name":"server-cpu","servers":1,"utilization":0.55,"mean_queue_len":0.8,"completions":4000}],"events":123456}"#;
        let summary = ReportSummary::from_json(v1).expect("v1 parses");
        assert_eq!(summary.schema, "ccdb.run_report/v1");
        assert_eq!(summary.algorithm, "CB");
        assert_eq!(summary.commits, 160);
        assert_eq!(summary.resp_mean_s, 0.125);
        assert_eq!(summary.throughput_tps, 8.0);
        assert!(summary.waits.is_empty(), "v1 has no wait profile");
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = r#"{"schema":"ccdb.run_report/v9"}"#;
        assert!(ReportSummary::from_json(doc).is_err());
    }

    #[test]
    fn abort_kinds_are_separated() {
        let hub = MetricsHub::new(SimTime::ZERO);
        hub.record_abort(SimTime::ZERO, AbortKind::Deadlock);
        hub.record_abort(SimTime::ZERO, AbortKind::Validation);
        hub.record_abort(SimTime::ZERO, AbortKind::Validation);
        let (_, _, _, aborts, dl, stale, val, ..) = hub.snapshot();
        assert_eq!(aborts, 3);
        assert_eq!((dl, stale, val), (1, 0, 2));
    }
}
