//! End-to-end wait attribution.
//!
//! A [`WaitBook`] is a shared ledger, keyed by transaction id, into which
//! the server records how long each *synchronous* request spent blocked on
//! which resource ([`WaitClass`]) while the requesting client was stalled
//! awaiting the reply. The client opens a ledger at the start of each
//! commit attempt, and on completion folds the ledger into its
//! per-transaction wait profile. Because the simulation is single-threaded
//! and clients advance only inside `await`s, the elapsed time of every
//! client-side await in `[origin, commit]` partitions the response time
//! exactly; the ledger splits the server-side portion of each await by
//! resource, and the remainder of a reply wait is attributed to the
//! network.
//!
//! Only synchronous requests (ones the client blocks on) are recorded:
//! asynchronous no-wait work overlaps client execution, so charging it to
//! the ledger would double-count intervals the client never waited
//! through.

use std::cell::RefCell;
use std::collections::BTreeMap;

use ccdb_model::FxHashMap as HashMap;
use std::rc::Rc;

use ccdb_des::{SimDuration, WaitClass};
use ccdb_lock::TxnId;

/// The per-attempt wait ledger of one transaction.
#[derive(Clone, Debug, Default)]
struct Ledger {
    by_class: BTreeMap<WaitClass, SimDuration>,
    total: SimDuration,
}

/// Shared wait-attribution ledgers (client + server hold clones).
#[derive(Clone, Default)]
pub struct WaitBook {
    inner: Rc<RefCell<HashMap<TxnId, Ledger>>>,
}

impl WaitBook {
    /// An empty book.
    pub fn new() -> Self {
        WaitBook::default()
    }

    /// Open (or reset) the ledger for one commit attempt of `txn`.
    pub fn open(&self, txn: TxnId) {
        self.inner.borrow_mut().insert(txn, Ledger::default());
    }

    /// Record `d` of blocked time on `class` for `txn`. A no-op when no
    /// ledger is open (e.g. server work on behalf of an already-finished
    /// attempt) or when `d` is zero.
    pub fn add(&self, txn: TxnId, class: WaitClass, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        if let Some(ledger) = self.inner.borrow_mut().get_mut(&txn) {
            *ledger.by_class.entry(class).or_insert(SimDuration::ZERO) += d;
            ledger.total += d;
        }
    }

    /// Total time attributed so far in `txn`'s open ledger (zero if none).
    /// The client samples this around each reply wait; the delta is the
    /// server-side share of that wait.
    pub fn attributed(&self, txn: TxnId) -> SimDuration {
        self.inner
            .borrow()
            .get(&txn)
            .map(|l| l.total)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Close `txn`'s ledger and return its per-class totals (empty if no
    /// ledger was open).
    pub fn take(&self, txn: TxnId) -> BTreeMap<WaitClass, SimDuration> {
        self.inner
            .borrow_mut()
            .remove(&txn)
            .map(|l| l.by_class)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_lifecycle() {
        let book = WaitBook::new();
        let txn = TxnId(7);
        // Writes before open are dropped.
        book.add(txn, WaitClass::Cpu, SimDuration::from_millis(5));
        assert_eq!(book.attributed(txn), SimDuration::ZERO);

        book.open(txn);
        book.add(txn, WaitClass::Cpu, SimDuration::from_millis(3));
        book.add(txn, WaitClass::Cpu, SimDuration::from_millis(2));
        book.add(txn, WaitClass::LockShard(1), SimDuration::from_millis(4));
        book.add(txn, WaitClass::DataDisk, SimDuration::ZERO); // no-op
        assert_eq!(book.attributed(txn), SimDuration::from_millis(9));

        let classes = book.take(txn);
        assert_eq!(
            classes.get(&WaitClass::Cpu),
            Some(&SimDuration::from_millis(5))
        );
        assert_eq!(
            classes.get(&WaitClass::LockShard(1)),
            Some(&SimDuration::from_millis(4))
        );
        assert!(!classes.contains_key(&WaitClass::DataDisk));
        // Taking closes the ledger.
        assert_eq!(book.attributed(txn), SimDuration::ZERO);
        assert!(book.take(txn).is_empty());
    }

    #[test]
    fn reopen_resets() {
        let book = WaitBook::new();
        let txn = TxnId(1);
        book.open(txn);
        book.add(txn, WaitClass::Network, SimDuration::from_secs(1));
        book.open(txn); // restart of the same transaction id
        assert_eq!(book.attributed(txn), SimDuration::ZERO);
    }
}
