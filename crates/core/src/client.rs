//! The client transaction module (CTM) — paper §3.3.3, §3.4.
//!
//! Each client workstation is one simulation process executing the
//! transaction loop of Figure 3. The process also handles the asynchronous
//! server messages (callbacks, restart orders, pushed updates) — but only
//! at protocol points: while waiting for a reply, at operation boundaries,
//! and during *external* think time. Messages are deliberately NOT
//! processed during update/internal delays, reproducing the implementation
//! quirk the paper calls out in §5.5.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ccdb_des::{Env, Pcg32, RestartCause, SimDuration, WaitClass};
use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::{PageId, TxnSpec, Workload};
use ccdb_net::{Network, NetworkNode};
use ccdb_storage::{CachedPage, ClientCache, PageLock};

use crate::config::Algorithm;
use crate::config::SimConfig;
use crate::metrics::{AbortKind, MetricsHub};
use crate::msg::{OpId, ReplyKind, C2S, S2C};
use crate::trace::{Trace, TraceEvent};
use crate::wait::WaitBook;

/// One client workstation.
pub struct Client {
    id: ClientId,
    env: Env,
    cfg: Rc<SimConfig>,
    /// This client's station (CPU + inbox).
    pub node: NetworkNode<S2C>,
    server_node: NetworkNode<(ClientId, C2S)>,
    net: Network,
    /// The cache manager (shared with the runner for statistics).
    pub cache: Rc<RefCell<ClientCache>>,
    workload: Workload,
    rng: Pcg32,
    metrics: MetricsHub,
    trace: Trace,
    /// Wait-attribution ledgers shared with the server.
    book: WaitBook,
    /// Per-transaction wait profile (accumulated across restart attempts;
    /// cleared at each transaction origin).
    waits: BTreeMap<WaitClass, SimDuration>,
    next_op: OpId,
    txn_serial: u64,
    // --- current transaction attempt state ---
    txn: TxnId,
    txn_aborted: bool,
    abort_kind: AbortKind,
    ops_sent: u32,
    read_versions: Vec<(PageId, u64)>,
    deferred_callbacks: Vec<PageId>,
    // --- restart-delay estimate (ACL model: mean = avg response time) ---
    resp_sum: f64,
    resp_n: u64,
}

impl Client {
    /// Create a client; `run_client` drives it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        env: &Env,
        id: ClientId,
        cfg: Rc<SimConfig>,
        node: NetworkNode<S2C>,
        server_node: NetworkNode<(ClientId, C2S)>,
        net: Network,
        workload: Workload,
        rng: Pcg32,
        metrics: MetricsHub,
        book: WaitBook,
        trace: Trace,
    ) -> Client {
        let cache = Rc::new(RefCell::new(ClientCache::new(cfg.sys.cache_size)));
        Client {
            id,
            env: env.clone(),
            cfg,
            node,
            server_node,
            net,
            cache,
            workload,
            rng,
            metrics,
            trace,
            book,
            waits: BTreeMap::new(),
            next_op: 0,
            txn_serial: 0,
            txn: TxnId(0),
            txn_aborted: false,
            abort_kind: AbortKind::Deadlock,
            ops_sent: 0,
            read_versions: Vec::new(),
            deferred_callbacks: Vec::new(),
            resp_sum: 0.0,
            resp_n: 0,
        }
    }

    fn fresh_op(&mut self) -> OpId {
        self.next_op += 1;
        self.next_op
    }

    fn new_txn_id(&mut self) -> TxnId {
        self.txn_serial += 1;
        // Globally unique and monotonic: version numbers are derived from
        // committing transaction ids.
        TxnId(((self.id.0 as u64) << 32) | self.txn_serial)
    }

    fn send(&self, msg: C2S) {
        let bytes = msg.payload_bytes(self.cfg.sys.page_size);
        self.net
            .send(&self.node, &self.server_node, (self.id, msg), bytes);
    }

    fn record_read(&mut self, page: PageId, version: u64) {
        if !self.read_versions.iter().any(|(p, _)| *p == page) {
            self.read_versions.push((page, version));
        }
    }

    /// Record `d` of client-visible blocked time on `class` in this
    /// transaction's wait profile.
    fn note_wait(&mut self, class: WaitClass, d: SimDuration) {
        if !d.is_zero() {
            *self.waits.entry(class).or_insert(SimDuration::ZERO) += d;
        }
    }

    /// Fold the server-side ledger of the current attempt into the wait
    /// profile (called once per attempt, committed or aborted).
    fn fold_ledger(&mut self) {
        for (class, d) in self.book.take(self.txn) {
            self.note_wait(class, d);
        }
    }

    async fn charge_pages(&mut self, n: usize) {
        let t0 = self.env.now();
        self.node
            .charge_cpu(self.cfg.sys.client_proc_page * n as u64)
            .await;
        let now = self.env.now();
        self.note_wait(WaitClass::ClientCpu, now.since(t0));
        self.trace.span(self.id, WaitClass::ClientCpu, t0, now);
    }

    /// Install a fetched page and act on the evictions it causes.
    fn install_fetched(&mut self, page: PageId, version: u64, lock: PageLock, checked: bool) {
        let mut state = CachedPage::fresh(version);
        state.lock = lock;
        state.checked = checked;
        let evictions = self.cache.borrow_mut().install(page, state);
        for ev in evictions {
            debug_assert!(
                !ev.state.dirty,
                "dirty pages are pinned or locked and cannot be evicted"
            );
            if ev.state.retained {
                // Callback locking: tell the server the lock is gone
                // (§3.3.3: "the server has to be notified when a clean
                // object with a lock is replaced").
                self.send(C2S::ReleaseRetained { page: ev.page });
            }
        }
    }

    /// Handle an asynchronous server message.
    fn handle_async(&mut self, msg: S2C) {
        match msg {
            S2C::Callback { page } => {
                self.metrics.record_callback(self.env.now());
                enum Answer {
                    Defer,
                    Release,
                }
                let answer = {
                    let mut cache = self.cache.borrow_mut();
                    match cache.peek_mut(page) {
                        Some(st) if st.lock != PageLock::None => Answer::Defer,
                        Some(st) => {
                            st.retained = false;
                            st.retained_write = false;
                            Answer::Release
                        }
                        None => Answer::Release,
                    }
                };
                match answer {
                    Answer::Defer => {
                        self.trace.record(
                            self.env.now(),
                            TraceEvent::CallbackAnswer {
                                client: self.id,
                                page,
                                released: false,
                            },
                        );
                        self.deferred_callbacks.push(page);
                        self.send(C2S::CallbackReply {
                            page,
                            released: false,
                            blocker: Some(self.txn),
                        });
                    }
                    Answer::Release => {
                        self.trace.record(
                            self.env.now(),
                            TraceEvent::CallbackAnswer {
                                client: self.id,
                                page,
                                released: true,
                            },
                        );
                        self.send(C2S::CallbackReply {
                            page,
                            released: true,
                            blocker: None,
                        });
                    }
                }
            }
            S2C::Restart {
                txn,
                kind,
                stale_page,
            } => {
                // The stale page is dropped regardless of which attempt the
                // message is about: the copy is out of date either way.
                if let Some(page) = stale_page {
                    self.cache.borrow_mut().invalidate(page);
                }
                if txn == self.txn && !self.txn_aborted {
                    self.txn_aborted = true;
                    self.abort_kind = kind;
                }
            }
            S2C::Update { pages, version } => {
                self.metrics
                    .record_update_push(self.env.now(), pages.len() as u64);
                let mut cache = self.cache.borrow_mut();
                for page in pages {
                    if let Some(st) = cache.peek_mut(page) {
                        // Pages the running transaction already touched are
                        // left alone: if they are stale the server will
                        // restart the transaction anyway.
                        if st.lock == PageLock::None && !st.dirty {
                            st.version = version;
                            st.checked = false;
                        }
                    }
                }
            }
            S2C::Invalidate { pages } => {
                self.metrics
                    .record_update_push(self.env.now(), pages.len() as u64);
                let mut cache = self.cache.borrow_mut();
                for page in pages {
                    let drop_it = match cache.peek(page) {
                        Some(st) => st.lock == PageLock::None && !st.dirty,
                        None => false,
                    };
                    if drop_it {
                        cache.invalidate(page);
                    }
                }
            }
            // Stale reply from an op of an aborted attempt.
            S2C::Reply { .. } => {}
        }
    }

    /// Wait for the reply to `op`, servicing asynchronous messages.
    ///
    /// The elapsed wait splits into the server-side share (whatever the
    /// server attributed to this attempt's ledger meanwhile — CPU, disks,
    /// locks, admission) and a remainder charged to the network (message
    /// transit both ways plus anything the server does not attribute).
    async fn await_reply(&mut self, op: OpId) -> ReplyKind {
        let t0 = self.env.now();
        let before = self.book.attributed(self.txn);
        let kind = loop {
            let msg = self.node.inbox.recv().await;
            match msg {
                S2C::Reply { op: o, kind } if o == op => break kind,
                other => self.handle_async(other),
            }
        };
        let now = self.env.now();
        let server_share = self.book.attributed(self.txn) - before;
        self.note_wait(WaitClass::Network, now.since(t0) - server_share);
        self.trace.span_labelled(self.id, "reply-wait", t0, now);
        kind
    }

    /// Idle for `d` (think time between transactions / restart delay),
    /// servicing asynchronous messages as they arrive.
    async fn idle_for(&mut self, d: SimDuration) {
        let deadline = self.env.now() + d;
        loop {
            match self.node.inbox.recv_until(deadline).await {
                None => return,
                Some(msg) => self.handle_async(msg),
            }
        }
    }

    /// Drain pending asynchronous messages; fail if the transaction has
    /// been restarted by the server.
    fn check_abort(&mut self) -> Result<(), AbortKind> {
        while let Some(msg) = self.node.inbox.try_recv() {
            self.handle_async(msg);
        }
        if self.txn_aborted {
            Err(self.abort_kind)
        } else {
            Ok(())
        }
    }

    fn begin_attempt(&mut self) {
        self.txn = self.new_txn_id();
        self.txn_aborted = false;
        self.abort_kind = AbortKind::Deadlock;
        self.ops_sent = 0;
        self.read_versions.clear();
        self.book.open(self.txn);
    }

    // ---- ReadObject -----------------------------------------------------

    async fn read_page(&mut self, page: PageId) -> Result<(), AbortKind> {
        match self.cfg.algorithm {
            Algorithm::TwoPhase { .. } | Algorithm::Callback => self.read_locking(page).await,
            Algorithm::Certification { .. } => self.read_occ(page).await,
            Algorithm::NoWait { .. } => self.read_no_wait(page).await,
        }
    }

    async fn read_locking(&mut self, page: PageId) -> Result<(), AbortKind> {
        let callback = matches!(self.cfg.algorithm, Algorithm::Callback);
        enum Plan {
            Local(u64),
            Request(Option<u64>),
        }
        let plan = {
            let mut cache = self.cache.borrow_mut();
            match cache.access(page) {
                Some(st) if st.lock != PageLock::None => Plan::Local(st.version),
                Some(st) if callback && st.retained => {
                    // The whole point of callback locking: a retained lock
                    // makes the cached copy usable with no server message.
                    st.lock = PageLock::Read;
                    Plan::Local(st.version)
                }
                Some(st) => Plan::Request(Some(st.version)),
                None => Plan::Request(None),
            }
        };
        match plan {
            Plan::Local(v) => {
                self.trace.record(
                    self.env.now(),
                    TraceEvent::LocalRead {
                        client: self.id,
                        page,
                    },
                );
                self.record_read(page, v);
                Ok(())
            }
            Plan::Request(cached_version) => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Request {
                        client: self.id,
                        txn: self.txn,
                        page,
                        mode: Some(Mode::S),
                        sync: true,
                    },
                );
                self.send(C2S::LockFetch {
                    txn: self.txn,
                    page,
                    mode: Mode::S,
                    cached_version,
                    wait: true,
                    op,
                });
                match self.await_reply(op).await {
                    ReplyKind::Valid => {
                        let v = {
                            let mut cache = self.cache.borrow_mut();
                            let st = cache.peek_mut(page).expect("validated page is cached");
                            st.lock = PageLock::Read;
                            st.version
                        };
                        self.record_read(page, v);
                        Ok(())
                    }
                    ReplyKind::PageData { version } => {
                        self.install_fetched(page, version, PageLock::Read, false);
                        self.record_read(page, version);
                        Ok(())
                    }
                    ReplyKind::Aborted => Err(AbortKind::Deadlock),
                    ReplyKind::Committed { .. } => unreachable!("commit reply to a lock request"),
                }
            }
        }
    }

    async fn read_occ(&mut self, page: PageId) -> Result<(), AbortKind> {
        enum Plan {
            Local(u64),
            Check(u64),
            Fetch,
        }
        let plan = {
            let mut cache = self.cache.borrow_mut();
            match cache.access(page) {
                Some(st) if st.checked => Plan::Local(st.version),
                Some(st) => Plan::Check(st.version),
                None => Plan::Fetch,
            }
        };
        match plan {
            Plan::Local(v) => {
                self.record_read(page, v);
                Ok(())
            }
            Plan::Check(version) => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Request {
                        client: self.id,
                        txn: self.txn,
                        page,
                        mode: None,
                        sync: true,
                    },
                );
                self.send(C2S::CheckVersion {
                    txn: self.txn,
                    page,
                    version,
                    op,
                });
                match self.await_reply(op).await {
                    ReplyKind::Valid => {
                        let mut cache = self.cache.borrow_mut();
                        let st = cache.peek_mut(page).expect("checked page is cached");
                        st.checked = true;
                        drop(cache);
                        self.record_read(page, version);
                        Ok(())
                    }
                    ReplyKind::PageData { version } => {
                        self.install_fetched(page, version, PageLock::None, true);
                        self.record_read(page, version);
                        Ok(())
                    }
                    ReplyKind::Aborted => Err(AbortKind::Validation),
                    ReplyKind::Committed { .. } => unreachable!("commit reply to a check"),
                }
            }
            Plan::Fetch => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Request {
                        client: self.id,
                        txn: self.txn,
                        page,
                        mode: None,
                        sync: true,
                    },
                );
                self.send(C2S::Fetch {
                    txn: self.txn,
                    page,
                    op,
                });
                match self.await_reply(op).await {
                    ReplyKind::PageData { version } => {
                        self.install_fetched(page, version, PageLock::None, true);
                        self.record_read(page, version);
                        Ok(())
                    }
                    ReplyKind::Aborted => Err(AbortKind::Validation),
                    other => unreachable!("unexpected fetch reply {other:?}"),
                }
            }
        }
    }

    async fn read_no_wait(&mut self, page: PageId) -> Result<(), AbortKind> {
        self.check_abort()?;
        enum Plan {
            Local(u64),
            Optimistic(u64),
            SyncFetch,
        }
        let plan = {
            let mut cache = self.cache.borrow_mut();
            match cache.access(page) {
                Some(st) if st.lock != PageLock::None => Plan::Local(st.version),
                Some(st) => {
                    // Assume the cached copy is valid and keep running; the
                    // server aborts us if the assumption was wrong.
                    st.lock = PageLock::Read;
                    Plan::Optimistic(st.version)
                }
                None => Plan::SyncFetch,
            }
        };
        match plan {
            Plan::Local(v) => {
                self.record_read(page, v);
                Ok(())
            }
            Plan::Optimistic(version) => {
                self.ops_sent += 1;
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Request {
                        client: self.id,
                        txn: self.txn,
                        page,
                        mode: Some(Mode::S),
                        sync: false,
                    },
                );
                self.send(C2S::LockFetch {
                    txn: self.txn,
                    page,
                    mode: Mode::S,
                    cached_version: Some(version),
                    wait: false,
                    op: 0,
                });
                self.record_read(page, version);
                Ok(())
            }
            Plan::SyncFetch => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Request {
                        client: self.id,
                        txn: self.txn,
                        page,
                        mode: Some(Mode::S),
                        sync: true,
                    },
                );
                self.send(C2S::LockFetch {
                    txn: self.txn,
                    page,
                    mode: Mode::S,
                    cached_version: None,
                    wait: true,
                    op,
                });
                match self.await_reply(op).await {
                    ReplyKind::PageData { version } => {
                        self.install_fetched(page, version, PageLock::Read, false);
                        self.record_read(page, version);
                        Ok(())
                    }
                    ReplyKind::Aborted => Err(if self.txn_aborted {
                        self.abort_kind
                    } else {
                        AbortKind::Deadlock
                    }),
                    other => unreachable!("unexpected no-wait fetch reply {other:?}"),
                }
            }
        }
    }

    // ---- UpdateObject ---------------------------------------------------

    async fn write_page(&mut self, page: PageId) -> Result<(), AbortKind> {
        match self.cfg.algorithm {
            Algorithm::TwoPhase { .. } | Algorithm::Callback => self.write_locking(page).await,
            Algorithm::Certification { .. } => {
                // Deferred updates: purely local; ship at commit.
                let mut cache = self.cache.borrow_mut();
                let st = cache
                    .peek_mut(page)
                    .expect("updated page was read by this transaction");
                st.dirty = true;
                st.pinned = true;
                drop(cache);
                self.trace.record(
                    self.env.now(),
                    TraceEvent::LocalWrite {
                        client: self.id,
                        page,
                    },
                );
                Ok(())
            }
            Algorithm::NoWait { .. } => {
                self.check_abort()?;
                let version = {
                    let mut cache = self.cache.borrow_mut();
                    let st = cache
                        .peek_mut(page)
                        .expect("updated page was read by this transaction");
                    if st.lock == PageLock::Write {
                        None // X already requested for this page
                    } else {
                        st.lock = PageLock::Write;
                        st.dirty = true;
                        Some(st.version)
                    }
                };
                if let Some(v) = version {
                    self.ops_sent += 1;
                    self.send(C2S::LockFetch {
                        txn: self.txn,
                        page,
                        mode: Mode::X,
                        cached_version: Some(v),
                        wait: false,
                        op: 0,
                    });
                }
                Ok(())
            }
        }
    }

    async fn write_locking(&mut self, page: PageId) -> Result<(), AbortKind> {
        let mut retained_write = false;
        let request = {
            let mut cache = self.cache.borrow_mut();
            let st = cache
                .peek_mut(page)
                .expect("updated page was read by this transaction");
            if st.lock == PageLock::Write {
                st.dirty = true;
                None
            } else if st.retained && st.retained_write {
                // Write-retention variant: the client already holds an
                // exclusive lock across transactions — update locally with
                // no server message at all.
                st.lock = PageLock::Write;
                st.dirty = true;
                retained_write = true;
                None
            } else {
                Some(st.version)
            }
        };
        let Some(version) = request else {
            if retained_write {
                self.trace.record(
                    self.env.now(),
                    TraceEvent::LocalWrite {
                        client: self.id,
                        page,
                    },
                );
            }
            return Ok(());
        };
        let op = self.fresh_op();
        self.ops_sent += 1;
        self.trace.record(
            self.env.now(),
            TraceEvent::Request {
                client: self.id,
                txn: self.txn,
                page,
                mode: Some(Mode::X),
                sync: true,
            },
        );
        self.send(C2S::LockFetch {
            txn: self.txn,
            page,
            mode: Mode::X,
            cached_version: Some(version),
            wait: true,
            op,
        });
        match self.await_reply(op).await {
            ReplyKind::Valid => {
                let mut cache = self.cache.borrow_mut();
                let st = cache.peek_mut(page).expect("upgraded page is cached");
                st.lock = PageLock::Write;
                st.dirty = true;
                Ok(())
            }
            ReplyKind::PageData { version } => {
                // Defensive: under S locks / retained locks the copy cannot
                // have gone stale; the oracle would flag a protocol bug.
                self.install_fetched(page, version, PageLock::Write, false);
                let mut cache = self.cache.borrow_mut();
                cache.peek_mut(page).expect("just installed").dirty = true;
                Ok(())
            }
            ReplyKind::Aborted => Err(AbortKind::Deadlock),
            ReplyKind::Committed { .. } => unreachable!("commit reply to an upgrade"),
        }
    }

    // ---- CommitXact -----------------------------------------------------

    async fn commit(&mut self) -> Result<(), AbortKind> {
        if matches!(self.cfg.algorithm, Algorithm::NoWait { .. }) {
            self.check_abort()?;
        }
        let dirty = self.cache.borrow().dirty_pages();
        // A callback-locking transaction that ran entirely on retained
        // locks and wrote nothing commits locally — no server message at
        // all. This is where callback locking wins at high locality.
        if matches!(self.cfg.algorithm, Algorithm::Callback)
            && self.ops_sent == 0
            && dirty.is_empty()
        {
            self.trace.record(
                self.env.now(),
                TraceEvent::Commit {
                    client: self.id,
                    txn: self.txn,
                    dirty: 0,
                    local: true,
                },
            );
            return Ok(());
        }
        let op = self.fresh_op();
        self.send(C2S::Commit {
            txn: self.txn,
            read_set: self.read_versions.clone(),
            dirty: dirty.clone(),
            ops_sent: self.ops_sent,
            op,
        });
        match self.await_reply(op).await {
            ReplyKind::Committed { new_version } => {
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Commit {
                        client: self.id,
                        txn: self.txn,
                        dirty: dirty.len(),
                        local: false,
                    },
                );
                let mut cache = self.cache.borrow_mut();
                for &page in &dirty {
                    if let Some(st) = cache.peek_mut(page) {
                        st.version = new_version;
                    }
                }
                Ok(())
            }
            ReplyKind::Aborted => Err(if self.txn_aborted {
                self.abort_kind
            } else {
                match self.cfg.algorithm {
                    Algorithm::Certification { .. } => AbortKind::Validation,
                    Algorithm::NoWait { .. } => AbortKind::StaleRead,
                    _ => AbortKind::Deadlock,
                }
            }),
            other => unreachable!("unexpected commit reply {other:?}"),
        }
    }

    /// Post-commit bookkeeping.
    fn finish_commit(&mut self) {
        let retain = matches!(self.cfg.algorithm, Algorithm::Callback);
        let retain_writes = retain && self.cfg.tuning.retain_write_locks;
        {
            let mut cache = self.cache.borrow_mut();
            cache.end_txn(retain, retain_writes);
            if !self.cfg.algorithm.inter_transaction() {
                cache.clear();
            }
        }
        self.release_deferred();
    }

    /// Post-abort bookkeeping: locally updated pages hold uncommitted data
    /// and are invalidated; transaction lock marks are dropped (the server
    /// already released the real locks without retention).
    fn abort_cleanup(&mut self) {
        {
            let mut cache = self.cache.borrow_mut();
            for page in cache.dirty_pages() {
                cache.invalidate(page);
            }
            cache.end_txn(false, false);
            if !self.cfg.algorithm.inter_transaction() {
                cache.clear();
            }
        }
        self.release_deferred();
    }

    /// Honour callbacks deferred to the end of this transaction.
    fn release_deferred(&mut self) {
        let deferred = std::mem::take(&mut self.deferred_callbacks);
        for page in deferred {
            if let Some(st) = self.cache.borrow_mut().peek_mut(page) {
                st.retained = false;
                st.retained_write = false;
            }
            self.send(C2S::ReleaseRetained { page });
        }
    }

    /// User think time inside a transaction: a plain hold by default
    /// (reproducing the paper's quirk), or a message-servicing wait under
    /// the responsive-client tuning.
    async fn think(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let t0 = self.env.now();
        if self.cfg.tuning.responsive_client {
            self.idle_for(d).await;
        } else {
            self.env.hold(d).await;
        }
        let now = self.env.now();
        self.note_wait(WaitClass::Other, now.since(t0));
        self.trace.span(self.id, WaitClass::Other, t0, now);
    }

    fn restart_delay(&mut self) -> SimDuration {
        if self.cfg.tuning.zero_restart_delay {
            return SimDuration::ZERO;
        }
        // ACL model: exponential with mean = average response time so far.
        let mean = if self.resp_n == 0 {
            1.0
        } else {
            self.resp_sum / self.resp_n as f64
        };
        self.rng.exp_duration(SimDuration::from_secs_f64(mean))
    }

    /// Execute one attempt of the transaction (Figure 3).
    async fn execute(&mut self, spec: &TxnSpec) -> Result<(), AbortKind> {
        for op in &spec.ops {
            for &page in &op.pages {
                self.read_page(page).await?;
            }
            self.charge_pages(op.pages.len()).await;
            self.check_abort()?;
            // Think time between read and update; the paper's client does
            // not process messages during user delays (§5.5) — the
            // responsive_client tuning removes that limitation.
            let d = self.workload.update_delay();
            self.think(d).await;
            let write_pages: Vec<PageId> = op
                .pages
                .iter()
                .zip(&op.writes)
                .filter(|(_, w)| **w)
                .map(|(p, _)| *p)
                .collect();
            if !write_pages.is_empty() {
                for &page in &write_pages {
                    self.write_page(page).await?;
                }
                self.charge_pages(write_pages.len()).await;
                self.check_abort()?;
            }
            let d = self.workload.internal_delay();
            self.think(d).await;
        }
        self.commit().await
    }
}

/// Run a client forever (the simulation horizon bounds it).
pub async fn run_client(mut c: Client) {
    loop {
        let think = c.workload.external_delay();
        let idle_t0 = c.env.now();
        c.idle_for(think).await;
        c.trace.span_labelled(c.id, "idle", idle_t0, c.env.now());
        let spec = c.workload.next_txn();
        let origin = c.env.now();
        c.waits.clear();
        let mut restarts: u32 = 0;
        loop {
            c.begin_attempt();
            c.trace.record(
                c.env.now(),
                TraceEvent::TxnBegin {
                    client: c.id,
                    txn: c.txn,
                    attempt: restarts,
                },
            );
            match c.execute(&spec).await {
                Ok(()) => {
                    c.fold_ledger();
                    let now = c.env.now();
                    let resp = now.since(origin).as_secs_f64();
                    c.metrics
                        .record_commit_typed(now, resp, restarts, spec.type_idx);
                    c.metrics.record_commit_waits(now, &c.waits);
                    c.finish_commit();
                    c.resp_sum += resp;
                    c.resp_n += 1;
                    c.workload.note_commit(&spec);
                    break;
                }
                Err(kind) => {
                    c.fold_ledger();
                    restarts += 1;
                    c.trace.record(
                        c.env.now(),
                        TraceEvent::Abort {
                            client: c.id,
                            txn: c.txn,
                            kind,
                        },
                    );
                    c.metrics.record_abort(c.env.now(), kind);
                    c.abort_cleanup();
                    // Restart back-off is attributed to its own wait class
                    // per abort cause, not lumped into `other`, so the wait
                    // profile separates protocol-induced idling from think
                    // time.
                    let class = WaitClass::Restart(match kind {
                        AbortKind::Deadlock => RestartCause::Deadlock,
                        AbortKind::StaleRead => RestartCause::StaleRead,
                        AbortKind::Validation => RestartCause::Validation,
                    });
                    let d = c.restart_delay();
                    let t0 = c.env.now();
                    c.idle_for(d).await;
                    let now = c.env.now();
                    c.note_wait(class, now.since(t0));
                    c.trace.span(c.id, class, t0, now);
                }
            }
        }
    }
}
