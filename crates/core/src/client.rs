//! The client transaction module (CTM) — paper §3.3.3, §3.4.
//!
//! Each client workstation is one simulation process executing the
//! transaction loop of Figure 3. Every protocol decision — what a read,
//! write, or commit does with the cache and which message it sends — is
//! made by the sans-io [`ClientCore`] from `ccdb-proto`; this driver adds
//! simulated CPU charges, think times, wait attribution, and message
//! transport, and services the asynchronous server messages (callbacks,
//! restart orders, pushed updates) — but only at protocol points: while
//! waiting for a reply, at operation boundaries, and during *external*
//! think time. Messages are deliberately NOT processed during
//! update/internal delays, reproducing the implementation quirk the paper
//! calls out in §5.5.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ccdb_des::{Env, Pcg32, RestartCause, SimDuration, WaitClass};
use ccdb_lock::ClientId;
use ccdb_model::{PageId, TxnSpec, Workload};
use ccdb_net::{Network, NetworkNode};
use ccdb_proto::{Action, ClientCore, CommitAction, LocalNote};
use ccdb_storage::ClientCache;

use crate::config::Algorithm;
use crate::config::SimConfig;
use crate::metrics::{AbortKind, MetricsHub};
use crate::msg::{OpId, ReplyKind, C2S, S2C};
use crate::trace::{Trace, TraceEvent};
use crate::wait::WaitBook;

/// One client workstation.
pub struct Client {
    id: ClientId,
    env: Env,
    cfg: Rc<SimConfig>,
    /// This client's station (CPU + inbox).
    pub node: NetworkNode<S2C>,
    server_node: NetworkNode<(ClientId, C2S)>,
    net: Network,
    /// The cache manager (shared with the runner for statistics).
    pub cache: Rc<RefCell<ClientCache>>,
    /// The sans-io protocol core (transaction state, cache discipline).
    core: ClientCore,
    workload: Workload,
    rng: Pcg32,
    metrics: MetricsHub,
    trace: Trace,
    /// Wait-attribution ledgers shared with the server.
    book: WaitBook,
    /// Per-transaction wait profile (accumulated across restart attempts;
    /// cleared at each transaction origin).
    waits: BTreeMap<WaitClass, SimDuration>,
    // --- restart-delay estimate (ACL model: mean = avg response time) ---
    resp_sum: f64,
    resp_n: u64,
}

impl Client {
    /// Create a client; `run_client` drives it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        env: &Env,
        id: ClientId,
        cfg: Rc<SimConfig>,
        node: NetworkNode<S2C>,
        server_node: NetworkNode<(ClientId, C2S)>,
        net: Network,
        workload: Workload,
        rng: Pcg32,
        metrics: MetricsHub,
        book: WaitBook,
        trace: Trace,
    ) -> Client {
        let cache = Rc::new(RefCell::new(ClientCache::new(cfg.sys.cache_size)));
        let core = ClientCore::new(id, cfg.algorithm, cfg.tuning);
        Client {
            id,
            env: env.clone(),
            cfg,
            node,
            server_node,
            net,
            cache,
            core,
            workload,
            rng,
            metrics,
            trace,
            book,
            waits: BTreeMap::new(),
            resp_sum: 0.0,
            resp_n: 0,
        }
    }

    fn send(&self, msg: C2S) {
        let bytes = msg.payload_bytes(self.cfg.sys.page_size);
        self.net
            .send(&self.node, &self.server_node, (self.id, msg), bytes);
    }

    fn send_all(&self, msgs: Vec<C2S>) {
        for msg in msgs {
            self.send(msg);
        }
    }

    /// Trace a synchronous or asynchronous protocol request, deriving the
    /// displayed mode/sync flags from the message itself.
    fn trace_request(&self, msg: &C2S) {
        let (page, mode, sync) = match msg {
            C2S::LockFetch {
                page, mode, wait, ..
            } => (*page, Some(*mode), *wait),
            C2S::Fetch { page, .. } => (*page, None, true),
            C2S::CheckVersion { page, .. } => (*page, None, true),
            _ => return,
        };
        self.trace.record(
            self.env.now(),
            TraceEvent::Request {
                client: self.id,
                txn: self.core.txn(),
                page,
                mode,
                sync,
            },
        );
    }

    /// Record `d` of client-visible blocked time on `class` in this
    /// transaction's wait profile.
    fn note_wait(&mut self, class: WaitClass, d: SimDuration) {
        if !d.is_zero() {
            *self.waits.entry(class).or_insert(SimDuration::ZERO) += d;
        }
    }

    /// Fold the server-side ledger of the current attempt into the wait
    /// profile (called once per attempt, committed or aborted).
    fn fold_ledger(&mut self) {
        for (class, d) in self.book.take(self.core.txn()) {
            self.note_wait(class, d);
        }
    }

    async fn charge_pages(&mut self, n: usize) {
        let t0 = self.env.now();
        self.node
            .charge_cpu(self.cfg.sys.client_proc_page * n as u64)
            .await;
        let now = self.env.now();
        self.note_wait(WaitClass::ClientCpu, now.since(t0));
        self.trace.span(self.id, WaitClass::ClientCpu, t0, now);
    }

    /// Handle an asynchronous server message: record its metrics, let the
    /// core update the cache and transaction state, then trace and send
    /// whatever the core answered with.
    fn handle_async(&mut self, msg: S2C) {
        match &msg {
            S2C::Callback { .. } => self.metrics.record_callback(self.env.now()),
            S2C::Update { pages, .. } | S2C::Invalidate { pages } => self
                .metrics
                .record_update_push(self.env.now(), pages.len() as u64),
            _ => {}
        }
        let out = {
            let mut cache = self.cache.borrow_mut();
            self.core.handle_async(&mut cache, msg)
        };
        if let Some((page, released)) = out.callback_answer {
            self.trace.record(
                self.env.now(),
                TraceEvent::CallbackAnswer {
                    client: self.id,
                    page,
                    released,
                },
            );
        }
        self.send_all(out.sends);
    }

    /// Wait for the reply to `op`, servicing asynchronous messages.
    ///
    /// The elapsed wait splits into the server-side share (whatever the
    /// server attributed to this attempt's ledger meanwhile — CPU, disks,
    /// locks, admission) and a remainder charged to the network (message
    /// transit both ways plus anything the server does not attribute).
    async fn await_reply(&mut self, op: OpId) -> ReplyKind {
        let t0 = self.env.now();
        let before = self.book.attributed(self.core.txn());
        let kind = loop {
            let msg = self.node.inbox.recv().await;
            match msg {
                S2C::Reply { op: o, kind } if o == op => break kind,
                other => self.handle_async(other),
            }
        };
        let now = self.env.now();
        let server_share = self.book.attributed(self.core.txn()) - before;
        self.note_wait(WaitClass::Network, now.since(t0) - server_share);
        self.trace.span_labelled(self.id, "reply-wait", t0, now);
        kind
    }

    /// Idle for `d` (think time between transactions / restart delay),
    /// servicing asynchronous messages as they arrive.
    async fn idle_for(&mut self, d: SimDuration) {
        let deadline = self.env.now() + d;
        loop {
            match self.node.inbox.recv_until(deadline).await {
                None => return,
                Some(msg) => self.handle_async(msg),
            }
        }
    }

    /// Drain pending asynchronous messages; fail if the transaction has
    /// been restarted by the server.
    fn check_abort(&mut self) -> Result<(), AbortKind> {
        while let Some(msg) = self.node.inbox.try_recv() {
            self.handle_async(msg);
        }
        self.core.abort_pending()
    }

    fn begin_attempt(&mut self) {
        let txn = self.core.begin_attempt();
        self.book.open(txn);
    }

    // ---- ReadObject -----------------------------------------------------

    async fn read_page(&mut self, page: PageId) -> Result<(), AbortKind> {
        // No-wait locking polls for restart orders before every step; the
        // synchronous algorithms only see them while blocked on a reply.
        if matches!(self.cfg.algorithm, Algorithm::NoWait { .. }) {
            self.check_abort()?;
        }
        let action = {
            let mut cache = self.cache.borrow_mut();
            self.core.read_step(&mut cache, page)
        };
        match action {
            Action::Local { note } => {
                if note == Some(LocalNote::Read) {
                    self.trace.record(
                        self.env.now(),
                        TraceEvent::LocalRead {
                            client: self.id,
                            page,
                        },
                    );
                }
                Ok(())
            }
            Action::Async(msg) => {
                // No-wait locking's optimistic read: request the lock
                // asynchronously and keep running.
                self.trace_request(&msg);
                self.send(msg);
                Ok(())
            }
            Action::Sync(sop) => {
                self.trace_request(&sop.msg);
                self.send(sop.msg.clone());
                let kind = self.await_reply(sop.op).await;
                let sends = {
                    let mut cache = self.cache.borrow_mut();
                    self.core.apply_read_reply(&mut cache, sop.kind, page, kind)
                }?;
                self.send_all(sends);
                Ok(())
            }
        }
    }

    // ---- UpdateObject ---------------------------------------------------

    async fn write_page(&mut self, page: PageId) -> Result<(), AbortKind> {
        if matches!(self.cfg.algorithm, Algorithm::NoWait { .. }) {
            self.check_abort()?;
        }
        let action = {
            let mut cache = self.cache.borrow_mut();
            self.core.write_step(&mut cache, page)
        };
        match action {
            Action::Local { note } => {
                if note == Some(LocalNote::Write) {
                    self.trace.record(
                        self.env.now(),
                        TraceEvent::LocalWrite {
                            client: self.id,
                            page,
                        },
                    );
                }
                Ok(())
            }
            Action::Async(msg) => {
                // No-wait locking's asynchronous X request (not traced as
                // a Request event, matching the reference implementation).
                self.send(msg);
                Ok(())
            }
            Action::Sync(sop) => {
                self.trace_request(&sop.msg);
                self.send(sop.msg.clone());
                let kind = self.await_reply(sop.op).await;
                let sends = {
                    let mut cache = self.cache.borrow_mut();
                    self.core.apply_write_reply(&mut cache, page, kind)
                }?;
                self.send_all(sends);
                Ok(())
            }
        }
    }

    // ---- CommitXact -----------------------------------------------------

    async fn commit(&mut self) -> Result<(), AbortKind> {
        if matches!(self.cfg.algorithm, Algorithm::NoWait { .. }) {
            self.check_abort()?;
        }
        let action = {
            let cache = self.cache.borrow();
            self.core.commit_step(&cache)
        };
        match action {
            CommitAction::Local => {
                // A callback-locking transaction that ran entirely on
                // retained locks and wrote nothing commits locally — no
                // server message at all. This is where callback locking
                // wins at high locality.
                self.trace.record(
                    self.env.now(),
                    TraceEvent::Commit {
                        client: self.id,
                        txn: self.core.txn(),
                        dirty: 0,
                        local: true,
                    },
                );
                Ok(())
            }
            CommitAction::Send { op, dirty, msg } => {
                self.send(msg);
                let kind = self.await_reply(op).await;
                if matches!(kind, ReplyKind::Committed { .. }) {
                    self.trace.record(
                        self.env.now(),
                        TraceEvent::Commit {
                            client: self.id,
                            txn: self.core.txn(),
                            dirty: dirty.len(),
                            local: false,
                        },
                    );
                }
                let mut cache = self.cache.borrow_mut();
                self.core.apply_commit_reply(&mut cache, &dirty, kind)?;
                Ok(())
            }
        }
    }

    /// Post-commit bookkeeping.
    fn finish_commit(&mut self) {
        let sends = {
            let mut cache = self.cache.borrow_mut();
            self.core.finish_commit(&mut cache)
        };
        self.send_all(sends);
    }

    /// Post-abort bookkeeping: locally updated pages hold uncommitted data
    /// and are invalidated; transaction lock marks are dropped (the server
    /// already released the real locks without retention).
    fn abort_cleanup(&mut self) {
        let sends = {
            let mut cache = self.cache.borrow_mut();
            self.core.abort_cleanup(&mut cache)
        };
        self.send_all(sends);
    }

    /// User think time inside a transaction: a plain hold by default
    /// (reproducing the paper's quirk), or a message-servicing wait under
    /// the responsive-client tuning.
    async fn think(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        let t0 = self.env.now();
        if self.cfg.tuning.responsive_client {
            self.idle_for(d).await;
        } else {
            self.env.hold(d).await;
        }
        let now = self.env.now();
        self.note_wait(WaitClass::Other, now.since(t0));
        self.trace.span(self.id, WaitClass::Other, t0, now);
    }

    fn restart_delay(&mut self) -> SimDuration {
        if self.cfg.tuning.zero_restart_delay {
            return SimDuration::ZERO;
        }
        // ACL model: exponential with mean = average response time so far.
        let mean = if self.resp_n == 0 {
            1.0
        } else {
            self.resp_sum / self.resp_n as f64
        };
        self.rng.exp_duration(SimDuration::from_secs_f64(mean))
    }

    /// Execute one attempt of the transaction (Figure 3).
    async fn execute(&mut self, spec: &TxnSpec) -> Result<(), AbortKind> {
        for op in &spec.ops {
            for &page in &op.pages {
                self.read_page(page).await?;
            }
            self.charge_pages(op.pages.len()).await;
            self.check_abort()?;
            // Think time between read and update; the paper's client does
            // not process messages during user delays (§5.5) — the
            // responsive_client tuning removes that limitation.
            let d = self.workload.update_delay();
            self.think(d).await;
            let write_pages: Vec<PageId> = op
                .pages
                .iter()
                .zip(&op.writes)
                .filter(|(_, w)| **w)
                .map(|(p, _)| *p)
                .collect();
            if !write_pages.is_empty() {
                for &page in &write_pages {
                    self.write_page(page).await?;
                }
                self.charge_pages(write_pages.len()).await;
                self.check_abort()?;
            }
            let d = self.workload.internal_delay();
            self.think(d).await;
        }
        self.commit().await
    }
}

/// Run a client forever (the simulation horizon bounds it).
pub async fn run_client(mut c: Client) {
    loop {
        let think = c.workload.external_delay();
        let idle_t0 = c.env.now();
        c.idle_for(think).await;
        c.trace.span_labelled(c.id, "idle", idle_t0, c.env.now());
        let spec = c.workload.next_txn();
        let origin = c.env.now();
        c.waits.clear();
        let mut restarts: u32 = 0;
        loop {
            c.begin_attempt();
            c.trace.record(
                c.env.now(),
                TraceEvent::TxnBegin {
                    client: c.id,
                    txn: c.core.txn(),
                    attempt: restarts,
                },
            );
            match c.execute(&spec).await {
                Ok(()) => {
                    c.fold_ledger();
                    let now = c.env.now();
                    let resp = now.since(origin).as_secs_f64();
                    c.metrics
                        .record_commit_typed(now, resp, restarts, spec.type_idx);
                    c.metrics.record_commit_waits(now, &c.waits);
                    c.finish_commit();
                    c.resp_sum += resp;
                    c.resp_n += 1;
                    c.workload.note_commit(&spec);
                    break;
                }
                Err(kind) => {
                    c.fold_ledger();
                    restarts += 1;
                    c.trace.record(
                        c.env.now(),
                        TraceEvent::Abort {
                            client: c.id,
                            txn: c.core.txn(),
                            kind,
                        },
                    );
                    c.metrics.record_abort(c.env.now(), kind);
                    c.abort_cleanup();
                    // Restart back-off is attributed to its own wait class
                    // per abort cause, not lumped into `other`, so the wait
                    // profile separates protocol-induced idling from think
                    // time.
                    let class = WaitClass::Restart(match kind {
                        AbortKind::Deadlock => RestartCause::Deadlock,
                        AbortKind::StaleRead => RestartCause::StaleRead,
                        AbortKind::Validation => RestartCause::Validation,
                    });
                    let d = c.restart_delay();
                    let t0 = c.env.now();
                    c.idle_for(d).await;
                    let now = c.env.now();
                    c.note_wait(class, now.since(t0));
                    c.trace.span(c.id, class, t0, now);
                }
            }
        }
    }
}
