//! # ccdb-core — the client/server DBMS cache-consistency simulator
//!
//! This crate is the paper's primary contribution: the five cache
//! consistency / concurrency control algorithms of Wang & Rowe (SIGMOD
//! 1991) running over a simulated page-server DBMS.
//!
//! * [`config`] — algorithm selection ([`Algorithm`]) and run
//!   configuration ([`SimConfig`]).
//! * [`msg`] — the client/server wire protocol.
//! * [`client`] — the client transaction module (cache manager +
//!   per-algorithm protocol).
//! * [`server`] — the server transaction module (lock manager, buffer
//!   manager, log manager, MPL admission, notification directory).
//! * [`metrics`] — response time / throughput / utilisation reporting.
//! * [`runner`] — [`run_simulation`]: one deterministic run → one
//!   [`RunReport`].
//! * [`experiments`] — the predefined configurations for every table and
//!   figure of the paper's evaluation.
//!
//! ```no_run
//! use ccdb_core::{run_simulation, Algorithm, SimConfig};
//!
//! let cfg = SimConfig::table5(Algorithm::Callback)
//!     .with_clients(10)
//!     .with_locality(0.75)
//!     .with_prob_write(0.2);
//! let report = run_simulation(cfg);
//! println!("{report}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod experiments;
pub mod metrics;
pub mod msg;
pub mod replication;
pub mod runner;
pub mod server;
pub mod trace;
pub mod wait;

pub use config::{Algorithm, SimConfig};
pub use metrics::{AbortKind, MetricsHub, ReportSummary, RunReport, TypeResponse, WaitRow};
pub use replication::{
    replication_seed, run_replicated, run_replicated_folded, run_replicated_observed,
    ReplicatedObserved, ReplicatedReport, ReplicationAccumulator, ReplicationAggregate,
};
pub use runner::{
    run_simulation, run_simulation_observed, run_simulation_profiled, run_simulation_profiled_jobs,
    run_simulation_traced, ObsOptions, Observed, Profiled,
};
pub use trace::{Trace, TraceEvent, TraceSpan};
pub use wait::WaitBook;
