//! The client/server wire protocol — re-exported from `ccdb-proto`.
//!
//! The message types moved to the sans-io crate so the real TCP
//! page-server (`ccdb-server`) and the simulator speak literally the same
//! enums; this module keeps the historical import path alive.

pub use ccdb_proto::{OpId, ReplyKind, C2S, S2C};
