//! Predefined experiment configurations for every table and figure of the
//! paper's evaluation (§4 verification, §5 experiments).
//!
//! Each function returns the configurations of one experiment family; the
//! `ccdb-bench` harnesses run them and print the paper's rows/series. The
//! experiment index in `DESIGN.md` maps each figure to these builders.

use ccdb_des::SimDuration;
use ccdb_model::TxnParams;

use crate::config::{Algorithm, SimConfig};

/// The client-population sweep of §4/§5: 2, 10, 30, 50 workstations.
pub const CLIENT_SWEEP: [u32; 4] = [2, 10, 30, 50];

/// The locality levels of §5.1 (Figures 8–11).
pub const LOCALITY_LEVELS: [f64; 4] = [0.05, 0.25, 0.50, 0.75];

/// The write probabilities of §4/§5.
pub const WRITE_PROBS: [f64; 3] = [0.0, 0.2, 0.5];

/// The MPL sweep of the ACL verification experiment (Table 4).
pub const ACL_MPL_SWEEP: [u32; 7] = [5, 10, 25, 50, 75, 100, 200];

/// The four algorithms compared in §5 (Figures 8–22).
pub const SECTION5_ALGORITHMS: [Algorithm; 4] = Algorithm::EXPERIMENT_SET;

/// The four caching configurations of the §4 verification experiment
/// (Figures 5–7): {2PL, certification} × {intra, inter}.
pub const CACHING_ALGORITHMS: [Algorithm; 4] = [
    Algorithm::TwoPhase { inter: false },
    Algorithm::TwoPhase { inter: true },
    Algorithm::Certification { inter: false },
    Algorithm::Certification { inter: true },
];

/// Experiment 1 of §4: the ACL comparison on the Table 4 configuration.
/// One run per (algorithm, MPL); the metric is throughput.
pub fn acl_verification(algorithm: Algorithm, mpl: u32) -> SimConfig {
    let mut cfg = SimConfig::table4_acl(algorithm);
    cfg.sys.mpl = mpl;
    cfg
}

/// Experiment 2 of §4 (Figures 5–7): intra vs inter caching under the
/// Table 5 configuration.
pub fn caching_verification(
    algorithm: Algorithm,
    clients: u32,
    locality: f64,
    prob_write: f64,
) -> SimConfig {
    SimConfig::table5(algorithm)
        .with_clients(clients)
        .with_locality(locality)
        .with_prob_write(prob_write)
}

/// §5.1 (Figures 8–13): short transactions, server-bound system.
pub fn short_txn(algorithm: Algorithm, clients: u32, locality: f64, prob_write: f64) -> SimConfig {
    SimConfig::table5(algorithm)
        .with_clients(clients)
        .with_locality(locality)
        .with_prob_write(prob_write)
}

/// §5.2 (Figures 14–15): large transactions (20–60 object reads).
pub fn large_txn(algorithm: Algorithm, clients: u32, locality: f64, prob_write: f64) -> SimConfig {
    let mut cfg = SimConfig::table5(algorithm)
        .with_clients(clients)
        .with_locality(locality)
        .with_prob_write(prob_write);
    cfg.txn = TxnParams {
        prob_write,
        inter_xact_loc: locality,
        ..TxnParams::large_batch()
    };
    cfg
}

/// §5.3 (Figures 16–17): 20 MIPS server; the network becomes the
/// bottleneck.
pub fn fast_server(
    algorithm: Algorithm,
    clients: u32,
    locality: f64,
    prob_write: f64,
) -> SimConfig {
    let mut cfg = short_txn(algorithm, clients, locality, prob_write);
    cfg.sys.server_mips = 20.0;
    cfg
}

/// §5.4 (Figures 18–21): 20 MIPS server and zero network delay; the data
/// disks become the most contended resource.
pub fn fast_net_fast_server(
    algorithm: Algorithm,
    clients: u32,
    locality: f64,
    prob_write: f64,
) -> SimConfig {
    let mut cfg = fast_server(algorithm, clients, locality, prob_write);
    cfg.sys.net_delay = SimDuration::ZERO;
    cfg
}

/// §5.5 (Figure 22): interactive transactions (UpdateDelay 5 s,
/// InternalDelay 2 s).
pub fn interactive(
    algorithm: Algorithm,
    clients: u32,
    locality: f64,
    prob_write: f64,
) -> SimConfig {
    let mut cfg = short_txn(algorithm, clients, locality, prob_write);
    cfg.txn.update_delay = SimDuration::from_secs(5);
    cfg.txn.internal_delay = SimDuration::from_secs(2);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_valid_configs() {
        for alg in SECTION5_ALGORITHMS {
            for &c in &CLIENT_SWEEP {
                short_txn(alg, c, 0.25, 0.2).validate();
                large_txn(alg, c, 0.75, 0.5).validate();
                fast_server(alg, c, 0.25, 0.2).validate();
                fast_net_fast_server(alg, c, 0.75, 0.0).validate();
                interactive(alg, c, 0.25, 0.5).validate();
            }
        }
        for alg in CACHING_ALGORITHMS {
            caching_verification(alg, 30, 0.5, 0.2).validate();
        }
        for &mpl in &ACL_MPL_SWEEP {
            acl_verification(Algorithm::TwoPhase { inter: true }, mpl).validate();
        }
    }

    #[test]
    fn large_txn_uses_large_sizes() {
        let cfg = large_txn(Algorithm::Callback, 10, 0.25, 0.2);
        assert_eq!(cfg.txn.min_xact_size, 20);
        assert_eq!(cfg.txn.max_xact_size, 60);
        assert_eq!(cfg.txn.prob_write, 0.2);
        assert_eq!(cfg.txn.inter_xact_loc, 0.25);
    }

    #[test]
    fn fast_variants_adjust_system() {
        let f = fast_server(Algorithm::Callback, 10, 0.25, 0.2);
        assert_eq!(f.sys.server_mips, 20.0);
        let fn_ = fast_net_fast_server(Algorithm::Callback, 10, 0.25, 0.2);
        assert_eq!(fn_.sys.net_delay, SimDuration::ZERO);
    }

    #[test]
    fn interactive_has_think_times() {
        let cfg = interactive(Algorithm::Callback, 10, 0.25, 0.0);
        assert_eq!(cfg.txn.update_delay, SimDuration::from_secs(5));
        assert_eq!(cfg.txn.internal_delay, SimDuration::from_secs(2));
    }
}
