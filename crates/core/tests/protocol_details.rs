//! Focused protocol-mechanics tests: each exercises one specific behaviour
//! of the client/server protocols through a small simulation.

use ccdb_core::{run_simulation, Algorithm, RunReport, SimConfig};
use ccdb_des::SimDuration;

fn base(alg: Algorithm) -> SimConfig {
    SimConfig::table5(alg)
        .with_clients(10)
        .with_locality(0.5)
        .with_prob_write(0.2)
        .with_horizon(SimDuration::from_secs(5), SimDuration::from_secs(40))
}

fn run(cfg: SimConfig) -> RunReport {
    run_simulation(cfg)
}

#[test]
fn mpl_one_serialises_the_server() {
    // With MPL = 1 the server admits one transaction at a time; commits
    // still happen but throughput falls well below the unconstrained run.
    let mut constrained = base(Algorithm::TwoPhase { inter: true });
    constrained.sys.mpl = 1;
    let open = base(Algorithm::TwoPhase { inter: true });
    let c = run(constrained);
    let o = run(open);
    assert!(c.commits > 10, "MPL=1 must still make progress");
    assert!(
        c.throughput < o.throughput * 0.6,
        "MPL=1 throughput {} vs open {}",
        c.throughput,
        o.throughput
    );
}

#[test]
fn tiny_buffer_pool_kills_buffer_hits() {
    let mut tiny = base(Algorithm::TwoPhase { inter: true });
    tiny.sys.buffer_size = 1;
    let t = run(tiny);
    let b = run(base(Algorithm::TwoPhase { inter: true }));
    assert!(
        t.buffer_hit_ratio < b.buffer_hit_ratio,
        "1-frame pool {} vs 400-frame pool {}",
        t.buffer_hit_ratio,
        b.buffer_hit_ratio
    );
    assert!(t.buffer_hit_ratio < 0.05, "got {}", t.buffer_hit_ratio);
}

#[test]
fn message_counts_reflect_the_protocols() {
    // Read-only, zero-locality: every object read is a miss.
    //   C2PL: one lock+fetch round per page + commit (to release locks).
    //   COCC: one fetch per page + commit (to validate).
    //   CB:   like C2PL, but the commit can be local only if nothing was
    //         fetched — with all misses it still needs lock requests.
    let cfg = |alg| {
        base(alg)
            .with_locality(0.0)
            .with_prob_write(0.0)
            .with_clients(5)
    };
    let tp = run(cfg(Algorithm::TwoPhase { inter: true }));
    // Mean 8 reads: 8 requests + 8 replies + commit + ack = 18.
    assert!(
        (16.0..20.0).contains(&tp.msgs_per_commit),
        "C2PL msgs/commit {}",
        tp.msgs_per_commit
    );
    let occ = run(cfg(Algorithm::Certification { inter: true }));
    assert!(
        (16.0..20.0).contains(&occ.msgs_per_commit),
        "COCC msgs/commit {}",
        occ.msgs_per_commit
    );
}

#[test]
fn callback_saves_messages_as_locality_grows() {
    let lo = run(base(Algorithm::Callback)
        .with_locality(0.05)
        .with_prob_write(0.0));
    let hi = run(base(Algorithm::Callback)
        .with_locality(0.75)
        .with_prob_write(0.0));
    assert!(
        hi.msgs_per_commit < lo.msgs_per_commit * 0.6,
        "messages should fall with locality: {} vs {}",
        hi.msgs_per_commit,
        lo.msgs_per_commit
    );
}

#[test]
fn no_wait_sends_fewer_messages_than_two_phase() {
    // The server does not reply to successful asynchronous requests.
    let nw = run(base(Algorithm::NoWait { notify: false }).with_locality(0.75));
    let tp = run(base(Algorithm::TwoPhase { inter: true }).with_locality(0.75));
    assert!(
        nw.msgs_per_commit < tp.msgs_per_commit,
        "NW {} vs C2PL {}",
        nw.msgs_per_commit,
        tp.msgs_per_commit
    );
}

#[test]
fn deadlocks_rise_with_write_probability() {
    let low = run(base(Algorithm::TwoPhase { inter: true }).with_prob_write(0.1));
    let high = run(base(Algorithm::TwoPhase { inter: true })
        .with_prob_write(0.6)
        .with_clients(20));
    assert!(
        high.lock_stats.deadlocks >= low.lock_stats.deadlocks,
        "deadlocks: low-W {} vs high-W {}",
        low.lock_stats.deadlocks,
        high.lock_stats.deadlocks
    );
}

#[test]
fn percentiles_are_ordered_and_bracket_the_mean() {
    let r = run(base(Algorithm::TwoPhase { inter: true }).with_clients(20));
    assert!(r.resp_p50 > 0.0);
    assert!(r.resp_p50 <= r.resp_p90);
    assert!(r.resp_p90 <= r.resp_p99);
    // The mean of a right-skewed response distribution sits between the
    // median and the p99.
    assert!(
        r.resp_p50 <= r.resp_time_mean * 1.2,
        "p50 {} vs mean {}",
        r.resp_p50,
        r.resp_time_mean
    );
    assert!(r.resp_time_mean <= r.resp_p99 * 1.2);
}

#[test]
fn per_type_metrics_split_a_mix() {
    use ccdb_model::TxnParams;
    let small = TxnParams {
        min_xact_size: 2,
        max_xact_size: 4,
        ..TxnParams::short_batch()
    };
    let large = TxnParams {
        min_xact_size: 16,
        max_xact_size: 24,
        ..TxnParams::short_batch()
    };
    let cfg = base(Algorithm::TwoPhase { inter: true }).with_named_txn_mix(vec![
        ("small".to_string(), small, 0.5),
        ("large".to_string(), large, 0.5),
    ]);
    let r = run(cfg);
    assert_eq!(r.resp_by_type.len(), 2, "two types reported");
    assert_eq!(r.resp_by_type[0].label, "small");
    assert_eq!(r.resp_by_type[1].label, "large");
    let (n0, m0) = (r.resp_by_type[0].commits, r.resp_by_type[0].resp_mean_s);
    let (n1, m1) = (r.resp_by_type[1].commits, r.resp_by_type[1].resp_mean_s);
    assert!(n0 > 0 && n1 > 0, "both types commit");
    assert!(
        m1 > m0 * 2.0,
        "large transactions must be much slower: {m0} vs {m1}"
    );
    assert_eq!(n0 + n1, r.commits);
}

#[test]
fn dirty_pages_ship_with_the_commit_payload() {
    // Higher write probability means more bytes per commit, which under a
    // slow network shows up as more packets (observable through the
    // message/response-time relation). We check the direct accounting:
    // messages per commit grow slightly (X-lock upgrades) and the run
    // stays consistent.
    let ro = run(base(Algorithm::TwoPhase { inter: true }).with_prob_write(0.0));
    let rw = run(base(Algorithm::TwoPhase { inter: true }).with_prob_write(0.5));
    assert!(
        rw.msgs_per_commit > ro.msgs_per_commit,
        "upgrades must add messages: {} vs {}",
        rw.msgs_per_commit,
        ro.msgs_per_commit
    );
}

#[test]
fn oracle_runs_by_default_and_can_be_disabled() {
    let mut cfg = base(Algorithm::TwoPhase { inter: true });
    assert!(cfg.oracle);
    cfg.oracle = false;
    let r = run(cfg);
    assert!(r.commits > 0);
}
