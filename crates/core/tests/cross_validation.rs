//! Analytical cross-validation: for a single client with no contention the
//! mean response time is a closed-form sum of the model's service times.
//! The simulator must land on it. This is the classic sanity check for a
//! queueing simulator — if the charging points drift, these tests move.

use ccdb_core::{run_simulation, Algorithm, SimConfig};
use ccdb_des::SimDuration;
use ccdb_model::{DatabaseSpec, TxnParams};

/// Table 5 cost constants, in seconds.
mod cost {
    /// MsgCost 5000 instr at ClientMips 1.
    pub const CLIENT_MSG: f64 = 0.005;
    /// MsgCost 5000 instr at ServerMips 2.
    pub const SERVER_MSG: f64 = 0.0025;
    /// Mean exponential packet delay (NetDelay 2 ms).
    pub const NET: f64 = 0.002;
    /// InitDiskCost 5000 instr at ServerMips 2.
    pub const INIT_DISK: f64 = 0.0025;
    /// Mean seek U[0,44] ms + 2 ms transfer.
    pub const DISK: f64 = 0.024;
    /// ServerProcPage 10000 instr at ServerMips 2.
    pub const SERVER_PAGE: f64 = 0.005;
    /// ClientProcPage 20000 instr at ClientMips 1.
    pub const CLIENT_PAGE: f64 = 0.020;
    /// One log block transfer (2 ms), sequential.
    pub const LOG_BLOCK: f64 = 0.002;
}

/// A single-client, read-only, zero-locality configuration over a database
/// big enough that cache and buffer hits are negligible.
fn lone_client(alg: Algorithm) -> SimConfig {
    let mut cfg = SimConfig::table5(alg)
        .with_clients(1)
        .with_locality(0.0)
        .with_prob_write(0.0)
        .with_horizon(SimDuration::from_secs(10), SimDuration::from_secs(400));
    cfg.db = DatabaseSpec::uniform(40, 2_000, 1, 1.0); // 80k pages
    cfg.txn = TxnParams {
        min_xact_size: 8,
        max_xact_size: 8, // deterministic transaction size
        prob_write: 0.0,
        inter_xact_loc: 0.0,
        ..TxnParams::short_batch()
    };
    cfg
}

/// Expected seconds for one synchronous lock+fetch round trip ending in a
/// buffer-miss page ship, uncontended.
fn fetch_round_trip() -> f64 {
    // request: client CPU + net + server CPU (1 packet each way)
    // service: disk init + disk + per-page CPU
    // reply:   server CPU + net + client CPU
    // client page processing after the access
    cost::CLIENT_MSG
        + cost::NET
        + cost::SERVER_MSG
        + cost::INIT_DISK
        + cost::DISK
        + cost::SERVER_PAGE
        + cost::SERVER_MSG
        + cost::NET
        + cost::CLIENT_MSG
        + cost::CLIENT_PAGE
}

/// Expected seconds for the read-only commit round (no dirty pages, one
/// log block).
fn commit_round_trip() -> f64 {
    cost::CLIENT_MSG
        + cost::NET
        + cost::SERVER_MSG
        + cost::LOG_BLOCK
        + cost::SERVER_MSG
        + cost::NET
        + cost::CLIENT_MSG
}

#[test]
fn two_phase_matches_closed_form() {
    let r = run_simulation(lone_client(Algorithm::TwoPhase { inter: true }));
    let expected = 8.0 * fetch_round_trip() + commit_round_trip();
    let rel = (r.resp_time_mean - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "C2PL: simulated {:.4}s vs analytical {:.4}s ({:.1}% off)",
        r.resp_time_mean,
        expected,
        rel * 100.0
    );
    assert_eq!(r.aborts, 0);
}

#[test]
fn certification_matches_closed_form() {
    // Identical message pattern for a read-only lone client: fetch per
    // page, commit validates trivially.
    let r = run_simulation(lone_client(Algorithm::Certification { inter: true }));
    let expected = 8.0 * fetch_round_trip() + commit_round_trip();
    let rel = (r.resp_time_mean - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "COCC: simulated {:.4}s vs analytical {:.4}s",
        r.resp_time_mean,
        expected
    );
}

#[test]
fn no_wait_lone_client_matches_closed_form() {
    // Every read misses (cold, huge database) so no-wait's fetches are
    // synchronous too; the commit round is the same.
    let r = run_simulation(lone_client(Algorithm::NoWait { notify: false }));
    let expected = 8.0 * fetch_round_trip() + commit_round_trip();
    let rel = (r.resp_time_mean - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "NW: simulated {:.4}s vs analytical {:.4}s",
        r.resp_time_mean,
        expected
    );
}

#[test]
fn throughput_matches_littles_law_for_one_client() {
    // One client cycles think(1s) -> transaction(R): throughput must be
    // 1 / (1 + R) transactions per second.
    let r = run_simulation(lone_client(Algorithm::TwoPhase { inter: true }));
    let predicted = 1.0 / (1.0 + r.resp_time_mean);
    let rel = (r.throughput - predicted).abs() / predicted;
    assert!(
        rel < 0.1,
        "throughput {:.4} vs Little's-law {:.4}",
        r.throughput,
        predicted
    );
}

#[test]
fn write_rounds_add_the_upgrade_cost() {
    // With ProbWrite 1.0 every page is read (fetch) then upgraded
    // (control round trip) and shipped at commit (1 page per packet).
    let mut cfg = lone_client(Algorithm::TwoPhase { inter: true });
    cfg.txn.prob_write = 1.0;
    // A buffer pool bigger than the database: no evictions, so no
    // steady-state write-back I/O muddies the closed form.
    cfg.sys.buffer_size = 100_000;
    let r = run_simulation(cfg);
    let upgrade = cost::CLIENT_MSG + cost::NET + cost::SERVER_MSG   // X request
        + cost::SERVER_MSG + cost::NET + cost::CLIENT_MSG           // Valid reply
        + cost::CLIENT_PAGE; // client-side update processing
                             // Commit ships 8 dirty pages: 8 packets each way of costs, server
                             // processes 8 pages, log force is 9 blocks.
    let commit = 8.0 * (cost::CLIENT_MSG + cost::NET + cost::SERVER_MSG)
        + 8.0 * cost::SERVER_PAGE
        + 9.0 * cost::LOG_BLOCK
        + cost::SERVER_MSG
        + cost::NET
        + cost::CLIENT_MSG;
    let expected = 8.0 * (fetch_round_trip() + upgrade) + commit;
    let rel = (r.resp_time_mean - expected).abs() / expected;
    assert!(
        rel < 0.05,
        "write txn: simulated {:.4}s vs analytical {:.4}s",
        r.resp_time_mean,
        expected
    );
}
