//! End-to-end smoke tests: every algorithm commits work, the oracle holds,
//! and runs are deterministic.

use ccdb_core::{run_simulation, Algorithm, SimConfig};
use ccdb_des::SimDuration;

fn quick(algorithm: Algorithm) -> SimConfig {
    SimConfig::table5(algorithm)
        .with_clients(5)
        .with_prob_write(0.3)
        .with_locality(0.5)
        .with_horizon(SimDuration::from_secs(5), SimDuration::from_secs(40))
}

#[test]
fn two_phase_inter_commits() {
    let r = run_simulation(quick(Algorithm::TwoPhase { inter: true }));
    assert!(r.commits > 50, "commits: {}", r.commits);
    assert!(r.resp_time_mean > 0.0);
}

#[test]
fn two_phase_intra_commits() {
    let r = run_simulation(quick(Algorithm::TwoPhase { inter: false }));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn certification_inter_commits() {
    let r = run_simulation(quick(Algorithm::Certification { inter: true }));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn certification_intra_commits() {
    let r = run_simulation(quick(Algorithm::Certification { inter: false }));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn callback_commits() {
    let r = run_simulation(quick(Algorithm::Callback));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn no_wait_commits() {
    let r = run_simulation(quick(Algorithm::NoWait { notify: false }));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn no_wait_notify_commits() {
    let r = run_simulation(quick(Algorithm::NoWait { notify: true }));
    assert!(r.commits > 50, "commits: {}", r.commits);
}

#[test]
fn runs_are_deterministic() {
    let a = run_simulation(quick(Algorithm::Callback));
    let b = run_simulation(quick(Algorithm::Callback));
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.events, b.events);
    assert_eq!(a.resp_time_mean, b.resp_time_mean);
}

#[test]
fn different_seeds_differ() {
    let a = run_simulation(quick(Algorithm::Callback));
    let b = run_simulation(quick(Algorithm::Callback).with_seed(999));
    assert_ne!(a.events, b.events);
}
