//! Server-level protocol tests: messages are injected straight into the
//! server inbox (no client runtime), and the replies the server sends to
//! the per-client stations are asserted. This pins the server transaction
//! module's behaviour independent of the client implementation.

use std::rc::Rc;

use ccdb_core::msg::{ReplyKind, C2S, S2C};
use ccdb_core::server::Server;
use ccdb_core::{Algorithm, SimConfig, Trace, WaitBook};
use ccdb_des::{Pcg32, Sim, SimDuration, SimTime, WaitClass};
use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::{ClassId, PageId};
use ccdb_net::{Network, NetworkNode};

struct Rig {
    sim: Sim,
    server: Server,
    clients: Rc<Vec<NetworkNode<S2C>>>,
    net: Network,
    horizon: std::cell::Cell<u64>,
}

fn rig(algorithm: Algorithm, n_clients: u32) -> Rig {
    let mut cfg = SimConfig::table5(algorithm).with_clients(n_clients);
    // Make the rig fast and exact: free network, fixed disks.
    cfg.sys.net_delay = SimDuration::ZERO;
    cfg.sys.msg_cost = 0;
    let sim = Sim::new();
    let env = sim.env();
    let mut rng = Pcg32::new(1, 1);
    let net = Network::new(&env, &cfg.sys, rng.split(0));
    let clients: Rc<Vec<NetworkNode<S2C>>> = Rc::new(
        (0..n_clients)
            .map(|i| NetworkNode::new(&env, format!("c{i}"), 1, 1.0, WaitClass::ClientCpu))
            .collect(),
    );
    let server = Server::spawn(
        &env,
        Rc::new(cfg),
        net.clone(),
        Rc::clone(&clients),
        &mut rng,
        WaitBook::new(),
        Trace::disabled(),
    );
    Rig {
        sim,
        server,
        clients,
        net,
        horizon: std::cell::Cell::new(0),
    }
}

fn page(n: u32) -> PageId {
    PageId {
        class: ClassId(0),
        atom: n,
    }
}

impl Rig {
    fn send(&self, from: u32, msg: C2S) {
        self.net.send(
            &self.clients[from as usize],
            &self.server.node,
            (ClientId(from), msg),
            0,
        );
    }

    fn run(&self) {
        // The server dispatcher runs forever, so each step advances a
        // bounded horizon far enough for any pending I/O to complete.
        let next = self.horizon.get() + 10;
        self.horizon.set(next);
        self.sim
            .run_until(SimTime::ZERO + SimDuration::from_secs(next));
    }

    fn replies(&self, client: u32) -> Vec<S2C> {
        let mut out = Vec::new();
        while let Some(m) = self.clients[client as usize].inbox.try_recv() {
            out.push(m);
        }
        out
    }
}

fn lock_fetch(txn: u64, p: PageId, mode: Mode, v: Option<u64>, op: u64) -> C2S {
    C2S::LockFetch {
        txn: TxnId(txn),
        page: p,
        mode,
        cached_version: v,
        wait: true,
        op,
    }
}

fn commit(txn: u64, read_set: Vec<(PageId, u64)>, dirty: Vec<PageId>, ops: u32, op: u64) -> C2S {
    C2S::Commit {
        txn: TxnId(txn),
        read_set,
        dirty,
        ops_sent: ops,
        op,
    }
}

#[test]
fn cold_fetch_ships_page_at_version_zero() {
    let r = rig(Algorithm::TwoPhase { inter: true }, 1);
    r.send(0, lock_fetch(1, page(5), Mode::S, None, 1));
    r.run();
    let replies = r.replies(0);
    assert_eq!(replies.len(), 1);
    assert!(matches!(
        replies[0],
        S2C::Reply {
            op: 1,
            kind: ReplyKind::PageData { version: 0 }
        }
    ));
    assert_eq!(r.server.version_of(page(5)), 0);
}

#[test]
fn current_version_is_validated_without_data() {
    let r = rig(Algorithm::TwoPhase { inter: true }, 1);
    r.send(0, lock_fetch(1, page(5), Mode::S, Some(0), 1));
    r.run();
    let replies = r.replies(0);
    assert!(matches!(
        replies[0],
        S2C::Reply {
            op: 1,
            kind: ReplyKind::Valid
        }
    ));
}

#[test]
fn commit_bumps_versions_and_releases_locks() {
    let r = rig(Algorithm::TwoPhase { inter: true }, 2);
    // Txn 1 (client 0) reads and writes page 5, then commits.
    r.send(0, lock_fetch(1, page(5), Mode::S, None, 1));
    r.send(0, lock_fetch(1, page(5), Mode::X, Some(0), 2));
    r.send(0, commit(1, vec![(page(5), 0)], vec![page(5)], 2, 3));
    r.run();
    let replies = r.replies(0);
    assert!(matches!(
        replies.last(),
        Some(S2C::Reply {
            kind: ReplyKind::Committed { new_version: 1 },
            ..
        })
    ));
    assert_eq!(r.server.version_of(page(5)), 1);
    // Client 1 can now lock the page; its stale version 0 gets fresh data.
    r.send(1, lock_fetch(2, page(5), Mode::S, Some(0), 1));
    r.run();
    let replies = r.replies(1);
    assert!(matches!(
        replies[0],
        S2C::Reply {
            kind: ReplyKind::PageData { version: 1 },
            ..
        }
    ));
}

#[test]
fn conflicting_writer_waits_for_commit() {
    let r = rig(Algorithm::TwoPhase { inter: true }, 2);
    r.send(0, lock_fetch(1, page(7), Mode::X, None, 1));
    r.run();
    assert_eq!(r.replies(0).len(), 1);
    // Client 1 wants the same page: no reply until txn 1 commits.
    r.send(1, lock_fetch(2, page(7), Mode::X, Some(0), 1));
    r.run();
    assert!(r.replies(1).is_empty(), "writer must be blocked");
    r.send(0, commit(1, vec![(page(7), 0)], vec![page(7)], 1, 2));
    r.run();
    let replies = r.replies(1);
    assert_eq!(replies.len(), 1, "blocked writer resumes after commit");
    assert!(matches!(
        replies[0],
        S2C::Reply {
            kind: ReplyKind::PageData { version: 1 },
            ..
        }
    ));
}

#[test]
fn certification_rejects_stale_read_sets() {
    let r = rig(Algorithm::Certification { inter: true }, 2);
    // Both clients read page 3 at version 0.
    r.send(
        0,
        C2S::Fetch {
            txn: TxnId(1),
            page: page(3),
            op: 1,
        },
    );
    r.send(
        1,
        C2S::Fetch {
            txn: TxnId(2),
            page: page(3),
            op: 1,
        },
    );
    r.run();
    r.replies(0);
    r.replies(1);
    // Client 0 commits a write first; client 1's validation must fail.
    r.send(0, commit(1, vec![(page(3), 0)], vec![page(3)], 1, 2));
    r.run();
    r.send(1, commit(2, vec![(page(3), 0)], vec![page(3)], 1, 2));
    r.run();
    assert!(matches!(
        r.replies(0).last(),
        Some(S2C::Reply {
            kind: ReplyKind::Committed { .. },
            ..
        })
    ));
    assert!(matches!(
        r.replies(1).last(),
        Some(S2C::Reply {
            kind: ReplyKind::Aborted,
            ..
        })
    ));
}

#[test]
fn callback_cycle_end_to_end() {
    let r = rig(Algorithm::Callback, 2);
    // Client 0's txn reads page 9 and commits, retaining the lock.
    r.send(0, lock_fetch(1, page(9), Mode::S, None, 1));
    r.send(0, commit(1, vec![(page(9), 0)], vec![], 1, 2));
    r.run();
    r.replies(0);
    // Client 1 wants to write page 9: server must call client 0 back.
    r.send(1, lock_fetch(2, page(9), Mode::X, Some(0), 1));
    r.run();
    let cb: Vec<S2C> = r.replies(0);
    assert!(
        matches!(cb.as_slice(), [S2C::Callback { page: p }] if *p == page(9)),
        "expected exactly one callback, got {cb:?}"
    );
    assert!(r.replies(1).is_empty(), "writer still blocked");
    // Client 0 releases; the writer gets its lock (Valid: version current).
    r.send(
        0,
        C2S::CallbackReply {
            page: page(9),
            released: true,
            blocker: None,
        },
    );
    r.run();
    assert!(matches!(
        r.replies(1).as_slice(),
        [S2C::Reply {
            kind: ReplyKind::Valid,
            ..
        }]
    ));
}

#[test]
fn mpl_one_queues_the_second_transaction() {
    let mut cfg = SimConfig::table5(Algorithm::TwoPhase { inter: true }).with_clients(2);
    cfg.sys.net_delay = SimDuration::ZERO;
    cfg.sys.msg_cost = 0;
    cfg.sys.mpl = 1;
    let sim = Sim::new();
    let env = sim.env();
    let mut rng = Pcg32::new(1, 1);
    let net = Network::new(&env, &cfg.sys, rng.split(0));
    let clients: Rc<Vec<NetworkNode<S2C>>> = Rc::new(
        (0..2)
            .map(|i| NetworkNode::new(&env, format!("c{i}"), 1, 1.0, WaitClass::ClientCpu))
            .collect(),
    );
    let server = Server::spawn(
        &env,
        Rc::new(cfg),
        net.clone(),
        Rc::clone(&clients),
        &mut rng,
        WaitBook::new(),
        Trace::disabled(),
    );
    let r = Rig {
        sim,
        server,
        clients,
        net,
        horizon: std::cell::Cell::new(0),
    };
    // Txn 1 occupies the only MPL slot (it never commits yet).
    r.send(0, lock_fetch(1, page(1), Mode::S, None, 1));
    r.run();
    assert_eq!(r.replies(0).len(), 1);
    // Txn 2's first request parks at admission.
    r.send(1, lock_fetch(2, page(2), Mode::S, None, 1));
    r.run();
    assert!(r.replies(1).is_empty(), "txn 2 must wait for admission");
    // Txn 1 commits; txn 2 is admitted and served.
    r.send(0, commit(1, vec![(page(1), 0)], vec![], 1, 2));
    r.run();
    assert_eq!(r.replies(1).len(), 1);
}
