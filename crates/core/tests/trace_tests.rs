//! Tests of the protocol trace: event sequences must tell a coherent
//! protocol story.

use ccdb_core::{run_simulation_traced, Algorithm, SimConfig, Trace, TraceEvent};
use ccdb_des::SimDuration;

fn traced(alg: Algorithm, loc: f64, pw: f64) -> (Vec<TraceEvent>, ccdb_core::RunReport) {
    let cfg = SimConfig::table5(alg)
        .with_clients(4)
        .with_locality(loc)
        .with_prob_write(pw)
        .with_horizon(SimDuration::from_secs(0), SimDuration::from_secs(20));
    let trace = Trace::enabled(100_000);
    let r = run_simulation_traced(cfg, trace.clone());
    (trace.events().into_iter().map(|(_, e)| e).collect(), r)
}

#[test]
fn every_commit_in_the_trace_follows_a_begin() {
    let (events, r) = traced(Algorithm::TwoPhase { inter: true }, 0.5, 0.2);
    let begins = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::TxnBegin { .. }))
        .count();
    let commits = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Commit { .. }))
        .count();
    let aborts = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Abort { .. }))
        .count();
    // Every attempt either commits, aborts, or is cut off by the horizon
    // (at most one in-flight attempt per client).
    assert!(begins >= commits + aborts);
    assert!(begins <= commits + aborts + 4);
    assert!(commits as u64 >= r.commits, "trace covers the whole run");
}

#[test]
fn callback_traces_pair_requests_with_answers() {
    let (events, _) = traced(Algorithm::Callback, 0.75, 0.5);
    let callbacks = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Callback { .. }))
        .count();
    let answers = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::CallbackAnswer { .. }))
        .count();
    assert!(callbacks > 0, "high contention must trigger callbacks");
    // Every callback is eventually answered; in-flight ones at the horizon
    // account for a small deficit.
    assert!(
        answers + 8 >= callbacks,
        "answers {answers} vs callbacks {callbacks}"
    );
}

#[test]
fn callback_read_only_high_locality_commits_locally() {
    // With W=0.5 every transaction writes and must contact the server; the
    // no-message commit needs a read-only, high-locality workload.
    let (events, _) = traced(Algorithm::Callback, 0.9, 0.0);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Commit { local: true, .. })),
        "retained locks must enable local commits"
    );
}

#[test]
fn no_wait_traces_show_async_requests() {
    let (events, _) = traced(Algorithm::NoWait { notify: true }, 0.75, 0.5);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Request { sync: false, .. })),
        "no-wait must fire asynchronous requests"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::UpdatePush { .. })),
        "notification must push updates"
    );
}

#[test]
fn certification_traces_have_no_lock_requests() {
    let (events, _) = traced(Algorithm::Certification { inter: true }, 0.5, 0.5);
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, TraceEvent::Request { mode: Some(_), .. })),
        "certification never requests locks"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::LocalWrite { .. })),
        "deferred updates are local writes"
    );
}

#[test]
fn tracing_does_not_change_the_simulation() {
    let cfg = || {
        SimConfig::table5(Algorithm::Callback)
            .with_clients(4)
            .with_locality(0.5)
            .with_prob_write(0.3)
            .with_horizon(SimDuration::from_secs(2), SimDuration::from_secs(15))
    };
    let plain = ccdb_core::run_simulation(cfg());
    let traced = run_simulation_traced(cfg(), Trace::enabled(100_000));
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain.commits, traced.commits);
    assert_eq!(plain.resp_time_mean, traced.resp_time_mean);
}
