//! Client-level protocol tests: the real client runtime runs against a
//! *scripted* server process, pinning client behaviour (check-on-access,
//! callback answers, stale-page invalidation) independent of the real
//! server.

use std::cell::RefCell;
use std::rc::Rc;

use ccdb_core::client::{run_client, Client};
use ccdb_core::msg::{OpId, ReplyKind, C2S, S2C};
use ccdb_core::{Algorithm, MetricsHub, SimConfig, Trace, WaitBook};
use ccdb_des::{Pcg32, Sim, SimDuration, SimTime, WaitClass};
use ccdb_lock::ClientId;
use ccdb_model::{TxnParams, Workload};
use ccdb_net::{Network, NetworkNode};

/// Observed client->server traffic.
#[derive(Default)]
struct Seen {
    lock_fetches: u32,
    checks: u32,
    fetches: u32,
    commits: u32,
    callback_releases: u32,
    callback_defers: u32,
}

/// Spawn the real client against a trivially-granting scripted server.
/// Returns the traffic log after running for `secs` simulated seconds.
fn run_against_script(algorithm: Algorithm, loc: f64, pw: f64, secs: u64) -> Seen {
    let mut cfg = SimConfig::table5(algorithm)
        .with_clients(1)
        .with_locality(loc)
        .with_prob_write(pw);
    cfg.sys.net_delay = SimDuration::ZERO;
    cfg.sys.msg_cost = 0;
    let cfg = Rc::new(cfg);
    let sim = Sim::new();
    let env = sim.env();
    let net = Network::new(&env, &cfg.sys, Pcg32::new(1, 1));
    let client_node: NetworkNode<S2C> =
        NetworkNode::new(&env, "client", 1, 1.0, WaitClass::ClientCpu);
    let server_node: NetworkNode<(ClientId, C2S)> =
        NetworkNode::new(&env, "server", 1, 2.0, WaitClass::Cpu);
    let workload = Workload::new(
        cfg.db.clone(),
        TxnParams {
            prob_write: pw,
            inter_xact_loc: loc,
            ..TxnParams::short_batch()
        },
        Pcg32::new(2, 2),
    );
    let hub = MetricsHub::new(SimTime::ZERO);
    let client = Client::new(
        &env,
        ClientId(0),
        Rc::clone(&cfg),
        client_node.clone(),
        server_node.clone(),
        net.clone(),
        workload,
        Pcg32::new(3, 3),
        hub,
        WaitBook::new(),
        Trace::disabled(),
    );
    env.spawn(run_client(client));

    let seen = Rc::new(RefCell::new(Seen::default()));
    {
        // Scripted server: grant everything, versions always current.
        let seen = Rc::clone(&seen);
        let net = net.clone();
        let server_node2 = server_node.clone();
        let client_node2 = client_node.clone();
        env.spawn(async move {
            let mut version: u64 = 0;
            loop {
                let (_, msg) = server_node2.inbox.recv().await;
                let reply: Option<(OpId, ReplyKind)> = match msg {
                    C2S::LockFetch {
                        cached_version, op, ..
                    } => {
                        seen.borrow_mut().lock_fetches += 1;
                        match cached_version {
                            Some(v) if v == version => Some((op, ReplyKind::Valid)),
                            _ => Some((op, ReplyKind::PageData { version })),
                        }
                    }
                    C2S::CheckVersion { op, .. } => {
                        seen.borrow_mut().checks += 1;
                        Some((op, ReplyKind::Valid))
                    }
                    C2S::Fetch { op, .. } => {
                        seen.borrow_mut().fetches += 1;
                        Some((op, ReplyKind::PageData { version }))
                    }
                    C2S::Commit { op, dirty, .. } => {
                        seen.borrow_mut().commits += 1;
                        if !dirty.is_empty() {
                            version += 1;
                        }
                        Some((
                            op,
                            ReplyKind::Committed {
                                new_version: version,
                            },
                        ))
                    }
                    C2S::CallbackReply { released, .. } => {
                        if released {
                            seen.borrow_mut().callback_releases += 1;
                        } else {
                            seen.borrow_mut().callback_defers += 1;
                        }
                        None
                    }
                    C2S::ReleaseRetained { .. } => None,
                };
                if let Some((op, kind)) = reply {
                    net.send(&server_node2, &client_node2, S2C::Reply { op, kind }, 0);
                }
            }
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
    // The scripted server process still holds a clone; take the contents.
    let taken = std::mem::take(&mut *seen.borrow_mut());
    taken
}

#[test]
fn two_phase_client_locks_every_access_and_commits() {
    let seen = run_against_script(Algorithm::TwoPhase { inter: true }, 0.0, 0.0, 60);
    assert!(seen.commits > 10, "commits {}", seen.commits);
    // Mean 8 reads per txn, every one needs a lock request at loc 0.
    let per_commit = seen.lock_fetches as f64 / seen.commits as f64;
    assert!(
        (6.0..10.0).contains(&per_commit),
        "lock fetches per commit {per_commit}"
    );
    assert_eq!(seen.checks, 0);
    assert_eq!(seen.fetches, 0);
}

#[test]
fn certification_client_checks_cached_pages() {
    let seen = run_against_script(Algorithm::Certification { inter: true }, 0.8, 0.0, 60);
    assert!(seen.commits > 10);
    // High locality: most touches are cached and produce CheckVersion,
    // not Fetch.
    assert!(
        seen.checks > seen.fetches,
        "checks {} vs fetches {}",
        seen.checks,
        seen.fetches
    );
    assert_eq!(seen.lock_fetches, 0, "certification never locks");
}

#[test]
fn callback_client_skips_server_on_retained_pages() {
    let seen = run_against_script(Algorithm::Callback, 0.9, 0.0, 60);
    assert!(seen.commits < seen.lock_fetches.max(1) * 10, "sanity");
    // Read-only, very high locality: after warm-up most transactions touch
    // only retained pages, so lock traffic per commit collapses well below
    // the ~8 a 2PL client would send. (Local commits send nothing at all,
    // so `commits` here counts only the remote ones.)
    let remote_commits = seen.commits.max(1);
    let per_commit = seen.lock_fetches as f64 / remote_commits as f64;
    assert!(
        per_commit < 6.0,
        "retained locks should cut lock traffic: {per_commit}"
    );
}

#[test]
fn client_answers_callbacks_during_think_time() {
    // Drive a bare client and poke a Callback at it while it idles
    // between transactions; it must answer with released=true.
    let seen = {
        let mut cfg = SimConfig::table5(Algorithm::Callback).with_clients(1);
        cfg.sys.net_delay = SimDuration::ZERO;
        cfg.sys.msg_cost = 0;
        let cfg = Rc::new(cfg);
        let sim = Sim::new();
        let env = sim.env();
        let net = Network::new(&env, &cfg.sys, Pcg32::new(1, 1));
        let client_node: NetworkNode<S2C> =
            NetworkNode::new(&env, "client", 1, 1.0, WaitClass::ClientCpu);
        let server_node: NetworkNode<(ClientId, C2S)> =
            NetworkNode::new(&env, "server", 1, 2.0, WaitClass::Cpu);
        let workload = Workload::new(
            cfg.db.clone(),
            TxnParams {
                // Enormous external delay: the client is essentially
                // always idle after its first transaction.
                external_delay: SimDuration::from_secs(1_000),
                ..TxnParams::short_batch()
            },
            Pcg32::new(2, 2),
        );
        let hub = MetricsHub::new(SimTime::ZERO);
        let client = Client::new(
            &env,
            ClientId(0),
            Rc::clone(&cfg),
            client_node.clone(),
            server_node.clone(),
            net.clone(),
            workload,
            Pcg32::new(3, 3),
            hub,
            WaitBook::new(),
            Trace::disabled(),
        );
        env.spawn(run_client(client));
        let answers = Rc::new(RefCell::new(Vec::new()));
        {
            // Collect callback answers; nothing else should arrive (the
            // client sits in its enormous first think time).
            let answers = Rc::clone(&answers);
            let server_node2 = server_node.clone();
            env.spawn(async move {
                loop {
                    let (_, msg) = server_node2.inbox.recv().await;
                    if let C2S::CallbackReply { released, .. } = msg {
                        answers.borrow_mut().push(released);
                    }
                }
            });
        }
        {
            // Poke a callback at the idle client after 5 s.
            let net = net.clone();
            let sn = server_node.clone();
            let cn = client_node.clone();
            let env2 = env.clone();
            env.spawn(async move {
                env2.hold(SimDuration::from_secs(5)).await;
                net.send(
                    &sn,
                    &cn,
                    S2C::Callback {
                        page: ccdb_model::PageId {
                            class: ccdb_model::ClassId(0),
                            atom: 3,
                        },
                    },
                    0,
                );
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        let got = answers.borrow().clone();
        got
    };
    assert_eq!(
        seen,
        vec![true],
        "an idle client must release a called-back lock immediately"
    );
}
