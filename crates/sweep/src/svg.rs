//! Self-contained SVG rendering of a sweep's merged time series.
//!
//! [`dynamics_svg`] draws the same data as [`crate::figures::dynamics_csv`]
//! — every sampled cell's cross-replication metric trajectories — as one
//! SVG document with a panel per metric and a polyline per cell, colored
//! by algorithm. No external plotting stack: the output is plain SVG 1.1
//! text, deterministic byte-for-byte for a given sweep result, so
//! `ccdb figures --svg` artifacts diff cleanly across runs.

use std::fmt::Write as _;

use crate::run::{CellReport, SweepResult};

/// Panel geometry: fixed so the output is a pure function of the data.
const WIDTH: f64 = 800.0;
const PANEL_H: f64 = 150.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const PANEL_GAP: f64 = 40.0;
const TOP: f64 = 40.0;

/// A colorblind-friendly cycling palette (Okabe–Ito), one color per
/// algorithm in spec order.
const PALETTE: [&str; 8] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
];

/// Two-decimal SVG coordinate: enough for sub-pixel placement, short
/// enough to keep files small, and — unlike shortest-round-trip floats —
/// visually uniform in the markup.
fn coord(v: f64) -> String {
    format!("{v:.2}")
}

/// Axis label: shortest-round-trip rendering of the data value itself.
fn axis(v: f64) -> String {
    let mut s = format!("{v:.4}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    s
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;")
}

/// Render every sampled cell's merged metric trajectories as one SVG:
/// a panel per metric (in registry order), a polyline per cell (colored
/// by algorithm, in spec cell order), shared time axis, a legend of the
/// algorithms on top. `None` when the sweep ran without series sampling.
pub fn dynamics_svg(result: &SweepResult) -> Option<String> {
    let names: Vec<String> = result
        .cells
        .iter()
        .find_map(|c| c.series.as_ref())?
        .entries
        .iter()
        .map(|(name, _)| name.clone())
        .collect();
    let sampled: Vec<&CellReport> = result.cells.iter().filter(|c| c.series.is_some()).collect();
    if sampled.is_empty() || names.is_empty() {
        return None;
    }

    let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for cell in &sampled {
        let series = cell.series.as_ref().expect("filtered to sampled cells");
        for &t in &series.times {
            t_min = t_min.min(t);
            t_max = t_max.max(t);
        }
    }
    if !t_min.is_finite() || t_max <= t_min {
        return None;
    }

    let color_of = |cell: &CellReport| {
        let ix = result
            .spec
            .algorithms
            .iter()
            .position(|a| *a == cell.cell.algorithm)
            .unwrap_or(0);
        PALETTE[ix % PALETTE.len()]
    };

    let height = TOP + names.len() as f64 * (PANEL_H + PANEL_GAP);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">",
        w = coord(WIDTH),
        h = coord(height),
    );
    let _ = writeln!(
        svg,
        "<rect width=\"{}\" height=\"{}\" fill=\"white\"/>",
        coord(WIDTH),
        coord(height)
    );
    let _ = writeln!(
        svg,
        "<text x=\"{}\" y=\"16\" font-size=\"13\">dynamics: {} family, {} sampled cell(s)</text>",
        coord(MARGIN_L),
        esc(result.spec.family.label()),
        sampled.len(),
    );
    // Legend: one swatch per algorithm.
    let mut lx = MARGIN_L;
    for (ix, alg) in result.spec.algorithms.iter().enumerate() {
        let color = PALETTE[ix % PALETTE.len()];
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"22\" width=\"12\" height=\"4\" fill=\"{color}\"/>\
             <text x=\"{}\" y=\"29\">{}</text>",
            coord(lx),
            coord(lx + 16.0),
            esc(alg.label()),
        );
        lx += 16.0 + 9.0 * alg.label().len() as f64 + 14.0;
    }

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    for (panel, name) in names.iter().enumerate() {
        let y0 = TOP + panel as f64 * (PANEL_H + PANEL_GAP);
        let mut v_max = 0.0f64;
        for cell in &sampled {
            let series = cell.series.as_ref().expect("filtered to sampled cells");
            if let Some(col) = series.col(name) {
                for &v in &col.mean {
                    if v.is_finite() {
                        v_max = v_max.max(v);
                    }
                }
            }
        }
        if v_max <= 0.0 {
            v_max = 1.0;
        }
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\">{}</text>",
            coord(MARGIN_L),
            coord(y0 - 6.0),
            esc(name),
        );
        let _ = writeln!(
            svg,
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"none\" stroke=\"#999\"/>",
            coord(MARGIN_L),
            coord(y0),
            coord(plot_w),
            coord(PANEL_H),
        );
        // Axis extremes: value range on the left, time range underneath.
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}</text>",
            coord(MARGIN_L - 6.0),
            coord(y0 + 10.0),
            axis(v_max),
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">0</text>",
            coord(MARGIN_L - 6.0),
            coord(y0 + PANEL_H),
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\">{}s</text>",
            coord(MARGIN_L),
            coord(y0 + PANEL_H + 14.0),
            axis(t_min),
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"end\">{}s</text>",
            coord(MARGIN_L + plot_w),
            coord(y0 + PANEL_H + 14.0),
            axis(t_max),
        );
        for cell in &sampled {
            let series = cell.series.as_ref().expect("filtered to sampled cells");
            let Some(col) = series.col(name) else {
                continue;
            };
            let mut points = String::new();
            for (i, &t) in series.times.iter().enumerate() {
                let v = col.mean[i];
                if !v.is_finite() {
                    continue;
                }
                let x = MARGIN_L + (t - t_min) / (t_max - t_min) * plot_w;
                let y = y0 + PANEL_H - (v / v_max).clamp(0.0, 1.0) * PANEL_H;
                if !points.is_empty() {
                    points.push(' ');
                }
                let _ = write!(points, "{},{}", coord(x), coord(y));
            }
            let _ = writeln!(
                svg,
                "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.2\" \
                 points=\"{points}\"><title>{} clients={} loc={} pw={}</title></polyline>",
                color_of(cell),
                esc(cell.cell.algorithm.label()),
                cell.cell.clients,
                cell.cell.locality,
                cell.cell.prob_write,
            );
        }
    }
    svg.push_str("</svg>\n");
    Some(svg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_sweep;
    use crate::spec::{Family, Replication, SeriesSampling, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    fn sampled_spec() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::Callback, Algorithm::TwoPhase { inter: true }],
            clients: vec![2, 4],
            localities: vec![0.5],
            write_probs: vec![0.2],
            seed: 11,
            warmup: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(6),
            replication: Replication::Fixed(1),
            series: Some(SeriesSampling {
                interval: SimDuration::from_secs(1),
                capacity: 16,
            }),
            ..SweepSpec::new(Family::Short)
        }
    }

    #[test]
    fn series_free_sweep_has_no_svg() {
        let spec = SweepSpec {
            series: None,
            ..sampled_spec()
        };
        let result = run_sweep(&spec, 1, |_| {});
        assert!(dynamics_svg(&result).is_none());
    }

    #[test]
    fn svg_is_wellformed_and_deterministic() {
        let result = run_sweep(&sampled_spec(), 2, |_| {});
        let svg = dynamics_svg(&result).expect("sampled sweep renders");
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.ends_with("</svg>\n"));
        // One polyline per (cell, metric): 4 cells x metric count.
        let metrics = result.cells[0].series.as_ref().unwrap().entries.len();
        let polylines = svg.matches("<polyline").count();
        assert_eq!(polylines, 4 * metrics);
        // Legend names both algorithms, panels name the metrics.
        assert!(svg.contains(">CB</text>"));
        assert!(svg.contains(">C2PL</text>"));
        assert!(svg.contains(">txn.commits</text>"));
        // Byte-identical on re-render and across worker counts.
        assert_eq!(dynamics_svg(&result).unwrap(), svg);
        let serial = run_sweep(&sampled_spec(), 1, |_| {});
        assert_eq!(dynamics_svg(&serial).unwrap(), svg);
    }
}
