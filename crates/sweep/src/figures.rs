//! Regenerating the paper's figure series from sweep output alone.
//!
//! Each [`FigureDef`] names one panel of Wang & Rowe's Figures 5–22 (plus
//! the Table 4 ACL curve): a metric at one (locality, write-probability)
//! point, plotted against the client axis with one column per algorithm.
//! [`figures_from_sweep`] is a pure function of a [`SweepResult`] — no
//! re-simulation — so `ccdb figures` can emit every CSV from a single
//! sweep document's worth of runs.

use crate::run::SweepResult;
use crate::spec::Family;

/// Which aggregate a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FigureMetric {
    /// Cross-replication mean response time (seconds).
    Response,
    /// Cross-replication mean throughput (committed txns per second).
    Throughput,
}

/// One figure panel: metric + the (locality, write prob) cell slice.
/// `None` axes match any value (used by the ACL family, whose workload
/// point is fixed by Table 4).
#[derive(Clone, Copy, Debug)]
pub struct FigureDef {
    /// Output file name (without extension).
    pub slug: &'static str,
    /// Human title, paper numbering.
    pub title: &'static str,
    /// What the y axis is.
    pub metric: FigureMetric,
    /// Locality slice (`None` = any).
    pub locality: Option<f64>,
    /// Write-probability slice (`None` = any).
    pub prob_write: Option<f64>,
}

const fn resp(slug: &'static str, title: &'static str, loc: f64, pw: f64) -> FigureDef {
    FigureDef {
        slug,
        title,
        metric: FigureMetric::Response,
        locality: Some(loc),
        prob_write: Some(pw),
    }
}

const fn tput(slug: &'static str, title: &'static str, loc: f64, pw: f64) -> FigureDef {
    FigureDef {
        slug,
        title,
        metric: FigureMetric::Throughput,
        locality: Some(loc),
        prob_write: Some(pw),
    }
}

/// The paper figures each family's default sweep grid can regenerate.
pub fn figures_for(family: Family) -> Vec<FigureDef> {
    match family {
        Family::Acl => vec![FigureDef {
            slug: "table4_throughput",
            title: "Table 4: ACL throughput vs MPL",
            metric: FigureMetric::Throughput,
            locality: None,
            prob_write: None,
        }],
        Family::Caching => vec![
            resp(
                "figure_5a_response_loc_0_05_w_0_2",
                "Figure 5(a): response time, Loc=0.05, W=0.2",
                0.05,
                0.2,
            ),
            resp(
                "figure_5b_response_loc_0_05_w_0_5",
                "Figure 5(b): response time, Loc=0.05, W=0.5",
                0.05,
                0.5,
            ),
            resp(
                "figure_6a_response_loc_0_50_w_0_0",
                "Figure 6(a): response time, Loc=0.50, W=0.0",
                0.50,
                0.0,
            ),
            resp(
                "figure_6b_response_loc_0_50_w_0_5",
                "Figure 6(b): response time, Loc=0.50, W=0.5",
                0.50,
                0.5,
            ),
            tput(
                "figure_7a_throughput_loc_0_50_w_0_0",
                "Figure 7(a): throughput, Loc=0.50, W=0.0",
                0.50,
                0.0,
            ),
            tput(
                "figure_7b_throughput_loc_0_50_w_0_5",
                "Figure 7(b): throughput, Loc=0.50, W=0.5",
                0.50,
                0.5,
            ),
        ],
        Family::Short => vec![
            resp(
                "figure_8a_response_loc_0_05_w_0_0",
                "Figure 8(a): response time, Loc=0.05, W=0.0",
                0.05,
                0.0,
            ),
            resp(
                "figure_8b_response_loc_0_05_w_0_2",
                "Figure 8(b): response time, Loc=0.05, W=0.2",
                0.05,
                0.2,
            ),
            resp(
                "figure_8c_response_loc_0_05_w_0_5",
                "Figure 8(c): response time, Loc=0.05, W=0.5",
                0.05,
                0.5,
            ),
            resp(
                "figure_9a_response_loc_0_25_w_0_0",
                "Figure 9(a): response time, Loc=0.25, W=0.0",
                0.25,
                0.0,
            ),
            resp(
                "figure_9b_response_loc_0_25_w_0_2",
                "Figure 9(b): response time, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            resp(
                "figure_9c_response_loc_0_25_w_0_5",
                "Figure 9(c): response time, Loc=0.25, W=0.5",
                0.25,
                0.5,
            ),
            resp(
                "figure_10a_response_loc_0_50_w_0_0",
                "Figure 10(a): response time, Loc=0.50, W=0.0",
                0.50,
                0.0,
            ),
            resp(
                "figure_10b_response_loc_0_50_w_0_2",
                "Figure 10(b): response time, Loc=0.50, W=0.2",
                0.50,
                0.2,
            ),
            resp(
                "figure_10c_response_loc_0_50_w_0_5",
                "Figure 10(c): response time, Loc=0.50, W=0.5",
                0.50,
                0.5,
            ),
            resp(
                "figure_11a_response_loc_0_75_w_0_0",
                "Figure 11(a): response time, Loc=0.75, W=0.0",
                0.75,
                0.0,
            ),
            resp(
                "figure_11b_response_loc_0_75_w_0_2",
                "Figure 11(b): response time, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
            resp(
                "figure_11c_response_loc_0_75_w_0_5",
                "Figure 11(c): response time, Loc=0.75, W=0.5",
                0.75,
                0.5,
            ),
            tput(
                "figure_12a_throughput_loc_0_25_w_0_2",
                "Figure 12(a): throughput, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            tput(
                "figure_12b_throughput_loc_0_75_w_0_2",
                "Figure 12(b): throughput, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
        ],
        Family::Large => vec![
            resp(
                "figure_14a_response_loc_0_25_w_0_2",
                "Figure 14(a): response time, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            resp(
                "figure_14b_response_loc_0_25_w_0_5",
                "Figure 14(b): response time, Loc=0.25, W=0.5",
                0.25,
                0.5,
            ),
            resp(
                "figure_15a_response_loc_0_75_w_0_2",
                "Figure 15(a): response time, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
            resp(
                "figure_15b_response_loc_0_75_w_0_5",
                "Figure 15(b): response time, Loc=0.75, W=0.5",
                0.75,
                0.5,
            ),
        ],
        Family::FastServer => vec![
            resp(
                "figure_16a_response_loc_0_25_w_0_2",
                "Figure 16(a): response time, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            resp(
                "figure_16b_response_loc_0_25_w_0_5",
                "Figure 16(b): response time, Loc=0.25, W=0.5",
                0.25,
                0.5,
            ),
            resp(
                "figure_17a_response_loc_0_75_w_0_2",
                "Figure 17(a): response time, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
            resp(
                "figure_17b_response_loc_0_75_w_0_5",
                "Figure 17(b): response time, Loc=0.75, W=0.5",
                0.75,
                0.5,
            ),
        ],
        Family::FastNet => vec![
            resp(
                "figure_18a_response_loc_0_25_w_0_2",
                "Figure 18(a): response time, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            resp(
                "figure_18b_response_loc_0_25_w_0_5",
                "Figure 18(b): response time, Loc=0.25, W=0.5",
                0.25,
                0.5,
            ),
            resp(
                "figure_19a_response_loc_0_75_w_0_2",
                "Figure 19(a): response time, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
            resp(
                "figure_19b_response_loc_0_75_w_0_5",
                "Figure 19(b): response time, Loc=0.75, W=0.5",
                0.75,
                0.5,
            ),
            tput(
                "figure_20_throughput_loc_0_25_w_0_2",
                "Figure 20: throughput, Loc=0.25, W=0.2",
                0.25,
                0.2,
            ),
            tput(
                "figure_21_throughput_loc_0_75_w_0_2",
                "Figure 21: throughput, Loc=0.75, W=0.2",
                0.75,
                0.2,
            ),
        ],
        Family::Interactive => vec![
            resp(
                "figure_22a_response_loc_0_25_w_0_0",
                "Figure 22(a): response time, Loc=0.25, W=0.0",
                0.25,
                0.0,
            ),
            resp(
                "figure_22b_response_loc_0_25_w_0_5",
                "Figure 22(b): response time, Loc=0.25, W=0.5",
                0.25,
                0.5,
            ),
        ],
    }
}

fn axis_matches(wanted: Option<f64>, actual: f64) -> bool {
    wanted.is_none_or(|w| (w - actual).abs() < 1e-9)
}

/// Render one figure as CSV from the sweep's cell aggregates: header
/// `clients,<alg>,...` (or `mpl,...` for the ACL family), one row per
/// client count, algorithm columns in spec order. `None` when the sweep
/// grid does not cover the figure's cell slice.
pub fn figure_csv(result: &SweepResult, def: &FigureDef) -> Option<String> {
    let spec = &result.spec;
    let slice: Vec<_> = result
        .cells
        .iter()
        .filter(|c| {
            axis_matches(def.locality, c.cell.locality)
                && axis_matches(def.prob_write, c.cell.prob_write)
        })
        .collect();
    if slice.is_empty() {
        return None;
    }
    let x_label = if spec.family == Family::Acl {
        "mpl"
    } else {
        "clients"
    };
    let mut csv = String::new();
    csv.push_str(x_label);
    for alg in &spec.algorithms {
        csv.push(',');
        csv.push_str(alg.label());
    }
    csv.push('\n');
    for &clients in &spec.clients {
        csv.push_str(&clients.to_string());
        for &alg in &spec.algorithms {
            csv.push(',');
            if let Some(cell) = slice
                .iter()
                .find(|c| c.cell.clients == clients && c.cell.algorithm == alg)
            {
                let value = match def.metric {
                    FigureMetric::Response => cell.aggregate.resp_time_mean,
                    FigureMetric::Throughput => cell.aggregate.throughput_mean,
                };
                csv.push_str(&value.to_string());
            }
        }
        csv.push('\n');
    }
    Some(csv)
}

/// Render every cell's merged time series as one long-format CSV:
/// `algorithm,clients,locality,write_prob,time_s,count,<metrics>`, one
/// row per grid point per cell, metric columns carrying the
/// cross-replication mean. `None` when the sweep ran without series
/// sampling (v1-shaped sweeps have no dynamics to plot).
pub fn dynamics_csv(result: &SweepResult) -> Option<String> {
    let names: Vec<&str> = result
        .cells
        .iter()
        .find_map(|c| c.series.as_ref())?
        .entries
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    let mut csv = String::from("algorithm,clients,locality,write_prob,time_s,count");
    for name in &names {
        csv.push(',');
        csv.push_str(name);
    }
    csv.push('\n');
    for cell in &result.cells {
        let Some(series) = &cell.series else { continue };
        let cols: Vec<_> = names
            .iter()
            .map(|n| {
                series
                    .col(n)
                    .expect("sweep cells sample the same metric registry")
            })
            .collect();
        for i in 0..series.len() {
            csv.push_str(&format!(
                "{},{},{},{},{},{}",
                cell.cell.algorithm.label(),
                cell.cell.clients,
                cell.cell.locality,
                cell.cell.prob_write,
                series.times[i],
                series.counts[i],
            ));
            for col in &cols {
                csv.push(',');
                csv.push_str(&col.mean[i].to_string());
            }
            csv.push('\n');
        }
    }
    Some(csv)
}

/// Every figure of the sweep's family that its grid covers, as
/// `(file name, CSV contents)` pairs in paper order; when the sweep
/// sampled time series, a trailing `dynamics_<family>.csv` carries the
/// merged per-cell dynamics.
pub fn figures_from_sweep(result: &SweepResult) -> Vec<(String, String)> {
    let mut figs: Vec<(String, String)> = figures_for(result.spec.family)
        .iter()
        .filter_map(|def| figure_csv(result, def).map(|csv| (format!("{}.csv", def.slug), csv)))
        .collect();
    if let Some(csv) = dynamics_csv(result) {
        figs.push((format!("dynamics_{}.csv", result.spec.family.label()), csv));
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_sweep;
    use crate::spec::{Replication, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    #[test]
    fn every_family_declares_figures() {
        for family in Family::ALL {
            assert!(!figures_for(family).is_empty(), "{family:?}");
        }
        // Default grids cover every declared figure slice.
        for family in Family::ALL {
            let spec = SweepSpec::new(family);
            let cells = spec.cells();
            for def in figures_for(family) {
                assert!(
                    cells.iter().any(|c| axis_matches(def.locality, c.locality)
                        && axis_matches(def.prob_write, c.prob_write)),
                    "{family:?}: {} not covered by default grid",
                    def.slug
                );
            }
        }
    }

    #[test]
    fn figure_csv_matches_cell_aggregates() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::TwoPhase { inter: true }, Algorithm::Callback],
            clients: vec![2, 5],
            localities: vec![0.25],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(1),
            ..SweepSpec::new(Family::Short)
        };
        let result = run_sweep(&spec, 1, |_| {});
        let figs = figures_from_sweep(&result);
        // Only the Loc=0.25, W=0.2 panels are covered by this tiny grid.
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].0, "figure_9b_response_loc_0_25_w_0_2.csv");
        assert_eq!(figs[1].0, "figure_12a_throughput_loc_0_25_w_0_2.csv");
        let lines: Vec<&str> = figs[0].1.lines().collect();
        assert_eq!(lines[0], "clients,C2PL,CB");
        assert_eq!(lines.len(), 3);
        let first_cell = &result.cells[0];
        assert!(lines[1].starts_with("2,"));
        assert!(lines[1].contains(&first_cell.aggregate.resp_time_mean.to_string()));
    }

    #[test]
    fn dynamics_csv_covers_each_sampled_cell() {
        let base = SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![2, 5],
            localities: vec![0.25],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        };
        // Without sampling the sweep has no dynamics and no extra figure.
        let plain = run_sweep(&base, 1, |_| {});
        assert!(dynamics_csv(&plain).is_none());
        let n_static = figures_from_sweep(&plain).len();

        let spec = SweepSpec {
            series: Some(crate::spec::SeriesSampling {
                interval: SimDuration::from_secs(1),
                capacity: 16,
            }),
            ..base
        };
        let result = run_sweep(&spec, 1, |_| {});
        let csv = dynamics_csv(&result).expect("sampled sweep has dynamics");
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("algorithm,clients,locality,write_prob,time_s,count,"));
        assert!(lines[0].contains("server.cpu.util"));
        // Every sampled cell contributes rows, ending at the horizon.
        for cell in &result.cells {
            let series = cell.series.as_ref().expect("every cell sampled");
            let prefix = format!("CB,{},0.25,0.2,", cell.cell.clients);
            let rows = lines.iter().filter(|l| l.starts_with(&prefix)).count();
            assert_eq!(rows, series.len());
            assert_eq!(series.times.last(), Some(&10.0));
        }
        let figs = figures_from_sweep(&result);
        assert_eq!(figs.len(), n_static + 1);
        assert_eq!(figs.last().unwrap().0, "dynamics_short.csv");
        assert_eq!(figs.last().unwrap().1, csv);
    }

    #[test]
    fn uncovered_slice_yields_none() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![2],
            localities: vec![0.25],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(1),
            ..SweepSpec::new(Family::Short)
        };
        let result = run_sweep(&spec, 1, |_| {});
        let miss = resp("x", "x", 0.75, 0.5);
        assert!(figure_csv(&result, &miss).is_none());
    }
}
