//! Executing a [`SweepSpec`]: wave-based scheduling, streaming per-job
//! records, and per-cell cross-replication merging.
//!
//! A sweep runs in **waves**. The first wave holds
//! [`Replication::initial`] jobs per cell; after each wave every cell's
//! aggregate is consulted and cells still failing the stopping rule
//! contribute one more job to the next wave. Because each run is a pure
//! function of its configuration, the set of follow-up jobs — and the
//! final output — is identical for every worker count; only wall-clock
//! time and the completion order of the streaming callback vary.

use std::collections::BTreeMap;

use ccdb_core::runner::{run_simulation_observed, ObsOptions};
use ccdb_core::trace::Trace;
use ccdb_core::{replication_seed, ReplicationAccumulator, ReplicationAggregate, RunReport};
use ccdb_obs::{
    LatencyHistogram, MergedSeries, MergedSnapshot, SeriesMerger, SeriesSet, Snapshot,
    SnapshotMerger,
};

use crate::scheduler::run_indexed_catching;
use crate::spec::{Cell, SweepSpec};

/// Per-replication summary kept in the per-cell record (the full
/// [`RunReport`] is folded and dropped, not buffered).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunSummary {
    /// The seed this replication ran with.
    pub seed: u64,
    /// Mean response time (s).
    pub resp_time_mean: f64,
    /// Throughput (committed txns per second).
    pub throughput: f64,
    /// Commits in the measurement window.
    pub commits: u64,
    /// Aborts in the measurement window.
    pub aborts: u64,
}

impl RunSummary {
    fn from_report(r: &RunReport) -> RunSummary {
        RunSummary {
            seed: r.seed,
            resp_time_mean: r.resp_time_mean,
            throughput: r.throughput,
            commits: r.commits,
            aborts: r.aborts,
        }
    }
}

/// One completed cell: its axes, the cross-replication aggregate, the
/// per-replication summaries (seed order), and the merged metrics
/// snapshot.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The cell's grid coordinates.
    pub cell: Cell,
    /// Cross-replication aggregate (means, 95% CIs, totals).
    pub aggregate: ReplicationAggregate,
    /// Per-replication summaries, in seed order.
    pub runs: Vec<RunSummary>,
    /// Every registry metric merged across the cell's replications
    /// (counters summed, gauges averaged).
    pub metrics: MergedSnapshot,
    /// Metric trajectories merged across the cell's replications onto a
    /// common grid; `None` unless the spec enabled series sampling.
    pub series: Option<MergedSeries>,
    /// Labelled latency histograms merged (bucket-wise) across the
    /// cell's replications, in first-seen label order.
    pub hists: Vec<(String, LatencyHistogram)>,
}

/// One finished job, handed to the streaming callback as it completes.
///
/// Carries everything needed to *replay* the job into the per-cell
/// accumulators without re-running it — which is what makes the JSONL
/// stream of these records a write-ahead log (`crate::checkpoint`) and
/// shard streams mergeable (`crate::merge`).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Global job index: deterministic (assigned at wave construction),
    /// even though completion order is not.
    pub job: usize,
    /// Index of the cell in [`SweepSpec::cells`] order.
    pub cell_index: usize,
    /// Replication number within the cell (0-based).
    pub replication: u32,
    /// The cell's grid coordinates.
    pub cell: Cell,
    /// This replication's results.
    pub summary: RunSummary,
    /// The run's end-of-run metrics snapshot (feeds the cell's
    /// `SnapshotMerger` on replay).
    pub snapshot: Snapshot,
    /// The run's sampled series (feeds the cell's `SeriesMerger` on
    /// replay); present exactly when the spec enables series sampling.
    pub series: Option<SeriesSet>,
    /// The run's labelled latency histograms (feed the cell's histogram
    /// fold on replay). Always present for freshly executed jobs; `None`
    /// only when parsed from a stream written before histograms existed
    /// — such a record cannot resume a current sweep.
    pub hists: Option<Vec<(String, LatencyHistogram)>>,
}

/// Checkpointed job records keyed by global job index — the replay input
/// of [`run_sweep_resumed`] (parsed from a stream by
/// `crate::checkpoint::parse_log`).
pub type JobCache = BTreeMap<usize, JobRecord>;

/// Everything a finished sweep produced.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The spec that ran.
    pub spec: SweepSpec,
    /// One report per cell, in [`SweepSpec::cells`] order.
    pub cells: Vec<CellReport>,
    /// Total number of jobs (simulation runs) executed.
    pub jobs: usize,
}

struct CellState {
    acc: ReplicationAccumulator,
    merger: SnapshotMerger,
    series: SeriesMerger,
    hists: Vec<(String, LatencyHistogram)>,
    runs: Vec<RunSummary>,
}

/// Merge labelled histograms into a cell's accumulator, unioning labels
/// in first-seen order. Deterministic because the fold walks jobs in
/// job-index order, and bit-exact for any fold split because histogram
/// merging is associative (integer bucket counts, max of maxima).
fn fold_hists(into: &mut Vec<(String, LatencyHistogram)>, hists: &[(String, LatencyHistogram)]) {
    for (label, h) in hists {
        match into.iter_mut().find(|(l, _)| l == label) {
            Some((_, acc)) => acc.merge(h),
            None => into.push((label.clone(), h.clone())),
        }
    }
}

/// Run every job of `spec` on `workers` threads; `on_job` observes each
/// job as it completes (streaming, completion order). The returned
/// result is byte-identical for any `workers` value.
pub fn run_sweep(spec: &SweepSpec, workers: usize, on_job: impl FnMut(&JobRecord)) -> SweepResult {
    run_sweep_sharded(spec, workers, None, on_job).expect("an unsharded sweep cannot fail")
}

/// [`run_sweep`] restricted to a slice of the job grid: with
/// `shard = Some((i, n))` (1-based `i`), only jobs whose global index
/// satisfies `job % n == i - 1` run on this invocation. Job indices,
/// replication numbers, and per-run seeds are identical to the unsharded
/// sweep, so the streamed [`JobRecord`]s from all `n` shards are disjoint
/// and their union is exactly the unsharded job set — separate machines
/// can each take a shard and the merged JSONL is the same corpus.
///
/// Sharding requires [`Replication::Fixed`](crate::Replication::Fixed):
/// the adaptive stopping rule
/// inspects every replication of a cell, which a single shard does not
/// hold. Cells that end up with zero jobs on this shard are omitted from
/// [`SweepResult::cells`]; [`SweepResult::jobs`] counts only the jobs
/// this shard ran.
pub fn run_sweep_sharded(
    spec: &SweepSpec,
    workers: usize,
    shard: Option<(u32, u32)>,
    on_job: impl FnMut(&JobRecord),
) -> Result<SweepResult, String> {
    run_sweep_resumed(spec, workers, shard, &JobCache::new(), on_job)
}

/// [`run_sweep_sharded`] resuming from a checkpoint: jobs present in
/// `cache` are not re-run — their records are replayed into the per-cell
/// accumulators at exactly the point of the fold where the live run
/// would have put them, so the result (and the rendered document) is
/// **byte-identical to an uninterrupted run**. `on_job` fires only for
/// freshly executed jobs; replayed ones are already in the log the cache
/// came from.
///
/// Fails if a cached record contradicts the spec's grid (wrong cell
/// axes, replication number, or seed for its job index) — the cache was
/// written by a different sweep and must not be stitched into this one.
///
/// A panicking simulation job aborts the sweep, but only after every
/// other job of its wave has finished and streamed through `on_job` (so
/// a checkpoint retains them); the re-raised panic names the job index
/// and its cell axes.
pub fn run_sweep_resumed(
    spec: &SweepSpec,
    workers: usize,
    shard: Option<(u32, u32)>,
    cache: &JobCache,
    mut on_job: impl FnMut(&JobRecord),
) -> Result<SweepResult, String> {
    if let Some((i, n)) = shard {
        if n == 0 || i == 0 || i > n {
            return Err(format!("shard {i}/{n}: need 1 <= i <= n"));
        }
        if !matches!(spec.replication, crate::spec::Replication::Fixed(_)) {
            return Err(
                "sharding requires fixed replication; the adaptive stopping rule \
                 needs every replication of a cell on one machine"
                    .to_string(),
            );
        }
    }

    let cells = spec.cells();
    let mut states: Vec<CellState> = cells
        .iter()
        .map(|_| CellState {
            acc: ReplicationAccumulator::new(),
            merger: SnapshotMerger::new(),
            series: SeriesMerger::new(),
            hists: Vec::new(),
            runs: Vec::new(),
        })
        .collect();
    let obs = ObsOptions {
        sample_interval: spec.series.map(|s| s.interval),
        ring_capacity: spec
            .series
            .map(|s| s.capacity)
            .unwrap_or_else(|| ObsOptions::default().ring_capacity),
        ..ObsOptions::default()
    };

    // First wave: the initial replication count for every cell. Global
    // job indices are assigned over the FULL grid before the shard filter
    // drops the other shards' jobs, so indices (and with them seeds and
    // JSONL identity) match the unsharded sweep.
    let initial = spec.replication.initial();
    let mut next_job = 0usize;
    let mut wave: Vec<(usize, usize, u32)> = Vec::new();
    for (ci, _) in cells.iter().enumerate() {
        for k in 0..initial {
            let job = next_job;
            next_job += 1;
            let mine = match shard {
                None => true,
                Some((i, n)) => job as u64 % n as u64 == (i - 1) as u64,
            };
            if mine {
                wave.push((job, ci, k));
            }
        }
    }

    let mut jobs = 0usize;
    while !wave.is_empty() {
        // Split the wave: jobs with a cached record replay, the rest run.
        // A cached record must agree with the grid position its job index
        // implies, or the cache belongs to some other sweep.
        let mut to_run: Vec<(usize, usize, u32)> = Vec::new();
        for &(job, ci, k) in &wave {
            match cache.get(&job) {
                None => to_run.push((job, ci, k)),
                Some(rec) => {
                    if rec.cell_index != ci
                        || rec.replication != k
                        || rec.cell != cells[ci]
                        || rec.summary.seed != replication_seed(spec.seed, k)
                        || rec.series.is_some() != spec.series.is_some()
                        || rec.hists.is_none()
                    {
                        return Err(format!(
                            "checkpoint record for job {job} does not match this \
                             sweep's grid (expected cell {ci}, replication {k}, \
                             seed {}) — was the log written by a different spec?",
                            replication_seed(spec.seed, k)
                        ));
                    }
                }
            }
        }

        let mut fresh = run_indexed_catching(
            &to_run,
            workers,
            |_, &(_job, ci, k)| {
                let cfg = spec.config_for(&cells[ci], k);
                let observed = run_simulation_observed(cfg, Trace::disabled(), obs.clone());
                (observed.report, observed.snapshot, observed.series)
            },
            |i, (report, snapshot, series): &(RunReport, Snapshot, Option<SeriesSet>)| {
                let (job, ci, k) = to_run[i];
                on_job(&JobRecord {
                    job,
                    cell_index: ci,
                    replication: k,
                    cell: cells[ci],
                    summary: RunSummary::from_report(report),
                    snapshot: snapshot.clone(),
                    series: series.clone(),
                    hists: Some(report.hists.clone()),
                });
            },
        );

        // Surface the first panic — with job index and cell axes — only
        // now, after every sibling job has finished and streamed through
        // `on_job` (so a checkpoint log retains their results).
        for (&(job, ci, _), out) in to_run.iter().zip(&fresh) {
            if let Err(msg) = out {
                let cell = &cells[ci];
                panic!(
                    "sweep job {job} ({} clients={} locality={} write_prob={}) panicked: {msg}",
                    cell.algorithm.label(),
                    cell.clients,
                    cell.locality,
                    cell.prob_write,
                );
            }
        }
        jobs += wave.len();

        // Fold results in job-index (= seed) order, interleaving cached
        // replays with fresh outputs: merging is order-sensitive only in
        // floating-point rounding, and this order is the same for every
        // worker count — and for every resume point, because replayed
        // values round-trip bit-exactly through the JSONL log.
        let mut fresh_iter = fresh.drain(..);
        for &(job, ci, _) in &wave {
            let state = &mut states[ci];
            match cache.get(&job) {
                Some(rec) => {
                    state.acc.push_values(
                        rec.summary.resp_time_mean,
                        rec.summary.throughput,
                        rec.summary.commits,
                        rec.summary.aborts,
                    );
                    state.merger.push(&rec.snapshot);
                    if let Some(set) = &rec.series {
                        state.series.push(set);
                    }
                    fold_hists(
                        &mut state.hists,
                        rec.hists.as_ref().expect("validated when the wave split"),
                    );
                    state.runs.push(rec.summary);
                }
                None => {
                    let (report, snapshot, series) = fresh_iter
                        .next()
                        .expect("one output per to-run job")
                        .expect("panics surfaced above");
                    state.acc.push(&report);
                    state.merger.push(&snapshot);
                    if let Some(set) = &series {
                        state.series.push(set);
                    }
                    fold_hists(&mut state.hists, &report.hists);
                    state.runs.push(RunSummary::from_report(&report));
                }
            }
        }

        // A shard runs exactly its slice of the first wave: the stopping
        // rule would otherwise "top up" cells whose other replications
        // deliberately live on other shards.
        if shard.is_some() {
            break;
        }

        // Next wave: one more replication for each cell the stopping rule
        // keeps open. Deterministic because the folded aggregates are.
        wave = states
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let agg = s.acc.aggregate();
                spec.replication
                    .needs_more(s.acc.count(), agg.resp_relative_precision())
            })
            .map(|(ci, s)| {
                let job = next_job;
                next_job += 1;
                (job, ci, s.acc.count())
            })
            .collect();
    }

    let reports = cells
        .iter()
        .zip(states)
        .filter(|(_, state)| state.acc.count() > 0)
        .map(|(cell, state)| CellReport {
            cell: *cell,
            aggregate: state.acc.aggregate(),
            series: state.series.finish(),
            hists: state.hists,
            runs: state.runs,
            metrics: state
                .merger
                .finish()
                .expect("every retained cell ran at least one replication"),
        })
        .collect();
    Ok(SweepResult {
        spec: spec.clone(),
        cells: reports,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Family, Replication, SweepSpec};
    use ccdb_core::{replication_seed, Algorithm};
    use ccdb_des::SimDuration;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::TwoPhase { inter: true }, Algorithm::Callback],
            clients: vec![2, 5],
            localities: vec![0.5],
            write_probs: vec![0.2],
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(10),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        }
    }

    #[test]
    fn runs_every_cell_with_fixed_replications() {
        let spec = tiny_spec();
        let mut streamed = Vec::new();
        let result = run_sweep(&spec, 1, |job| streamed.push(job.job));
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.jobs, 8);
        streamed.sort_unstable();
        assert_eq!(streamed, (0..8).collect::<Vec<_>>());
        for cell in &result.cells {
            assert_eq!(cell.aggregate.replications, 2);
            assert_eq!(cell.runs.len(), 2);
            // Replication seeds follow the shared convention.
            assert_eq!(cell.runs[0].seed, replication_seed(spec.seed, 0));
            assert_eq!(cell.runs[1].seed, replication_seed(spec.seed, 1));
            assert!(cell.aggregate.resp_time_mean > 0.0);
            assert_eq!(cell.metrics.replications, 2);
            // Histograms merge across replications: the response
            // histogram holds every committed transaction of the cell.
            let (label, resp) = &cell.hists[0];
            assert_eq!(label, "response");
            assert_eq!(resp.count(), cell.aggregate.commits);
        }
    }

    #[test]
    fn seed_zero_replication_convention_matches_run_replicated() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![5],
            replication: Replication::Fixed(2),
            ..tiny_spec()
        };
        let result = run_sweep(&spec, 1, |_| {});
        let cfg = spec.config_for(&spec.cells()[0], 0);
        let rep = ccdb_core::run_replicated(cfg.with_seed(spec.seed), 2);
        let agg = result.cells[0].aggregate;
        assert_eq!(agg.resp_time_mean, rep.resp_time_mean);
        assert_eq!(agg.resp_time_ci95, rep.resp_time_ci95);
        assert_eq!(agg.commits, rep.commits);
    }

    #[test]
    fn shards_partition_the_job_grid_exactly() {
        let spec = tiny_spec();
        let full = {
            let mut jobs = Vec::new();
            run_sweep(&spec, 1, |j| {
                jobs.push((j.job, j.cell_index, j.replication))
            });
            jobs.sort_unstable();
            jobs
        };

        let n = 3u32;
        let mut merged = Vec::new();
        let mut per_shard = Vec::new();
        for i in 1..=n {
            let mut jobs = Vec::new();
            let result = run_sweep_sharded(&spec, 2, Some((i, n)), |j| {
                jobs.push((j.job, j.cell_index, j.replication))
            })
            .unwrap();
            assert_eq!(result.jobs, jobs.len(), "jobs counts only this shard");
            // Every retained cell actually ran something.
            for cell in &result.cells {
                assert!(!cell.runs.is_empty());
            }
            per_shard.push(jobs.clone());
            merged.extend(jobs);
        }

        // Disjoint: a job index appears on exactly one shard.
        for a in 0..per_shard.len() {
            for b in a + 1..per_shard.len() {
                for job in &per_shard[a] {
                    assert!(!per_shard[b].contains(job), "job {job:?} ran twice");
                }
            }
        }
        // Union: the merged stream is exactly the unsharded job set, with
        // identical global indices, cell indices, and replication numbers.
        merged.sort_unstable();
        assert_eq!(merged, full);
    }

    #[test]
    fn sharding_rejects_bad_ranges_and_adaptive_replication() {
        let spec = tiny_spec();
        assert!(run_sweep_sharded(&spec, 1, Some((0, 3)), |_| {}).is_err());
        assert!(run_sweep_sharded(&spec, 1, Some((4, 3)), |_| {}).is_err());
        let adaptive = SweepSpec {
            replication: Replication::Adaptive {
                min: 2,
                max: 4,
                target_rel_precision: 0.5,
            },
            ..tiny_spec()
        };
        assert!(run_sweep_sharded(&adaptive, 1, Some((1, 2)), |_| {}).is_err());
    }

    #[test]
    fn resumed_run_matches_uninterrupted_bitwise() {
        let spec = tiny_spec();
        let mut records = Vec::new();
        let full = run_sweep(&spec, 2, |j| records.push(j.clone()));
        // Cache the first half of the jobs; the resumed run must execute
        // (and stream) only the remainder and still agree bit-for-bit.
        let cache: JobCache = records
            .iter()
            .filter(|r| r.job < 4)
            .map(|r| (r.job, r.clone()))
            .collect();
        let mut streamed = Vec::new();
        let resumed = run_sweep_resumed(&spec, 2, None, &cache, |j| streamed.push(j.job)).unwrap();
        streamed.sort_unstable();
        assert_eq!(streamed, (4..8).collect::<Vec<_>>());
        assert_eq!(resumed.jobs, full.jobs);
        for (a, b) in full.cells.iter().zip(&resumed.cells) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.aggregate, b.aggregate);
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.metrics.replications, b.metrics.replications);
            assert_eq!(a.hists, b.hists, "histograms replay bit-exactly");
        }
    }

    #[test]
    fn resume_rejects_histogram_free_records() {
        // A record from a stream written before histograms existed would
        // make the resumed fold diverge from an uninterrupted run.
        let spec = tiny_spec();
        let mut records = Vec::new();
        run_sweep(&spec, 1, |j| records.push(j.clone()));
        let mut stripped = records[0].clone();
        stripped.hists = None;
        let cache: JobCache = [(stripped.job, stripped)].into_iter().collect();
        let err = run_sweep_resumed(&spec, 1, None, &cache, |_| {}).unwrap_err();
        assert!(err.contains("job 0"), "{err}");
    }

    #[test]
    fn resume_rejects_records_from_another_grid() {
        let spec = tiny_spec();
        let mut records = Vec::new();
        run_sweep(&spec, 1, |j| records.push(j.clone()));
        let mut bad = records[0].clone();
        bad.summary.seed ^= 1;
        let cache: JobCache = [(bad.job, bad)].into_iter().collect();
        let err = run_sweep_resumed(&spec, 1, None, &cache, |_| {}).unwrap_err();
        assert!(err.contains("job 0"), "{err}");
    }

    #[test]
    fn series_sampling_merges_per_cell_and_survives_resume() {
        let spec = SweepSpec {
            series: Some(crate::spec::SeriesSampling {
                interval: SimDuration::from_secs(1),
                capacity: 8,
            }),
            ..tiny_spec()
        };
        let mut records = Vec::new();
        let full = run_sweep(&spec, 2, |j| records.push(j.clone()));
        for rec in &records {
            let set = rec.series.as_ref().expect("sampling was enabled");
            assert_eq!(set.dropped(), 0);
            assert!(set.len() <= 8);
        }
        for cell in &full.cells {
            let merged = cell.series.as_ref().expect("sampling was enabled");
            assert_eq!(merged.replications, 2);
            // Both replications share the 12s horizon grid.
            assert_eq!(merged.times.last(), Some(&12.0));
        }
        // Resuming from cached records (series replayed, not re-run)
        // reproduces the merged series exactly.
        let cache: JobCache = records.iter().map(|r| (r.job, r.clone())).collect();
        let resumed =
            run_sweep_resumed(&spec, 1, None, &cache, |_| panic!("everything was cached")).unwrap();
        for (a, b) in full.cells.iter().zip(&resumed.cells) {
            assert_eq!(a.series, b.series);
        }
        // A series-free cache cannot resume a series-enabled sweep.
        let mut stripped = records[0].clone();
        stripped.series = None;
        let cache: JobCache = [(stripped.job, stripped)].into_iter().collect();
        assert!(run_sweep_resumed(&spec, 1, None, &cache, |_| {}).is_err());
    }

    #[test]
    fn adaptive_replication_stops_between_min_and_max() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![5],
            replication: Replication::Adaptive {
                min: 2,
                max: 4,
                // Loose target: the min wave should already satisfy it in
                // most cells; the cap bounds the rest.
                target_rel_precision: 0.5,
            },
            ..tiny_spec()
        };
        let result = run_sweep(&spec, 2, |_| {});
        let n = result.cells[0].aggregate.replications;
        assert!((2..=4).contains(&n), "got {n} replications");
        // And the adaptive run is itself deterministic.
        let again = run_sweep(&spec, 1, |_| {});
        assert_eq!(again.cells[0].aggregate.replications, n);
        assert_eq!(
            again.cells[0].aggregate.resp_time_mean,
            result.cells[0].aggregate.resp_time_mean
        );
    }
}
