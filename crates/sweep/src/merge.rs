//! Reconstructing one sweep from the union of per-shard JSONL streams.
//!
//! `run_sweep_sharded` assigns global job indices over the full grid
//! before the shard filter drops the other shards' jobs, so the streams
//! of all `n` shards are disjoint and their union is exactly the
//! unsharded job set. [`merge_logs`] verifies that — same spec, no
//! overlapping indices, no missing indices — and then rebuilds the
//! result through the *same* fold as a live run
//! ([`crate::run::run_sweep_resumed`] with every job cached), so the
//! rendered `ccdb.sweep/v2` document is byte-identical to the one an
//! unsharded run would have produced.

use std::collections::BTreeMap;

use ccdb_core::ReplicationAccumulator;

use crate::checkpoint::SweepLog;
use crate::export::spec_json;
use crate::run::{run_sweep_resumed, JobCache, SweepResult};
use crate::spec::SweepSpec;

/// Human-readable description of a spec's series-sampling setting, for
/// diagnostics when shard streams disagree on it.
fn sampling_desc(spec: &SweepSpec) -> String {
    match spec.series {
        None => "no series sampling".to_string(),
        Some(s) => format!(
            "series sampling (base_interval_s {}, capacity {})",
            s.interval.as_secs_f64(),
            s.capacity
        ),
    }
}

/// Merge parsed streams into one complete sweep result.
///
/// Errors if the streams disagree on the spec, if a job index appears
/// in more than one stream, if the union does not cover every job of
/// the spec's grid, or if it contains job indices the grid never
/// assigns. Streams are named `stream 1..n` in errors; use
/// [`merge_logs_named`] to name them by file instead.
pub fn merge_logs(logs: &[SweepLog]) -> Result<SweepResult, String> {
    merge_logs_named(logs, &[])
}

/// [`merge_logs`] with per-stream labels (typically file paths) so
/// errors name the offending files instead of bare stream indices.
///
/// `names` is positional and may be shorter than `logs`; unnamed
/// streams fall back to `stream N`.
pub fn merge_logs_named(logs: &[SweepLog], names: &[String]) -> Result<SweepResult, String> {
    let name = |ix: usize| {
        names
            .get(ix)
            .cloned()
            .unwrap_or_else(|| format!("stream {}", ix + 1))
    };
    let first = logs.first().ok_or("merge: no streams given")?;
    let spec = first.spec.clone();
    let spec_rendered = spec_json(&spec).render();

    let mut cache = JobCache::new();
    let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
    for (ix, log) in logs.iter().enumerate() {
        if log.spec_hash != first.spec_hash || spec_json(&log.spec).render() != spec_rendered {
            let mut msg = format!(
                "merge: {} was written by a different spec than {} (hash {} vs {})",
                name(ix),
                name(0),
                log.spec_hash,
                first.spec_hash
            );
            // Disagreeing on series sampling is the common way to get
            // here (one shard run with --series, another without, or
            // with a different grid) — spell out both sides.
            if log.spec.series != first.spec.series {
                msg.push_str(&format!(
                    "; the streams disagree on series sampling: {} has {}, {} has {}",
                    name(0),
                    sampling_desc(&first.spec),
                    name(ix),
                    sampling_desc(&log.spec)
                ));
            }
            return Err(msg);
        }
        for (job, rec) in &log.records {
            if let Some(prev) = origin.insert(*job, ix) {
                return Err(format!(
                    "merge: job {job} appears in more than one stream ({} and {})",
                    name(prev),
                    name(ix)
                ));
            }
            cache.insert(*job, rec.clone());
        }
    }

    // Completeness: replay the wave construction against the cached
    // summaries only. Every job index the grid assigns must be present
    // — for adaptive replication the follow-up waves depend on the
    // folded aggregates, which is why this walks waves instead of
    // counting.
    let cells = spec.cells();
    let mut accs: Vec<ReplicationAccumulator> = cells
        .iter()
        .map(|_| ReplicationAccumulator::new())
        .collect();
    let initial = spec.replication.initial();
    let mut next_job = 0usize;
    let mut wave: Vec<(usize, usize)> = Vec::new();
    for (ci, _) in cells.iter().enumerate() {
        for _ in 0..initial {
            wave.push((next_job, ci));
            next_job += 1;
        }
    }
    let mut covered = 0usize;
    while !wave.is_empty() {
        let mut missing: Vec<usize> = Vec::new();
        for &(job, ci) in &wave {
            match cache.get(&job) {
                None => missing.push(job),
                Some(rec) => accs[ci].push_values(
                    rec.summary.resp_time_mean,
                    rec.summary.throughput,
                    rec.summary.commits,
                    rec.summary.aborts,
                ),
            }
        }
        if !missing.is_empty() {
            let shown: Vec<String> = missing.iter().take(8).map(|j| j.to_string()).collect();
            return Err(format!(
                "merge: {} job(s) missing from the given streams (job {}{})",
                missing.len(),
                shown.join(", job "),
                if missing.len() > shown.len() {
                    ", ..."
                } else {
                    ""
                }
            ));
        }
        covered += wave.len();
        wave = accs
            .iter()
            .enumerate()
            .filter(|(_, acc)| {
                let agg = acc.aggregate();
                spec.replication
                    .needs_more(acc.count(), agg.resp_relative_precision())
            })
            .map(|(ci, _)| {
                let job = next_job;
                next_job += 1;
                (job, ci)
            })
            .collect();
    }
    if covered != cache.len() {
        let extra = cache
            .keys()
            .find(|j| **j >= next_job)
            .copied()
            .unwrap_or_default();
        return Err(format!(
            "merge: streams contain {} record(s) the grid never assigns (e.g. job {extra})",
            cache.len() - covered
        ));
    }

    // Rebuild through the canonical fold; with every job cached, nothing
    // runs and nothing streams.
    run_sweep_resumed(&spec, 1, None, &cache, |job| {
        unreachable!("merge replay tried to run job {}", job.job)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::parse_log;
    use crate::export::{footer_line, header_line, job_line, sweep_document};
    use crate::run::{run_sweep, run_sweep_sharded};
    use crate::spec::{Family, Replication, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    fn tiny() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::TwoPhase { inter: true }, Algorithm::Callback],
            clients: vec![2, 5],
            localities: vec![0.5],
            write_probs: vec![0.2],
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        }
    }

    fn shard_stream(spec: &SweepSpec, shard: Option<(u32, u32)>) -> String {
        let mut text = format!("{}\n", header_line(spec, shard));
        let result = run_sweep_sharded(spec, 2, shard, |job| {
            text.push_str(&job_line(job));
            text.push('\n');
        })
        .unwrap();
        text.push_str(&footer_line(spec, result.jobs));
        text.push('\n');
        text
    }

    #[test]
    fn three_shards_merge_to_the_unsharded_document() {
        let spec = tiny();
        let unsharded = sweep_document(&run_sweep(&spec, 2, |_| {})).render();
        let logs: Vec<_> = (1..=3)
            .map(|i| parse_log(&shard_stream(&spec, Some((i, 3)))).unwrap())
            .collect();
        let merged = merge_logs(&logs).unwrap();
        assert_eq!(sweep_document(&merged).render(), unsharded);
    }

    #[test]
    fn single_complete_stream_merges_even_when_adaptive() {
        let spec = SweepSpec {
            replication: Replication::Adaptive {
                min: 2,
                max: 3,
                target_rel_precision: 0.4,
            },
            ..tiny()
        };
        let unsharded = sweep_document(&run_sweep(&spec, 2, |_| {})).render();
        let log = parse_log(&shard_stream(&spec, None)).unwrap();
        let merged = merge_logs(&[log]).unwrap();
        assert_eq!(sweep_document(&merged).render(), unsharded);
    }

    #[test]
    fn overlapping_and_missing_indices_are_rejected() {
        let spec = tiny();
        let s1 = parse_log(&shard_stream(&spec, Some((1, 3)))).unwrap();
        let s2 = parse_log(&shard_stream(&spec, Some((2, 3)))).unwrap();

        // Missing: shard 3 absent.
        let err = merge_logs(&[s1.clone(), s2.clone()]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
        assert!(err.contains("job 2"), "{err}");

        // Overlapping: the same shard twice.
        let err = merge_logs(&[s1.clone(), s1.clone()]).unwrap_err();
        assert!(err.contains("more than one stream"), "{err}");

        // Different specs.
        let other = SweepSpec {
            seed: spec.seed + 1,
            ..tiny()
        };
        let s_other = parse_log(&shard_stream(&other, Some((3, 3)))).unwrap();
        let err = merge_logs(&[s1, s2, s_other]).unwrap_err();
        assert!(err.contains("different spec"), "{err}");

        assert!(merge_logs(&[]).is_err());
    }

    #[test]
    fn named_errors_cite_files_and_sampling_mismatch() {
        let spec = tiny();
        let s1 = parse_log(&shard_stream(&spec, Some((1, 2)))).unwrap();
        let sampled = SweepSpec {
            series: Some(crate::spec::SeriesSampling {
                interval: SimDuration::from_secs(1),
                capacity: 4,
            }),
            ..tiny()
        };
        let s2 = parse_log(&shard_stream(&sampled, Some((2, 2)))).unwrap();
        let names = vec!["a.jsonl".to_string(), "b.jsonl".to_string()];

        let err = merge_logs_named(&[s1.clone(), s2], &names).unwrap_err();
        assert!(err.contains("different spec"), "{err}");
        assert!(
            err.contains("b.jsonl was written by a different spec than a.jsonl"),
            "{err}"
        );
        assert!(err.contains("a.jsonl has no series sampling"), "{err}");
        assert!(
            err.contains("b.jsonl has series sampling (base_interval_s 1, capacity 4)"),
            "{err}"
        );

        // Overlap errors name both offending streams.
        let err = merge_logs_named(&[s1.clone(), s1], &names).unwrap_err();
        assert!(
            err.contains("more than one stream (a.jsonl and b.jsonl)"),
            "{err}"
        );
    }
}
