//! The worker pool: scoped `std::thread` fan-out with index-ordered
//! collection.
//!
//! Each simulation run is single-threaded and a pure function of its
//! configuration, so parallelism lives entirely outside the kernel:
//! workers pull the next job index from an atomic counter, run it, and
//! send `(index, output)` back over a channel. The caller's results are
//! reassembled **by job index**, so the output is identical for any
//! worker count or completion interleaving — determinism is preserved
//! end-to-end, which the sweep tests assert byte-for-byte.
//!
//! Panics are contained per job ([`run_indexed_catching`]): a panicking
//! job neither kills its worker thread nor discards the other jobs'
//! finished results — everything else completes (and can be
//! checkpointed) before the caller decides how to surface the failure.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The panic payload of a failed job, reduced to a message. Non-string
/// payloads (rare: `panic_any` with a custom type) lose their value but
/// keep the job attribution the caller adds.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a worker count: an explicit request (e.g. `--jobs N`) wins,
/// then the `CCDB_JOBS` environment variable, then
/// [`default_workers`]. Zero or unparsable values fall through.
pub fn resolve_workers(requested: Option<usize>) -> usize {
    requested
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("CCDB_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or_else(default_workers)
}

/// Run `run(i, &items[i])` for every item on `workers` threads and
/// return the outputs in item order.
///
/// `on_complete` is invoked on the caller's thread once per job **in
/// completion order** (for streaming progress); the returned vector is
/// always in item order regardless of scheduling. `workers <= 1` — or a
/// single item — takes a strictly serial in-order path with no threads.
///
/// A panicking job does not abort the batch: every other job still runs
/// and streams through `on_complete`, then this function re-raises with
/// the failed item indices in the message. Callers that can attribute
/// failures better (e.g. to sweep cells) should use
/// [`run_indexed_catching`] directly.
pub fn run_indexed<In, Out, R, C>(items: &[In], workers: usize, run: R, on_complete: C) -> Vec<Out>
where
    In: Sync,
    Out: Send,
    R: Fn(usize, &In) -> Out + Sync,
    C: FnMut(usize, &Out),
{
    let outputs = run_indexed_catching(items, workers, run, on_complete);
    let failed: Vec<String> = outputs
        .iter()
        .enumerate()
        .filter_map(|(i, out)| out.as_ref().err().map(|e| format!("job {i}: {e}")))
        .collect();
    if !failed.is_empty() {
        panic!(
            "{} of {} jobs panicked ({})",
            failed.len(),
            items.len(),
            failed.join("; "),
        );
    }
    outputs
        .into_iter()
        .map(|out| out.expect("failures handled above"))
        .collect()
}

/// [`run_indexed`] with per-job panic containment: the output slot of a
/// panicking job holds `Err(message)` instead of poisoning the batch.
/// `on_complete` fires (in completion order) only for successful jobs,
/// so streaming consumers — the checkpoint log above all — record every
/// finished result even when a sibling job dies.
pub fn run_indexed_catching<In, Out, R, C>(
    items: &[In],
    workers: usize,
    run: R,
    mut on_complete: C,
) -> Vec<Result<Out, String>>
where
    In: Sync,
    Out: Send,
    R: Fn(usize, &In) -> Out + Sync,
    C: FnMut(usize, &Out),
{
    // AssertUnwindSafe: on panic the job's partial state is discarded
    // wholesale (simulations share nothing across jobs), so observing
    // broken invariants is impossible.
    let guarded = |i: usize, item: &In| {
        catch_unwind(AssertUnwindSafe(|| run(i, item))).map_err(panic_message)
    };

    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let out = guarded(i, item);
                if let Ok(out) = &out {
                    on_complete(i, out);
                }
                out
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<Out, String>)>();
    let mut slots: Vec<Option<Result<Out, String>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let guarded = &guarded;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = guarded(i, &items[i]);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            if let Ok(out) = &out {
                on_complete(i, out);
            }
            slots[i] = Some(out);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("scheduler lost a job result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_item_order() {
        let items: Vec<u64> = (0..97).collect();
        let square = |_i: usize, x: &u64| x * x;
        let serial = run_indexed(&items, 1, square, |_, _| {});
        for workers in [2, 4, 8] {
            let parallel = run_indexed(&items, workers, square, |_, _| {});
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn on_complete_sees_every_job_exactly_once() {
        let items: Vec<usize> = (0..50).collect();
        let mut seen = vec![0u32; items.len()];
        run_indexed(
            &items,
            4,
            |i, _| i,
            |i, out| {
                assert_eq!(i, *out);
                seen[i] += 1;
            },
        );
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn empty_and_single_item_take_serial_path() {
        let empty: Vec<u32> = vec![];
        assert!(run_indexed(&empty, 8, |_, x| *x, |_, _| {}).is_empty());
        let one = vec![7u32];
        assert_eq!(run_indexed(&one, 8, |_, x| x + 1, |_, _| {}), vec![8]);
    }

    #[test]
    fn panicking_job_does_not_lose_the_others() {
        for workers in [1, 4] {
            let items: Vec<u64> = (0..20).collect();
            let mut completed = Vec::new();
            let outputs = run_indexed_catching(
                &items,
                workers,
                |_, &x| {
                    if x == 7 {
                        panic!("boom on {x}");
                    }
                    x * 2
                },
                |i, _| completed.push(i),
            );
            assert_eq!(outputs.len(), 20, "workers={workers}");
            // Every other job finished and streamed exactly once.
            completed.sort_unstable();
            let expected: Vec<usize> = (0..20).filter(|&i| i != 7).collect();
            assert_eq!(completed, expected, "workers={workers}");
            for (i, out) in outputs.iter().enumerate() {
                if i == 7 {
                    let msg = out.as_ref().unwrap_err();
                    assert!(msg.contains("boom on 7"), "{msg}");
                } else {
                    assert_eq!(out.as_ref().unwrap(), &(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn run_indexed_reraises_with_job_indices() {
        let items: Vec<u32> = (0..6).collect();
        let caught = std::panic::catch_unwind(|| {
            run_indexed(
                &items,
                2,
                |_, &x| {
                    if x == 3 {
                        panic!("bad cell");
                    }
                    x
                },
                |_, _| {},
            )
        })
        .expect_err("must re-raise");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.contains("job 3"), "{msg}");
        assert!(msg.contains("bad cell"), "{msg}");
    }

    #[test]
    fn resolve_workers_prefers_explicit_request() {
        assert_eq!(resolve_workers(Some(3)), 3);
        assert!(resolve_workers(None) >= 1);
        // Zero is not a valid pool size; falls through to a default.
        assert!(resolve_workers(Some(0)) >= 1);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
