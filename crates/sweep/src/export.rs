//! Versioned JSON export of sweep results.
//!
//! Two formats:
//!
//! * [`sweep_document`] — the final `ccdb.sweep/v1` document: the spec,
//!   the job count, and one entry per cell with the cross-replication
//!   aggregate, per-replication summaries, and the merged metrics
//!   snapshot. Deliberately free of wall-clock times and worker counts,
//!   so the document is **byte-identical for every worker count** (the
//!   property the sweep tests pin down).
//! * [`job_line`] — one self-describing JSONL object per job, emitted as
//!   jobs complete. Line *content* is deterministic; line *order* is the
//!   completion order and therefore only reproducible with one worker.
//!
//! Cell entries relate to `ccdb.run_report/v1` (see
//! `docs/observability.md`): a run report is the full single-run record;
//! a sweep cell carries the per-replication summaries plus aggregates of
//! exactly those quantities, keyed by the same metric names.

use ccdb_obs::Json;

use crate::run::{JobRecord, SweepResult};
use crate::spec::{Replication, SweepSpec};

/// The schema tag of the sweep document.
pub const SWEEP_SCHEMA: &str = "ccdb.sweep/v1";

fn spec_json(spec: &SweepSpec) -> Json {
    let mut replication = Json::obj();
    match spec.replication {
        Replication::Fixed(n) => {
            replication.set("mode", "fixed").set("replications", n);
        }
        Replication::Adaptive {
            min,
            max,
            target_rel_precision,
        } => {
            replication
                .set("mode", "adaptive")
                .set("min", min)
                .set("max", max)
                .set("target_rel_precision", target_rel_precision);
        }
    }
    let mut obj = Json::obj();
    obj.set("family", spec.family.label())
        .set(
            "algorithms",
            spec.algorithms
                .iter()
                .map(|a| a.label())
                .collect::<Vec<_>>(),
        )
        .set("clients", spec.clients.clone())
        .set("localities", spec.localities.clone())
        .set("write_probs", spec.write_probs.clone())
        .set("seed", spec.seed)
        .set("warmup_s", spec.warmup.as_secs_f64())
        .set(
            "measure_s",
            (spec.measure * spec.family.measure_scale()).as_secs_f64(),
        )
        .set("replication", replication);
    obj
}

/// The final `ccdb.sweep/v1` document for a finished sweep.
pub fn sweep_document(result: &SweepResult) -> Json {
    let mut cells = Vec::with_capacity(result.cells.len());
    for cell in &result.cells {
        let agg = &cell.aggregate;
        let mut response = Json::obj();
        response
            .set("mean_s", agg.resp_time_mean)
            .set("ci95_s", agg.resp_time_ci95)
            .set("rel_precision", agg.resp_relative_precision());
        let mut throughput = Json::obj();
        throughput
            .set("mean_tps", agg.throughput_mean)
            .set("ci95_tps", agg.throughput_ci95);
        let runs: Vec<Json> = cell
            .runs
            .iter()
            .map(|r| {
                let mut run = Json::obj();
                run.set("seed", r.seed)
                    .set("resp_s", r.resp_time_mean)
                    .set("tput_tps", r.throughput)
                    .set("commits", r.commits)
                    .set("aborts", r.aborts);
                run
            })
            .collect();
        let mut entry = Json::obj();
        entry
            .set("algorithm", cell.cell.algorithm.label())
            .set("clients", cell.cell.clients)
            .set("locality", cell.cell.locality)
            .set("write_prob", cell.cell.prob_write)
            .set("replications", agg.replications)
            .set("response", response)
            .set("throughput", throughput)
            .set("commits", agg.commits)
            .set("aborts", agg.aborts)
            .set("runs", runs)
            .set("metrics", cell.metrics.to_json());
        cells.push(entry);
    }
    let mut doc = Json::obj();
    doc.set("schema", SWEEP_SCHEMA)
        .set("spec", spec_json(&result.spec))
        .set("jobs", result.jobs as u64)
        .set("cells", cells);
    doc
}

/// One JSONL line (no trailing newline) describing a completed job.
pub fn job_line(job: &JobRecord) -> String {
    let mut obj = Json::obj();
    obj.set("job", job.job as u64)
        .set("cell", job.cell_index as u64)
        .set("replication", job.replication)
        .set("algorithm", job.cell.algorithm.label())
        .set("clients", job.cell.clients)
        .set("locality", job.cell.locality)
        .set("write_prob", job.cell.prob_write)
        .set("seed", job.summary.seed)
        .set("resp_s", job.summary.resp_time_mean)
        .set("tput_tps", job.summary.throughput)
        .set("commits", job.summary.commits)
        .set("aborts", job.summary.aborts);
    obj.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_sweep;
    use crate::spec::{Family, Replication, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    fn tiny() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![2],
            localities: vec![0.5],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        }
    }

    #[test]
    fn document_has_schema_spec_and_cells() {
        let result = run_sweep(&tiny(), 1, |_| {});
        let doc = sweep_document(&result).render();
        assert!(doc.starts_with(r#"{"schema":"ccdb.sweep/v1","spec":{"family":"short""#));
        assert!(doc.contains(r#""replication":{"mode":"fixed","replications":2}"#));
        assert!(doc.contains(r#""algorithm":"CB","clients":2"#));
        assert!(doc.contains(r#""metrics":{"#));
        assert!(doc.contains("server.cpu.util"));
        assert!(doc.contains(r#""txn.commits":"#));
    }

    #[test]
    fn adaptive_spec_exports_its_rule() {
        let spec = SweepSpec {
            replication: Replication::Adaptive {
                min: 1,
                max: 2,
                target_rel_precision: 0.25,
            },
            ..tiny()
        };
        let result = run_sweep(&spec, 1, |_| {});
        let doc = sweep_document(&result).render();
        assert!(doc.contains(
            r#""replication":{"mode":"adaptive","min":1,"max":2,"target_rel_precision":0.25}"#
        ));
    }

    #[test]
    fn job_lines_are_parseable_objects() {
        let mut lines = Vec::new();
        run_sweep(&tiny(), 1, |job| lines.push(job_line(job)));
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"job":0,"cell":0,"replication":0,"algorithm":"CB""#));
        assert!(lines[1].contains(r#""replication":1"#));
        for line in &lines {
            assert!(line.ends_with('}') && !line.contains('\n'));
        }
    }
}
