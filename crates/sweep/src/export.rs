//! Versioned JSON export of sweep results.
//!
//! Three formats:
//!
//! * [`sweep_document`] — the final `ccdb.sweep/v2` document: the spec,
//!   the job count, and one entry per cell with the cross-replication
//!   aggregate, per-replication summaries, the merged metrics snapshot,
//!   the merged latency histograms (`hists`), and (when the spec samples
//!   series) the merged metric trajectories.
//!   Deliberately free of wall-clock times and worker counts, so the
//!   document is **byte-identical for every worker count** (the property
//!   the sweep tests pin down). v2 differs from v1 only by the optional
//!   per-cell `series` object and the spec's optional `series` sampling
//!   block; [`read_sweep_document`] reads both versions.
//! * [`job_line`] — one self-describing `ccdb.job/v2` JSONL object per
//!   job, emitted as jobs complete. Line *content* is deterministic; line
//!   *order* is the completion order and therefore only reproducible with
//!   one worker. A v2 line carries everything needed to replay the job
//!   into the per-cell accumulators — including the run's typed metrics
//!   snapshot — which is what makes the stream a write-ahead log
//!   (`crate::checkpoint`) and shard streams mergeable (`crate::merge`).
//! * [`header_line`] / [`footer_line`] — the stream frame: the header
//!   pins the spec (embedded verbatim, plus an FNV-1a hash for cheap
//!   verification) and the shard slice; the footer records the executed
//!   job count, so a footer-terminated stream is known complete.
//!
//! Cell entries relate to `ccdb.run_report/v1` (see
//! `docs/observability.md`): a run report is the full single-run record;
//! a sweep cell carries the per-replication summaries plus aggregates of
//! exactly those quantities, keyed by the same metric names.

use ccdb_core::Algorithm;
use ccdb_des::SimDuration;
use ccdb_obs::{Json, LatencyHistogram, SeriesSet, Snapshot};

use crate::run::{JobRecord, RunSummary, SweepResult};
use crate::spec::{Cell, Family, Replication, SeriesSampling, SweepSpec};

/// The schema tag of the sweep document.
pub const SWEEP_SCHEMA: &str = "ccdb.sweep/v2";

/// The previous sweep-document schema tag; still accepted by
/// [`read_sweep_document`]. A v1 document is exactly a v2 document
/// without the optional `series` fields.
pub const SWEEP_SCHEMA_V1: &str = "ccdb.sweep/v1";

/// The schema tag of the streaming JSONL records (header, job, and
/// footer lines all carry it).
pub const JOB_SCHEMA: &str = "ccdb.job/v2";

/// The spec as it is embedded in documents and stream headers.
///
/// `warmup_s` and `measure_s` are the horizon **that actually ran**
/// (matching `SweepSpec::config_for`): the warm-up is never scaled, the
/// measurement window is scaled by [`Family::measure_scale`]. The scale
/// is recorded explicitly so a reader reconstructing the spec
/// ([`spec_from_json`]) can undo it instead of double-applying it.
pub(crate) fn spec_json(spec: &SweepSpec) -> Json {
    let mut replication = Json::obj();
    match spec.replication {
        Replication::Fixed(n) => {
            replication.set("mode", "fixed").set("replications", n);
        }
        Replication::Adaptive {
            min,
            max,
            target_rel_precision,
        } => {
            replication
                .set("mode", "adaptive")
                .set("min", min)
                .set("max", max)
                .set("target_rel_precision", target_rel_precision);
        }
    }
    let mut obj = Json::obj();
    obj.set("family", spec.family.label())
        .set(
            "algorithms",
            spec.algorithms
                .iter()
                .map(|a| a.label())
                .collect::<Vec<_>>(),
        )
        .set("clients", spec.clients.clone())
        .set("localities", spec.localities.clone())
        .set("write_probs", spec.write_probs.clone())
        .set("seed", spec.seed)
        .set("warmup_s", spec.warmup.as_secs_f64())
        .set(
            "measure_s",
            (spec.measure * spec.family.measure_scale()).as_secs_f64(),
        )
        .set("measure_scale", spec.family.measure_scale())
        .set("replication", replication);
    // Omitted entirely when sampling is off, so series-free specs render
    // (and hash) exactly as they did before the field existed.
    if let Some(series) = spec.series {
        let mut s = Json::obj();
        s.set("interval_s", series.interval.as_secs_f64())
            .set("capacity", series.capacity);
        obj.set("series", s);
    }
    obj
}

/// Reconstruct a [`SweepSpec`] from its [`spec_json`] form — the reader
/// path for stream headers (`ccdb merge`, `--resume`). Exact inverse:
/// re-rendering the returned spec reproduces the input bytes, which
/// [`crate::checkpoint::parse_log`] verifies.
pub(crate) fn spec_from_json(j: &Json) -> Result<SweepSpec, String> {
    let family = j
        .get("family")
        .and_then(Json::as_str)
        .and_then(Family::parse)
        .ok_or("spec: missing or unknown family")?;
    let algorithms = j
        .get("algorithms")
        .and_then(Json::items)
        .ok_or("spec: missing algorithms")?
        .iter()
        .map(|a| {
            a.as_str()
                .and_then(Algorithm::from_label)
                .ok_or_else(|| format!("spec: unknown algorithm {}", a.render()))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let u32_list = |key: &str| -> Result<Vec<u32>, String> {
        j.get(key)
            .and_then(Json::items)
            .ok_or_else(|| format!("spec: missing {key}"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("spec: bad value in {key}"))
            })
            .collect()
    };
    let f64_list = |key: &str| -> Result<Vec<f64>, String> {
        j.get(key)
            .and_then(Json::items)
            .ok_or_else(|| format!("spec: missing {key}"))?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| format!("spec: bad value in {key}"))
            })
            .collect()
    };
    let clients = u32_list("clients")?;
    let localities = f64_list("localities")?;
    let write_probs = f64_list("write_probs")?;
    let seed = j
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("spec: missing seed")?;
    let warmup_s = j
        .get("warmup_s")
        .and_then(Json::as_f64)
        .ok_or("spec: missing warmup_s")?;
    let measure_s = j
        .get("measure_s")
        .and_then(Json::as_f64)
        .ok_or("spec: missing measure_s")?;
    // `measure_s` is the scaled window that ran; undo the family scale to
    // recover the spec's base window. Tolerate a missing `measure_scale`
    // (older streams) but reject a contradictory one.
    let scale = family.measure_scale();
    if let Some(recorded) = j.get("measure_scale").and_then(Json::as_u64) {
        if recorded != scale {
            return Err(format!(
                "spec: measure_scale {recorded} does not match family {} (expected {scale})",
                family.label()
            ));
        }
    }
    let replication = {
        let r = j.get("replication").ok_or("spec: missing replication")?;
        match r.get("mode").and_then(Json::as_str) {
            Some("fixed") => Replication::Fixed(
                r.get("replications")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("spec: bad replications")?,
            ),
            Some("adaptive") => Replication::Adaptive {
                min: r
                    .get("min")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("spec: bad replication min")?,
                max: r
                    .get("max")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or("spec: bad replication max")?,
                target_rel_precision: r
                    .get("target_rel_precision")
                    .and_then(Json::as_f64)
                    .ok_or("spec: bad target_rel_precision")?,
            },
            _ => return Err("spec: unknown replication mode".to_string()),
        }
    };
    let series = match j.get("series") {
        None => None,
        Some(s) => Some(SeriesSampling {
            interval: SimDuration::from_secs_f64(
                s.get("interval_s")
                    .and_then(Json::as_f64)
                    .ok_or("spec: bad series interval_s")?,
            ),
            capacity: usize::try_from(
                s.get("capacity")
                    .and_then(Json::as_u64)
                    .ok_or("spec: bad series capacity")?,
            )
            .map_err(|_| "spec: series capacity overflows")?,
        }),
    };
    Ok(SweepSpec {
        family,
        algorithms,
        clients,
        localities,
        write_probs,
        seed,
        warmup: SimDuration::from_secs_f64(warmup_s),
        measure: SimDuration::from_secs_f64(measure_s / scale as f64),
        replication,
        series,
    })
}

/// Labelled histograms as a JSON object (label order preserved).
fn hists_json(hists: &[(String, LatencyHistogram)]) -> Json {
    let mut obj = Json::obj();
    for (label, h) in hists {
        obj.set(label.clone(), h.to_json());
    }
    obj
}

/// Exact inverse of [`hists_json`].
fn hists_from_json(j: &Json) -> Result<Vec<(String, LatencyHistogram)>, String> {
    match j {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(label, v)| {
                LatencyHistogram::from_json(v)
                    .map(|h| (label.clone(), h))
                    .map_err(|e| format!("histogram '{label}': {e}"))
            })
            .collect(),
        _ => Err("hists is not an object".to_string()),
    }
}

/// A deterministic 64-bit FNV-1a hash of the spec's JSON form, printed
/// as 16 hex digits. Cheap identity check for checkpoint/resume and
/// shard-stream merging; the header also embeds the spec itself, so the
/// hash is a fast path, not the only defence.
pub fn spec_hash(spec: &SweepSpec) -> String {
    let rendered = spec_json(spec).render();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The first line of a `ccdb.job/v2` stream: schema, kind, spec hash,
/// the spec itself, and the shard slice (`[i, n]`, or `null` when the
/// stream covers the whole grid).
pub fn header_line(spec: &SweepSpec, shard: Option<(u32, u32)>) -> String {
    let mut obj = Json::obj();
    obj.set("schema", JOB_SCHEMA)
        .set("kind", "header")
        .set("spec_hash", spec_hash(spec))
        .set("spec", spec_json(spec));
    match shard {
        Some((i, n)) => obj.set("shard", vec![i, n]),
        None => obj.set("shard", Json::Null),
    };
    obj.render()
}

/// The last line of a complete `ccdb.job/v2` stream: the executed job
/// count. A stream without a footer was interrupted.
pub fn footer_line(spec: &SweepSpec, jobs: usize) -> String {
    let mut obj = Json::obj();
    obj.set("schema", JOB_SCHEMA)
        .set("kind", "footer")
        .set("spec_hash", spec_hash(spec))
        .set("jobs", jobs as u64);
    obj.render()
}

/// The final `ccdb.sweep/v2` document for a finished sweep. Cells gain a
/// `series` object (merged metric trajectories) only when the spec
/// enabled series sampling; without it the document body is the v1 shape
/// under the v2 tag.
pub fn sweep_document(result: &SweepResult) -> Json {
    let mut cells = Vec::with_capacity(result.cells.len());
    for cell in &result.cells {
        let agg = &cell.aggregate;
        let mut response = Json::obj();
        response
            .set("mean_s", agg.resp_time_mean)
            .set("ci95_s", agg.resp_time_ci95)
            .set("rel_precision", agg.resp_relative_precision());
        let mut throughput = Json::obj();
        throughput
            .set("mean_tps", agg.throughput_mean)
            .set("ci95_tps", agg.throughput_ci95);
        let runs: Vec<Json> = cell
            .runs
            .iter()
            .map(|r| {
                let mut run = Json::obj();
                run.set("seed", r.seed)
                    .set("resp_s", r.resp_time_mean)
                    .set("tput_tps", r.throughput)
                    .set("commits", r.commits)
                    .set("aborts", r.aborts);
                run
            })
            .collect();
        let mut entry = Json::obj();
        entry
            .set("algorithm", cell.cell.algorithm.label())
            .set("clients", cell.cell.clients)
            .set("locality", cell.cell.locality)
            .set("write_prob", cell.cell.prob_write)
            .set("replications", agg.replications)
            .set("response", response)
            .set("throughput", throughput)
            .set("commits", agg.commits)
            .set("aborts", agg.aborts)
            .set("runs", runs)
            .set("metrics", cell.metrics.to_json())
            .set("hists", hists_json(&cell.hists));
        if let Some(series) = &cell.series {
            entry.set("series", series.to_json());
        }
        cells.push(entry);
    }
    let mut doc = Json::obj();
    doc.set("schema", SWEEP_SCHEMA)
        .set("spec", spec_json(&result.spec))
        .set("jobs", result.jobs as u64)
        .set("cells", cells);
    doc
}

/// One `ccdb.job/v2` JSONL line (no trailing newline) describing a
/// completed job: the v1 summary fields plus the run's typed metrics
/// snapshot, so the per-cell `SnapshotMerger` state — and with it the
/// full sweep document — can be rebuilt from the stream alone.
pub fn job_line(job: &JobRecord) -> String {
    let mut obj = Json::obj();
    obj.set("schema", JOB_SCHEMA)
        .set("kind", "job")
        .set("job", job.job as u64)
        .set("cell", job.cell_index as u64)
        .set("replication", job.replication)
        .set("algorithm", job.cell.algorithm.label())
        .set("clients", job.cell.clients)
        .set("locality", job.cell.locality)
        .set("write_prob", job.cell.prob_write)
        .set("seed", job.summary.seed)
        .set("resp_s", job.summary.resp_time_mean)
        .set("tput_tps", job.summary.throughput)
        .set("commits", job.summary.commits)
        .set("aborts", job.summary.aborts)
        .set("metrics", job.snapshot.to_json_typed());
    // Omitted only for records replayed from a pre-histogram stream;
    // every freshly executed job carries its histograms.
    if let Some(hists) = &job.hists {
        obj.set("hists", hists_json(hists));
    }
    // Omitted (not null) when the sweep does not sample, so series-free
    // streams are byte-identical to pre-series ones.
    if let Some(series) = &job.series {
        obj.set("series", series.to_json());
    }
    obj.render()
}

/// Parse a [`job_line`] object back into the [`JobRecord`] it came from
/// — the replay path for checkpoint/resume (`crate::checkpoint`) and
/// shard merging (`crate::merge`). Exact inverse: re-rendering the
/// returned record with [`job_line`] reproduces the input bytes, because
/// the JSON writer emits shortest-round-trip floats.
pub(crate) fn job_from_json(j: &Json) -> Result<JobRecord, String> {
    if j.get("schema").and_then(Json::as_str) != Some(JOB_SCHEMA) {
        return Err(format!("job line: schema is not {JOB_SCHEMA}"));
    }
    let u64_field = |key: &str| -> Result<u64, String> {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("job line: missing or bad {key}"))
    };
    let f64_field = |key: &str| -> Result<f64, String> {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("job line: missing or bad {key}"))
    };
    let algorithm = j
        .get("algorithm")
        .and_then(Json::as_str)
        .and_then(Algorithm::from_label)
        .ok_or("job line: missing or unknown algorithm")?;
    let snapshot = Snapshot::from_json(j.get("metrics").ok_or("job line: missing metrics")?)
        .map_err(|e| format!("job line: {e}"))?;
    let series = match j.get("series") {
        None => None,
        Some(s) => Some(SeriesSet::from_json(s).map_err(|e| format!("job line: {e}"))?),
    };
    let hists = match j.get("hists") {
        None => None,
        Some(h) => Some(hists_from_json(h).map_err(|e| format!("job line: {e}"))?),
    };
    Ok(JobRecord {
        job: usize::try_from(u64_field("job")?).map_err(|_| "job line: job overflows")?,
        cell_index: usize::try_from(u64_field("cell")?).map_err(|_| "job line: cell overflows")?,
        replication: u32::try_from(u64_field("replication")?)
            .map_err(|_| "job line: replication overflows")?,
        cell: Cell {
            algorithm,
            clients: u32::try_from(u64_field("clients")?)
                .map_err(|_| "job line: clients overflows")?,
            locality: f64_field("locality")?,
            prob_write: f64_field("write_prob")?,
        },
        summary: RunSummary {
            seed: u64_field("seed")?,
            resp_time_mean: f64_field("resp_s")?,
            throughput: f64_field("tput_tps")?,
            commits: u64_field("commits")?,
            aborts: u64_field("aborts")?,
        },
        snapshot,
        series,
        hists,
    })
}

/// What a parsed sweep document (either schema version) contains, for
/// consumers that do not need the full per-cell payload.
#[derive(Clone, Debug)]
pub struct SweepDocSummary {
    /// The document's schema tag ([`SWEEP_SCHEMA`] or
    /// [`SWEEP_SCHEMA_V1`]).
    pub schema: String,
    /// The reconstructed spec.
    pub spec: SweepSpec,
    /// Executed job count.
    pub jobs: u64,
    /// Number of cell entries.
    pub cells: usize,
    /// How many cells carry a merged `series` object (always 0 for v1).
    pub cells_with_series: usize,
}

/// Parse a rendered sweep document, accepting both `ccdb.sweep/v2` and
/// the older `ccdb.sweep/v1` (identical except that v1 never carries
/// `series` fields). The compatibility point for archived documents.
pub fn read_sweep_document(text: &str) -> Result<SweepDocSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("sweep document: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("sweep document: missing schema")?;
    if schema != SWEEP_SCHEMA && schema != SWEEP_SCHEMA_V1 {
        return Err(format!(
            "sweep document: schema {schema:?} is neither {SWEEP_SCHEMA} nor {SWEEP_SCHEMA_V1}"
        ));
    }
    let spec = spec_from_json(doc.get("spec").ok_or("sweep document: missing spec")?)?;
    let jobs = doc
        .get("jobs")
        .and_then(Json::as_u64)
        .ok_or("sweep document: missing jobs")?;
    let cells = doc
        .get("cells")
        .and_then(Json::items)
        .ok_or("sweep document: missing cells")?;
    let cells_with_series = cells.iter().filter(|c| c.get("series").is_some()).count();
    if schema == SWEEP_SCHEMA_V1 && cells_with_series > 0 {
        return Err("sweep document: a v1 document cannot carry series".to_string());
    }
    Ok(SweepDocSummary {
        schema: schema.to_string(),
        spec,
        jobs,
        cells: cells.len(),
        cells_with_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_sweep;
    use crate::spec::{Family, Replication, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    fn tiny() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![2],
            localities: vec![0.5],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        }
    }

    #[test]
    fn document_has_schema_spec_and_cells() {
        let result = run_sweep(&tiny(), 1, |_| {});
        let doc = sweep_document(&result).render();
        assert!(doc.starts_with(r#"{"schema":"ccdb.sweep/v2","spec":{"family":"short""#));
        assert!(doc.contains(r#""replication":{"mode":"fixed","replications":2}"#));
        assert!(doc.contains(r#""algorithm":"CB","clients":2"#));
        assert!(doc.contains(r#""metrics":{"#));
        assert!(doc.contains("server.cpu.util"));
        assert!(doc.contains(r#""txn.commits":"#));
        // A series-free spec emits no series fields at all.
        assert!(!doc.contains(r#""series""#));
        // Every cell carries its merged latency histograms.
        assert!(doc.contains(r#""hists":{"response":{"count":"#));
        assert!(doc.contains(r#""lock_wait":{"count":"#));
    }

    #[test]
    fn job_lines_carry_histograms_that_round_trip() {
        let mut lines = Vec::new();
        run_sweep(&tiny(), 1, |job| lines.push(job_line(job)));
        for line in &lines {
            assert!(line.contains(r#""hists":{"response":{"count":"#), "{line}");
            let parsed = job_from_json(&Json::parse(line).unwrap()).unwrap();
            let hists = parsed.hists.as_ref().expect("histograms present");
            assert_eq!(hists[0].0, "response");
            assert_eq!(hists[0].1.count(), parsed.summary.commits);
            assert_eq!(job_line(&parsed), *line);
        }
        // A pre-histogram line (field absent) parses to `hists: None`.
        let old = lines[0].replacen(r#","hists":{"#, r#","old_hists":{"#, 1);
        let parsed = job_from_json(&Json::parse(&old).unwrap()).unwrap();
        assert!(parsed.hists.is_none());
    }

    #[test]
    fn series_spec_exports_sampling_and_merged_series() {
        let spec = SweepSpec {
            series: Some(crate::spec::SeriesSampling {
                interval: SimDuration::from_secs(1),
                capacity: 8,
            }),
            ..tiny()
        };
        let mut lines = Vec::new();
        let result = run_sweep(&spec, 1, |job| lines.push(job_line(job)));
        let doc = sweep_document(&result).render();
        assert!(doc.contains(r#""series":{"interval_s":1,"capacity":8}"#));
        assert!(doc.contains(r#""series":{"replications":2,"interval_s":"#));
        assert!(doc.contains(r#""server.cpu.util":{"mean":["#));
        // Job lines carry the per-replication series and round-trip.
        for line in &lines {
            assert!(line.contains(r#""series":{"interval_s":"#), "{line}");
            let parsed = job_from_json(&Json::parse(line).unwrap()).unwrap();
            assert_eq!(job_line(&parsed), *line);
            assert!(parsed.series.is_some());
        }
        // And the reader sees the series cells.
        let summary = read_sweep_document(&doc).unwrap();
        assert_eq!(summary.schema, SWEEP_SCHEMA);
        assert_eq!(summary.cells_with_series, summary.cells);
        assert_eq!(summary.spec.series, spec.series);
    }

    #[test]
    fn reader_accepts_v1_documents() {
        let result = run_sweep(&tiny(), 1, |_| {});
        let doc = sweep_document(&result).render();
        // A v1 document is a series-free v2 document under the old tag.
        let v1 = doc.replace(r#""schema":"ccdb.sweep/v2""#, r#""schema":"ccdb.sweep/v1""#);
        let summary = read_sweep_document(&v1).unwrap();
        assert_eq!(summary.schema, SWEEP_SCHEMA_V1);
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.cells, 1);
        assert_eq!(summary.cells_with_series, 0);
        assert_eq!(
            spec_json(&summary.spec).render(),
            spec_json(&tiny()).render()
        );
    }

    #[test]
    fn reader_rejects_unknown_schemas_and_series_under_v1() {
        let result = run_sweep(&tiny(), 1, |_| {});
        let doc = sweep_document(&result).render();
        let unknown = doc.replace("ccdb.sweep/v2", "ccdb.sweep/v9");
        assert!(read_sweep_document(&unknown).is_err());
        assert!(read_sweep_document("{}").is_err());
        assert!(read_sweep_document("not json").is_err());
    }

    #[test]
    fn adaptive_spec_exports_its_rule() {
        let spec = SweepSpec {
            replication: Replication::Adaptive {
                min: 1,
                max: 2,
                target_rel_precision: 0.25,
            },
            ..tiny()
        };
        let result = run_sweep(&spec, 1, |_| {});
        let doc = sweep_document(&result).render();
        assert!(doc.contains(
            r#""replication":{"mode":"adaptive","min":1,"max":2,"target_rel_precision":0.25}"#
        ));
    }

    #[test]
    fn job_lines_are_parseable_v2_objects() {
        let mut lines = Vec::new();
        run_sweep(&tiny(), 1, |job| lines.push(job_line(job)));
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(
            r#"{"schema":"ccdb.job/v2","kind":"job","job":0,"cell":0,"replication":0,"algorithm":"CB""#
        ));
        assert!(lines[1].contains(r#""replication":1"#));
        for line in &lines {
            assert!(line.ends_with('}') && !line.contains('\n'));
            // The metrics snapshot rides along in the typed form.
            let doc = Json::parse(line).expect("job line parses");
            let metrics = doc.get("metrics").expect("metrics present");
            let snap = ccdb_obs::Snapshot::from_json(metrics).expect("typed snapshot");
            assert!(snap.get("txn.commits").is_some());
        }
    }

    #[test]
    fn job_lines_round_trip_bit_exactly() {
        let mut records = Vec::new();
        run_sweep(&tiny(), 1, |job| records.push(job.clone()));
        for rec in &records {
            let line = job_line(rec);
            let parsed = job_from_json(&Json::parse(&line).unwrap()).unwrap();
            assert_eq!(
                job_line(&parsed),
                line,
                "job {} re-renders exactly",
                rec.job
            );
            assert_eq!(parsed.summary, rec.summary);
            assert_eq!(parsed.cell, rec.cell);
        }
    }

    #[test]
    fn stream_frame_carries_spec_and_job_count() {
        let spec = tiny();
        let header = header_line(&spec, Some((2, 3)));
        let doc = Json::parse(&header).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("header"));
        assert_eq!(
            doc.get("spec_hash").unwrap().as_str(),
            Some(spec_hash(&spec).as_str())
        );
        assert_eq!(
            doc.get("shard").unwrap().items().unwrap()[1].as_u64(),
            Some(3)
        );
        // The embedded spec round-trips exactly.
        let parsed = spec_from_json(doc.get("spec").unwrap()).unwrap();
        assert_eq!(spec_json(&parsed).render(), spec_json(&spec).render());
        assert_eq!(spec_hash(&parsed), spec_hash(&spec));

        let footer = footer_line(&spec, 8);
        let doc = Json::parse(&footer).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("footer"));
        assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn spec_round_trips_for_scaled_and_adaptive_families() {
        // Interactive scales its measurement window 5x; the exported
        // horizon is the one that ran, and the reader undoes the scale.
        let spec = SweepSpec {
            replication: Replication::Adaptive {
                min: 2,
                max: 6,
                target_rel_precision: 0.1,
            },
            ..SweepSpec::new(Family::Interactive)
        };
        let rendered = spec_json(&spec).render();
        assert!(rendered.contains(r#""measure_scale":5"#));
        let parsed = spec_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed.measure, spec.measure);
        assert_eq!(parsed.warmup, spec.warmup);
        assert_eq!(spec_json(&parsed).render(), rendered);
    }

    #[test]
    fn spec_exports_the_horizon_that_ran() {
        // Pin `warmup_s`/`measure_s` against `config_for`: the exported
        // numbers must be what the simulations actually used — warm-up
        // unscaled, measurement window scaled by the family factor.
        for family in [Family::Short, Family::Interactive] {
            let spec = SweepSpec {
                warmup: SimDuration::from_secs(7),
                measure: SimDuration::from_secs(40),
                ..SweepSpec::new(family)
            };
            let cfg = spec.config_for(&spec.cells()[0], 0);
            let j = spec_json(&spec);
            assert_eq!(
                j.get("warmup_s").unwrap().as_f64().unwrap(),
                cfg.warmup.as_secs_f64(),
                "{family:?} warmup"
            );
            assert_eq!(
                j.get("measure_s").unwrap().as_f64().unwrap(),
                cfg.measure.as_secs_f64(),
                "{family:?} measure"
            );
        }
    }

    #[test]
    fn spec_from_json_rejects_contradictory_scale() {
        let spec = tiny();
        let mut rendered = spec_json(&spec).render();
        rendered = rendered.replace(r#""measure_scale":1"#, r#""measure_scale":3"#);
        assert!(spec_from_json(&Json::parse(&rendered).unwrap()).is_err());
    }
}
