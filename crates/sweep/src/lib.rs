//! # ccdb-sweep — experiment orchestration
//!
//! The paper's evaluation is a grid: algorithms × client populations ×
//! locality levels × write probabilities × replication seeds — hundreds
//! of independent simulations. This crate turns that grid into a
//! first-class object and runs it on every core:
//!
//! * [`SweepSpec`] / [`Family`] — declarative grids with builders for
//!   each experiment family of `ccdb_core::experiments`, expanded in a
//!   fixed deterministic order ([`SweepSpec::cells`]).
//! * [`run_indexed`] — a scoped `std::thread` worker pool (std-only),
//!   sized by `available_parallelism()` by default, that collects
//!   results **by job index**: since each simulation is a pure function
//!   of its configuration, sweep output is byte-identical for every
//!   worker count.
//! * [`run_sweep`] — wave-based execution with per-cell
//!   cross-replication merging ([`ccdb_core::ReplicationAccumulator`]
//!   for the statistics, [`ccdb_obs::SnapshotMerger`] for the metrics
//!   registry) and [`Replication::Adaptive`] precision-targeted
//!   replication.
//! * [`sweep_document`] / [`job_line`] — the versioned `ccdb.sweep/v2`
//!   JSON document and the streaming per-job `ccdb.job/v2` JSONL
//!   records (framed by [`header_line`] / [`footer_line`]);
//!   [`read_sweep_document`] reads both v2 and archived `ccdb.sweep/v1`
//!   documents.
//! * [`SeriesSampling`] — opt-in per-run time-series capture: each
//!   replication's adaptive [`ccdb_obs::SeriesSet`] rides its
//!   `ccdb.job/v2` record and folds per cell through
//!   [`ccdb_obs::SeriesMerger`] into the document's `series` objects.
//! * [`CheckpointWriter`] / [`parse_log`] / [`run_sweep_resumed`] — the
//!   JSONL stream doubles as a write-ahead log: a killed sweep resumes
//!   from its checkpoint file and produces a byte-identical document
//!   (opt-in [`CheckpointWriter::fsync_every`] hardens it against OS
//!   crashes).
//! * [`merge_logs`] — reconstruct one sweep from the union of disjoint
//!   per-shard streams (the two-machine workflow).
//! * [`figures_from_sweep`] — the paper's Figure 5–22 (and Table 4)
//!   CSV series, regenerated from sweep output alone, plus a
//!   [`dynamics_csv`] long-format export of the merged time series and
//!   a self-contained [`dynamics_svg`] plot of the same data
//!   (`ccdb figures --svg`).
//!
//! See `docs/sweep.md` for the schema and the determinism contract.

#![warn(missing_docs)]

mod checkpoint;
mod export;
mod figures;
mod merge;
mod run;
mod scheduler;
mod spec;
mod svg;

pub use checkpoint::{parse_log, read_log, CheckpointWriter, SweepLog};
pub use export::{
    footer_line, header_line, job_line, read_sweep_document, spec_hash, sweep_document,
    SweepDocSummary, JOB_SCHEMA, SWEEP_SCHEMA, SWEEP_SCHEMA_V1,
};
pub use figures::{
    dynamics_csv, figure_csv, figures_for, figures_from_sweep, FigureDef, FigureMetric,
};
pub use merge::{merge_logs, merge_logs_named};
pub use run::{
    run_sweep, run_sweep_resumed, run_sweep_sharded, CellReport, JobCache, JobRecord, RunSummary,
    SweepResult,
};
pub use scheduler::{default_workers, resolve_workers, run_indexed, run_indexed_catching};
pub use spec::{Cell, Family, Replication, SeriesSampling, SweepSpec};
pub use svg::dynamics_svg;
