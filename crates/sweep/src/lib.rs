//! # ccdb-sweep — experiment orchestration
//!
//! The paper's evaluation is a grid: algorithms × client populations ×
//! locality levels × write probabilities × replication seeds — hundreds
//! of independent simulations. This crate turns that grid into a
//! first-class object and runs it on every core:
//!
//! * [`SweepSpec`] / [`Family`] — declarative grids with builders for
//!   each experiment family of `ccdb_core::experiments`, expanded in a
//!   fixed deterministic order ([`SweepSpec::cells`]).
//! * [`run_indexed`] — a scoped `std::thread` worker pool (std-only),
//!   sized by `available_parallelism()` by default, that collects
//!   results **by job index**: since each simulation is a pure function
//!   of its configuration, sweep output is byte-identical for every
//!   worker count.
//! * [`run_sweep`] — wave-based execution with per-cell
//!   cross-replication merging ([`ccdb_core::ReplicationAccumulator`]
//!   for the statistics, [`ccdb_obs::SnapshotMerger`] for the metrics
//!   registry) and [`Replication::Adaptive`] precision-targeted
//!   replication.
//! * [`sweep_document`] / [`job_line`] — the versioned `ccdb.sweep/v1`
//!   JSON document and the streaming per-job JSONL records.
//! * [`figures_from_sweep`] — the paper's Figure 5–22 (and Table 4)
//!   CSV series, regenerated from sweep output alone.
//!
//! See `docs/sweep.md` for the schema and the determinism contract.

#![warn(missing_docs)]

mod export;
mod figures;
mod run;
mod scheduler;
mod spec;

pub use export::{job_line, sweep_document, SWEEP_SCHEMA};
pub use figures::{figure_csv, figures_for, figures_from_sweep, FigureDef, FigureMetric};
pub use run::{run_sweep, run_sweep_sharded, CellReport, JobRecord, RunSummary, SweepResult};
pub use scheduler::{default_workers, resolve_workers, run_indexed};
pub use spec::{Cell, Family, Replication, SweepSpec};
