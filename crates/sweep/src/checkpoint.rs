//! The JSONL stream as the sweep's write-ahead log.
//!
//! A `ccdb.job/v2` stream (header, job lines, footer — see
//! `crate::export`) contains everything needed to rebuild the sweep's
//! per-cell accumulator state, so a sweep that appends each job line
//! with a per-line write can be killed at any moment and resumed: parse
//! the surviving log ([`parse_log`]), hand the recovered records to
//! [`crate::run::run_sweep_resumed`], and only the missing jobs run.
//! The rebuilt document is byte-identical to an uninterrupted run.
//!
//! WAL discipline:
//!
//! * a record is **committed** once its trailing newline is on disk —
//!   each [`CheckpointWriter::record`] call is a single unbuffered
//!   write of `line + "\n"`, so a crash loses at most the in-flight
//!   line;
//! * a final line without a trailing newline is a torn write and is
//!   dropped on parse (its job simply re-runs); a *complete* line that
//!   fails to parse is mid-file corruption and a hard error;
//! * a footer marks the stream complete. On resume the footer (and any
//!   torn tail) is truncated away — [`SweepLog::resume_len`] is the
//!   byte length of the valid header-plus-job-records prefix — and new
//!   records are appended after it.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use ccdb_obs::Json;

use crate::export::{
    footer_line, header_line, job_from_json, job_line, spec_from_json, spec_hash, JOB_SCHEMA,
};
use crate::run::{JobCache, JobRecord};
use crate::spec::SweepSpec;

/// A parsed `ccdb.job/v2` stream: the spec it belongs to, the shard
/// slice it covers, and every committed job record.
#[derive(Clone, Debug)]
pub struct SweepLog {
    /// The spec reconstructed from the header.
    pub spec: SweepSpec,
    /// The header's spec hash (verified against `spec` during parsing).
    pub spec_hash: String,
    /// The shard slice the stream covers (`None` = whole grid).
    pub shard: Option<(u32, u32)>,
    /// Committed job records, keyed by global job index.
    pub records: JobCache,
    /// The footer's job count, if the stream is complete.
    pub footer_jobs: Option<usize>,
    /// Byte length of the valid prefix (header + job records, excluding
    /// any footer or torn trailing line). Resume truncates the file to
    /// this length before appending.
    pub resume_len: u64,
}

impl SweepLog {
    /// Whether the stream ran to completion (footer present).
    pub fn complete(&self) -> bool {
        self.footer_jobs.is_some()
    }
}

/// Parse a `ccdb.job/v2` stream.
///
/// Tolerates exactly the damage a killed writer can cause — a missing
/// footer and a torn final line. Everything else (no header, malformed
/// complete lines, duplicate job indices, records after the footer, a
/// header whose embedded spec contradicts its hash) is an error: the
/// log is not one this code wrote.
pub fn parse_log(text: &str) -> Result<SweepLog, String> {
    // Complete lines only: a trailing fragment without '\n' is a torn
    // write and is ignored (tracked byte offsets let resume truncate it).
    let mut lines: Vec<(u64, &str)> = Vec::new(); // (end offset incl. '\n', line)
    let mut start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            lines.push(((i + 1) as u64, &text[start..i]));
            start = i + 1;
        }
    }

    let mut iter = lines.into_iter();
    let (header_end, header) = iter
        .next()
        .ok_or("checkpoint log has no complete header line")?;
    let h = Json::parse(header).map_err(|e| format!("checkpoint header: {e}"))?;
    if h.get("schema").and_then(Json::as_str) != Some(JOB_SCHEMA) {
        return Err(format!("checkpoint header: schema is not {JOB_SCHEMA}"));
    }
    if h.get("kind").and_then(Json::as_str) != Some("header") {
        return Err("checkpoint log does not start with a header line".to_string());
    }
    let spec = spec_from_json(h.get("spec").ok_or("checkpoint header: missing spec")?)?;
    let recorded_hash = h
        .get("spec_hash")
        .and_then(Json::as_str)
        .ok_or("checkpoint header: missing spec_hash")?
        .to_string();
    if recorded_hash != spec_hash(&spec) {
        return Err(format!(
            "checkpoint header: spec_hash {recorded_hash} does not match the embedded spec \
             (expected {})",
            spec_hash(&spec)
        ));
    }
    let shard = match h.get("shard") {
        Some(Json::Null) => None,
        Some(arr) => {
            let items = arr.items().ok_or("checkpoint header: bad shard")?;
            let part = |ix: usize| {
                items
                    .get(ix)
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
            };
            match (items.len(), part(0), part(1)) {
                (2, Some(i), Some(n)) => Some((i, n)),
                _ => return Err("checkpoint header: bad shard".to_string()),
            }
        }
        None => return Err("checkpoint header: missing shard".to_string()),
    };

    let mut records = JobCache::new();
    let mut footer_jobs = None;
    let mut resume_len = header_end;
    for (end, line) in iter {
        let j = Json::parse(line).map_err(|e| format!("checkpoint record: {e}"))?;
        if footer_jobs.is_some() {
            return Err("checkpoint log has records after the footer".to_string());
        }
        match j.get("kind").and_then(Json::as_str) {
            Some("job") => {
                let rec = job_from_json(&j)?;
                let job = rec.job;
                if records.insert(job, rec).is_some() {
                    return Err(format!("checkpoint log repeats job {job}"));
                }
                resume_len = end;
            }
            Some("footer") => {
                if j.get("spec_hash").and_then(Json::as_str) != Some(recorded_hash.as_str()) {
                    return Err("checkpoint footer: spec_hash differs from header".to_string());
                }
                let jobs = j
                    .get("jobs")
                    .and_then(Json::as_u64)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or("checkpoint footer: missing jobs")?;
                footer_jobs = Some(jobs);
            }
            Some("header") => {
                return Err("checkpoint log has a second header line".to_string());
            }
            _ => return Err("checkpoint record: missing or unknown kind".to_string()),
        }
    }

    Ok(SweepLog {
        spec,
        spec_hash: recorded_hash,
        shard,
        records,
        footer_jobs,
        resume_len,
    })
}

/// Read and parse a stream from disk.
pub fn read_log(path: &Path) -> Result<SweepLog, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_log(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Appends `ccdb.job/v2` lines to a file with WAL discipline: one
/// unbuffered write per line, newline included, so every call commits
/// its record or (on a crash mid-write) leaves a torn tail the parser
/// drops.
///
/// By default the writer never calls `fsync`: a process kill loses at
/// most the in-flight line, which is the failure mode the WAL covers.
/// Surviving an OS crash or power loss additionally needs the data
/// flushed from the page cache — opt in with
/// [`fsync_every`](CheckpointWriter::fsync_every).
pub struct CheckpointWriter {
    file: File,
    /// `fsync` after every N records (0 = never).
    fsync_every: u64,
    /// Records committed since the last sync.
    unsynced: u64,
}

impl CheckpointWriter {
    /// Start a fresh log: truncate `path` and write the header line.
    pub fn create(
        path: &Path,
        spec: &SweepSpec,
        shard: Option<(u32, u32)>,
    ) -> std::io::Result<CheckpointWriter> {
        let mut file = File::create(path)?;
        file.write_all(format!("{}\n", header_line(spec, shard)).as_bytes())?;
        Ok(CheckpointWriter {
            file,
            fsync_every: 0,
            unsynced: 0,
        })
    }

    /// Reopen an interrupted log for appending: truncate to `keep_len`
    /// (the parsed [`SweepLog::resume_len`] — drops the footer and any
    /// torn tail) and position at the end.
    pub fn append(path: &Path, keep_len: u64) -> std::io::Result<CheckpointWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(keep_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(CheckpointWriter {
            file,
            fsync_every: 0,
            unsynced: 0,
        })
    }

    /// Flush to stable storage (`fsync`) after every `n` committed
    /// records, and once more at [`finish`](CheckpointWriter::finish).
    /// `n = 0` restores the default (no syncing). See docs/sweep.md for
    /// the measured cost.
    pub fn fsync_every(mut self, n: u64) -> CheckpointWriter {
        self.fsync_every = n;
        self
    }

    /// Commit one job record.
    pub fn record(&mut self, job: &JobRecord) -> std::io::Result<()> {
        self.file
            .write_all(format!("{}\n", job_line(job)).as_bytes())?;
        if self.fsync_every > 0 {
            self.unsynced += 1;
            if self.unsynced >= self.fsync_every {
                self.file.sync_data()?;
                self.unsynced = 0;
            }
        }
        Ok(())
    }

    /// Write the footer, marking the stream complete (synced when
    /// `fsync_every` is active).
    pub fn finish(mut self, spec: &SweepSpec, jobs: usize) -> std::io::Result<()> {
        self.file
            .write_all(format!("{}\n", footer_line(spec, jobs)).as_bytes())?;
        if self.fsync_every > 0 {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_sweep;
    use crate::spec::{Family, Replication, SweepSpec};
    use ccdb_core::Algorithm;
    use ccdb_des::SimDuration;

    fn tiny() -> SweepSpec {
        SweepSpec {
            algorithms: vec![Algorithm::Callback],
            clients: vec![2],
            localities: vec![0.5],
            write_probs: vec![0.2],
            warmup: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(8),
            replication: Replication::Fixed(2),
            ..SweepSpec::new(Family::Short)
        }
    }

    fn full_log(spec: &SweepSpec) -> String {
        let mut text = format!("{}\n", header_line(spec, None));
        let result = run_sweep(spec, 1, |job| {
            text.push_str(&job_line(job));
            text.push('\n');
        });
        text.push_str(&footer_line(spec, result.jobs));
        text.push('\n');
        text
    }

    #[test]
    fn complete_log_round_trips() {
        let spec = tiny();
        let text = full_log(&spec);
        let log = parse_log(&text).unwrap();
        assert!(log.complete());
        assert_eq!(log.footer_jobs, Some(2));
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.spec_hash, spec_hash(&spec));
        assert_eq!(log.shard, None);
        // resume_len ends after the last job record, before the footer.
        let footer = format!("{}\n", footer_line(&spec, 2));
        assert_eq!(log.resume_len as usize, text.len() - footer.len());
    }

    #[test]
    fn torn_tail_and_missing_footer_are_tolerated() {
        let spec = tiny();
        let text = full_log(&spec);
        // Cut mid-way through the second job line: the first job
        // survives, the torn line is dropped.
        let second_line_start = {
            let header_end = text.find('\n').unwrap() + 1;
            text[header_end..].find('\n').unwrap() + header_end + 1
        };
        let cut = &text[..second_line_start + 10];
        let log = parse_log(cut).unwrap();
        assert!(!log.complete());
        assert_eq!(log.records.len(), 1);
        assert!(log.records.contains_key(&0));
        assert_eq!(log.resume_len as usize, second_line_start);
    }

    #[test]
    fn header_only_parses_with_no_records() {
        let spec = tiny();
        let text = format!("{}\n", header_line(&spec, Some((2, 3))));
        let log = parse_log(&text).unwrap();
        assert_eq!(log.shard, Some((2, 3)));
        assert!(log.records.is_empty());
        assert_eq!(log.resume_len as usize, text.len());
    }

    #[test]
    fn corruption_is_rejected() {
        let spec = tiny();
        let text = full_log(&spec);
        // No header.
        assert!(parse_log("").is_err());
        assert!(parse_log("{\"schema\":\"nope\"}\n").is_err());
        // A complete but malformed middle line is corruption, not a torn
        // tail.
        let lines: Vec<&str> = text.lines().collect();
        let corrupted = format!("{}\n{}\n{}\n", lines[0], "{broken", lines[2]);
        assert!(parse_log(&corrupted).is_err());
        // Duplicate job index.
        let dup = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[1]);
        let err = parse_log(&dup).unwrap_err();
        assert!(err.contains("repeats job 0"), "{err}");
        // Records after the footer.
        let after = format!("{}\n{}\n{}\n", lines[0], lines[3], lines[1]);
        assert!(parse_log(&after).is_err());
        // Tampered hash.
        let bad_hash = text.replacen(&spec_hash(&spec), "0000000000000000", 1);
        assert!(parse_log(&bad_hash).is_err());
    }

    #[test]
    fn writer_create_append_finish_round_trip() {
        let spec = tiny();
        let dir = std::env::temp_dir().join("ccdb-checkpoint-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("writer-roundtrip.jsonl");

        let mut records = Vec::new();
        let result = run_sweep(&spec, 1, |job| records.push(job.clone()));

        // Write header + first record, simulate a crash (drop without
        // footer), then resume: truncate to the parsed prefix, append the
        // rest, finish.
        let mut w = CheckpointWriter::create(&path, &spec, None).unwrap();
        w.record(&records[0]).unwrap();
        drop(w);
        let log = read_log(&path).unwrap();
        assert!(!log.complete());
        assert_eq!(log.records.len(), 1);

        let mut w = CheckpointWriter::append(&path, log.resume_len).unwrap();
        w.record(&records[1]).unwrap();
        w.finish(&spec, result.jobs).unwrap();

        let final_log = read_log(&path).unwrap();
        assert!(final_log.complete());
        assert_eq!(final_log.records.len(), 2);
        // And the file is byte-identical to an uninterrupted log.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), full_log(&spec));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_every_writes_identical_bytes() {
        let spec = tiny();
        let dir = std::env::temp_dir().join("ccdb-checkpoint-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fsync-roundtrip.jsonl");

        let mut records = Vec::new();
        let result = run_sweep(&spec, 1, |job| records.push(job.clone()));
        let mut w = CheckpointWriter::create(&path, &spec, None)
            .unwrap()
            .fsync_every(1);
        for rec in &records {
            w.record(rec).unwrap();
        }
        w.finish(&spec, result.jobs).unwrap();
        // Durability is an I/O property; the bytes are unchanged.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), full_log(&spec));
        std::fs::remove_file(&path).ok();
    }
}
