//! Declarative sweep grids: which experiment family, which axes, how
//! many replications — expanded into a deterministic cell list.

use ccdb_core::experiments;
use ccdb_core::{Algorithm, SimConfig};
use ccdb_des::SimDuration;

/// The paper's experiment families (§4 verification and §5 experiments),
/// each mapping one grid cell to a [`SimConfig`] via the builders in
/// [`ccdb_core::experiments`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Table 4: the ACL comparison. The `clients` axis is interpreted as
    /// the server MPL (the experiment runs a fixed terminal population).
    Acl,
    /// Figures 5–7: intra vs inter caching (§4 verification).
    Caching,
    /// Figures 8–13: short transactions, server-bound (§5.1).
    Short,
    /// Figures 14–15: large transactions (§5.2).
    Large,
    /// Figures 16–17: 20 MIPS server (§5.3).
    FastServer,
    /// Figures 18–21: 20 MIPS server + zero network delay (§5.4).
    FastNet,
    /// Figure 22: interactive transactions (§5.5).
    Interactive,
}

impl Family {
    /// Every family, in paper order.
    pub const ALL: [Family; 7] = [
        Family::Acl,
        Family::Caching,
        Family::Short,
        Family::Large,
        Family::FastServer,
        Family::FastNet,
        Family::Interactive,
    ];

    /// The CLI name (`--exp` value) of this family.
    pub fn label(self) -> &'static str {
        match self {
            Family::Acl => "acl",
            Family::Caching => "caching",
            Family::Short => "short",
            Family::Large => "large",
            Family::FastServer => "fast-server",
            Family::FastNet => "fast-net",
            Family::Interactive => "interactive",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.label() == s)
    }

    /// The algorithms the paper compares in this family.
    pub fn default_algorithms(self) -> Vec<Algorithm> {
        match self {
            Family::Acl => vec![
                Algorithm::TwoPhase { inter: true },
                Algorithm::Certification { inter: true },
            ],
            Family::Caching => experiments::CACHING_ALGORITHMS.to_vec(),
            _ => experiments::SECTION5_ALGORITHMS.to_vec(),
        }
    }

    /// Measurement-window scale factor: interactive transactions take
    /// ~56 s each, so their window is stretched (the bench harnesses use
    /// the same factor).
    pub fn measure_scale(self) -> u64 {
        match self {
            Family::Interactive => 5,
            _ => 1,
        }
    }

    /// The configuration of one grid cell (without seed or horizon).
    pub fn build(self, alg: Algorithm, clients: u32, locality: f64, prob_write: f64) -> SimConfig {
        match self {
            Family::Acl => experiments::acl_verification(alg, clients),
            Family::Caching => {
                experiments::caching_verification(alg, clients, locality, prob_write)
            }
            Family::Short => experiments::short_txn(alg, clients, locality, prob_write),
            Family::Large => experiments::large_txn(alg, clients, locality, prob_write),
            Family::FastServer => experiments::fast_server(alg, clients, locality, prob_write),
            Family::FastNet => {
                experiments::fast_net_fast_server(alg, clients, locality, prob_write)
            }
            Family::Interactive => experiments::interactive(alg, clients, locality, prob_write),
        }
    }
}

/// How many replications each cell runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Replication {
    /// Exactly `n` replications per cell.
    Fixed(u32),
    /// Start with `min` replications, then add one at a time until the
    /// response-time CI half-width falls to `target_rel_precision` of the
    /// mean (see `ReplicationAggregate::resp_relative_precision`) or
    /// `max` replications have run.
    Adaptive {
        /// Replications every cell runs before the rule is consulted.
        min: u32,
        /// Hard cap per cell.
        max: u32,
        /// Stop once `ci95 / mean` is at or below this.
        target_rel_precision: f64,
    },
}

impl Replication {
    /// Replications every cell runs in the first wave (always ≥ 1).
    pub fn initial(self) -> u32 {
        match self {
            Replication::Fixed(n) => n.max(1),
            Replication::Adaptive { min, .. } => min.max(1),
        }
    }

    /// The stopping rule: given `done` completed replications with the
    /// current relative precision, should another replication run?
    pub fn needs_more(self, done: u32, rel_precision: f64) -> bool {
        match self {
            Replication::Fixed(n) => done < n.max(1),
            Replication::Adaptive {
                min,
                max,
                target_rel_precision,
            } => {
                if done < min.max(1) {
                    true
                } else if done >= max {
                    false
                } else {
                    rel_precision > target_rel_precision
                }
            }
        }
    }
}

/// Per-replication time-series sampling for every cell of a sweep.
///
/// The interval is the *starting* interval of the adaptive sampler: a
/// run longer than `interval * capacity` doubles it (folding retained
/// samples pairwise) as often as needed, so memory stays bounded and
/// nothing is dropped. The fold schedule depends only on these two
/// values and the horizon, so every replication of a cell samples on the
/// same grid and merges exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesSampling {
    /// Starting sample interval (simulated time).
    pub interval: SimDuration,
    /// Retained points per metric (at least 3).
    pub capacity: usize,
}

/// One grid cell: an algorithm at one point of the (clients, locality,
/// write probability) axes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    /// The concurrency-control algorithm.
    pub algorithm: Algorithm,
    /// Client population (MPL for [`Family::Acl`]).
    pub clients: u32,
    /// Inter-transaction locality.
    pub locality: f64,
    /// Write probability.
    pub prob_write: f64,
}

/// A declarative experiment grid: family × algorithms × clients ×
/// localities × write probabilities, plus seeding, horizon, and the
/// replication policy. Expansion order is fixed (locality, then write
/// probability, then algorithm, then clients) so job lists — and
/// therefore exports — are deterministic.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Which experiment family builds the configurations.
    pub family: Family,
    /// Algorithms to compare.
    pub algorithms: Vec<Algorithm>,
    /// Client populations (MPLs for [`Family::Acl`]).
    pub clients: Vec<u32>,
    /// Locality levels.
    pub localities: Vec<f64>,
    /// Write probabilities.
    pub write_probs: Vec<f64>,
    /// Base seed; replication `k` of every cell runs with seed
    /// `seed + k` (the [`ccdb_core::replication_seed`] convention).
    pub seed: u64,
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window (scaled by [`Family::measure_scale`]).
    pub measure: SimDuration,
    /// Replication policy.
    pub replication: Replication,
    /// Per-replication time-series sampling; `None` (the default) keeps
    /// sweeps series-free and their documents on the v1 shape.
    pub series: Option<SeriesSampling>,
}

impl SweepSpec {
    /// A single-cell-axis spec with the family's default algorithms, the
    /// paper's client sweep, and one replication per cell.
    pub fn new(family: Family) -> SweepSpec {
        let (localities, write_probs) = match family {
            // Table 4 fixes workload parameters; record the actual values
            // so exports stay truthful, but the axes do not vary.
            Family::Acl => {
                let probe = SimConfig::table4_acl(Algorithm::TwoPhase { inter: true });
                (vec![probe.txn.inter_xact_loc], vec![probe.txn.prob_write])
            }
            Family::Caching => (vec![0.05, 0.50], vec![0.0, 0.2, 0.5]),
            Family::Short => (
                experiments::LOCALITY_LEVELS.to_vec(),
                experiments::WRITE_PROBS.to_vec(),
            ),
            Family::Large | Family::FastServer | Family::FastNet => {
                (vec![0.25, 0.75], vec![0.2, 0.5])
            }
            Family::Interactive => (vec![0.25], vec![0.0, 0.5]),
        };
        let clients = match family {
            Family::Acl => experiments::ACL_MPL_SWEEP.to_vec(),
            _ => experiments::CLIENT_SWEEP.to_vec(),
        };
        SweepSpec {
            family,
            algorithms: family.default_algorithms(),
            clients,
            localities,
            write_probs,
            seed: 0xCCDB,
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(300),
            replication: Replication::Fixed(1),
            series: None,
        }
    }

    /// Expand the grid into cells, in the fixed deterministic order:
    /// locality (outermost), write probability, algorithm, clients.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::with_capacity(
            self.localities.len()
                * self.write_probs.len()
                * self.algorithms.len()
                * self.clients.len(),
        );
        for &locality in &self.localities {
            for &prob_write in &self.write_probs {
                for &algorithm in &self.algorithms {
                    for &clients in &self.clients {
                        cells.push(Cell {
                            algorithm,
                            clients,
                            locality,
                            prob_write,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The full configuration of replication `k` of `cell`.
    pub fn config_for(&self, cell: &Cell, k: u32) -> SimConfig {
        self.family
            .build(cell.algorithm, cell.clients, cell.locality, cell.prob_write)
            .with_seed(ccdb_core::replication_seed(self.seed, k))
            .with_horizon(self.warmup, self.measure * self.family.measure_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.label()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn expansion_order_is_locality_pw_algorithm_clients() {
        let spec = SweepSpec {
            algorithms: vec![Algorithm::TwoPhase { inter: true }, Algorithm::Callback],
            clients: vec![2, 10],
            localities: vec![0.25, 0.75],
            write_probs: vec![0.0, 0.5],
            ..SweepSpec::new(Family::Short)
        };
        let cells = spec.cells();
        assert_eq!(cells.len(), 16);
        // First block: loc 0.25, pw 0.0, C2PL, clients 2 then 10.
        assert_eq!(cells[0].locality, 0.25);
        assert_eq!(cells[0].prob_write, 0.0);
        assert_eq!(cells[0].algorithm, Algorithm::TwoPhase { inter: true });
        assert_eq!((cells[0].clients, cells[1].clients), (2, 10));
        assert_eq!(cells[2].algorithm, Algorithm::Callback);
        // Write prob advances before locality.
        assert_eq!(cells[4].prob_write, 0.5);
        assert_eq!(cells[4].locality, 0.25);
        assert_eq!(cells[8].locality, 0.75);
    }

    #[test]
    fn default_specs_validate_and_scale() {
        for family in Family::ALL {
            let spec = SweepSpec::new(family);
            assert!(!spec.cells().is_empty(), "{family:?} grid empty");
            for cell in spec.cells().iter().take(2) {
                let cfg = spec.config_for(cell, 1);
                cfg.validate();
                assert_eq!(cfg.seed, spec.seed.wrapping_add(1));
                assert_eq!(cfg.measure, spec.measure * family.measure_scale());
            }
        }
    }

    #[test]
    fn acl_clients_axis_sets_mpl() {
        let spec = SweepSpec::new(Family::Acl);
        let cell = Cell {
            algorithm: Algorithm::TwoPhase { inter: true },
            clients: 75,
            locality: spec.localities[0],
            prob_write: spec.write_probs[0],
        };
        assert_eq!(spec.config_for(&cell, 0).sys.mpl, 75);
    }

    #[test]
    fn fixed_replication_stopping_rule() {
        let r = Replication::Fixed(3);
        assert_eq!(r.initial(), 3);
        assert!(r.needs_more(2, 1.0));
        assert!(!r.needs_more(3, 1.0));
        // Fixed(0) degrades to one replication rather than zero work.
        assert_eq!(Replication::Fixed(0).initial(), 1);
        assert!(!Replication::Fixed(0).needs_more(1, 1.0));
    }

    #[test]
    fn adaptive_replication_stopping_rule() {
        let r = Replication::Adaptive {
            min: 2,
            max: 5,
            target_rel_precision: 0.1,
        };
        assert_eq!(r.initial(), 2);
        // Below min: always continue, even if precision looks good.
        assert!(r.needs_more(1, 0.0));
        // Between min and max: continue only while above target.
        assert!(r.needs_more(2, 0.3));
        assert!(!r.needs_more(2, 0.1));
        assert!(!r.needs_more(3, 0.05));
        // At or past max: stop regardless of precision.
        assert!(!r.needs_more(5, 0.9));
        assert!(!r.needs_more(6, 0.9));
    }
}
