//! # ccdb-net — the network manager (paper §3.3.1)
//!
//! Messages between clients and the server are broken into packets of at
//! most `PacketSize` bytes. Every packet costs `MsgCost` instructions of
//! CPU at both the sending and the receiving site, and an exponentially
//! distributed delay (mean `NetDelay`) on the shared FCFS network.
//!
//! [`NetworkNode`] couples a CPU facility with a station identity;
//! [`Network::send`] runs the full pipeline — sender CPU, network, receiver
//! CPU — as a background delivery process and finally deposits the message
//! into the destination mailbox, so a sender is never blocked by delivery
//! (asynchronous sends are what no-wait locking and callbacks rely on; a
//! synchronous request simply awaits the reply mailbox).
//!
//! The per-packet service draws are the message's *send part*: a service
//! task (`Env::spawn_service`) computes the whole packet train's schedule
//! from the message's own split RNG stream, off-thread when `--kernel-jobs`
//! opens the parallel dispatch window, and the delivery process merely
//! replays that schedule against the FCFS medium.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;

use ccdb_des::{Env, Facility, Mailbox, Pcg32, SimDuration, WaitClass};
use ccdb_model::SystemParams;

pub use ccdb_des::{CpuGuard, CpuPool, PoolAcquire};

/// One end of the network: a station with CPUs and an inbox.
pub struct NetworkNode<T> {
    /// The station's CPU pool (also used to charge page-processing
    /// costs by the client/server runtimes).
    pub cpu: CpuPool,
    /// CPU speed in MIPS.
    pub mips: f64,
    /// Incoming messages.
    pub inbox: Mailbox<T>,
}

impl<T> Clone for NetworkNode<T> {
    fn clone(&self) -> Self {
        NetworkNode {
            cpu: self.cpu.clone(),
            mips: self.mips,
            inbox: self.inbox.clone(),
        }
    }
}

impl<T> NetworkNode<T> {
    /// Create a station with `n_cpus` CPUs at `mips`; queueing for the
    /// CPUs is attributed to `class`.
    pub fn new(
        env: &Env,
        name: impl Into<String>,
        n_cpus: u32,
        mips: f64,
        class: WaitClass,
    ) -> Self {
        NetworkNode {
            cpu: CpuPool::new(env, name, n_cpus, class),
            mips,
            inbox: Mailbox::new(env),
        }
    }

    /// Charge `instructions` of CPU work (queues FCFS on the CPUs).
    pub async fn charge_cpu(&self, instructions: u64) {
        if instructions == 0 {
            return;
        }
        self.cpu
            .use_for(SimDuration::from_instructions(instructions, self.mips))
            .await;
    }
}

/// Per-network statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Messages sent.
    pub messages: u64,
    /// Packets transferred.
    pub packets: u64,
    /// Payload bytes carried.
    pub bytes: u64,
}

struct NetInner {
    rng: Pcg32,
    stats: NetStats,
}

/// The shared FCFS network.
#[derive(Clone)]
pub struct Network {
    env: Env,
    medium: Facility,
    msg_cost: u64,
    packet_size: u32,
    net_delay: SimDuration,
    inner: Rc<RefCell<NetInner>>,
}

impl Network {
    /// Build the network from the system parameters.
    pub fn new(env: &Env, params: &SystemParams, rng: Pcg32) -> Self {
        Network {
            env: env.clone(),
            medium: Facility::new(env, "network", 1).with_wait_class(WaitClass::Network),
            msg_cost: params.msg_cost,
            packet_size: params.packet_size,
            net_delay: params.net_delay,
            inner: Rc::new(RefCell::new(NetInner {
                rng,
                stats: NetStats::default(),
            })),
        }
    }

    /// Statistics counters.
    pub fn stats(&self) -> NetStats {
        self.inner.borrow().stats
    }

    /// Network medium utilisation.
    pub fn utilization(&self) -> f64 {
        self.medium.utilization()
    }

    /// The shared medium facility (reports and sampling).
    pub fn medium(&self) -> &Facility {
        &self.medium
    }

    /// Register the medium's gauges (`net.util`, `net.qlen`) and traffic
    /// counters (`net.messages`, `net.packets`, `net.bytes`).
    pub fn register_metrics(&self, registry: &ccdb_obs::Registry) {
        registry.facility("net", &self.medium);
        let this = self.clone();
        registry.counter_fn("net.messages", move || this.stats().messages);
        let this = self.clone();
        registry.counter_fn("net.packets", move || this.stats().packets);
        let this = self.clone();
        registry.counter_fn("net.bytes", move || this.stats().bytes);
    }

    /// Reset medium statistics (end of warm-up).
    pub fn reset_stats(&self) {
        self.medium.reset_stats();
    }

    /// Packets for a payload of `bytes`.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.packet_size as u64)
        }
    }

    /// Send `msg` with a `payload_bytes` body from `from` to `to`.
    ///
    /// Returns immediately. The message's per-packet exponential service
    /// draws are computed by a service task on its own split RNG stream
    /// (stream id = the message's submission index), so same-instant sends
    /// pre-step in parallel on the dispatch window; the task's commit hook
    /// then spawns the delivery process — sender CPU, per-packet FCFS
    /// network occupancy from the precomputed schedule, receiver CPU,
    /// mailbox deposit — so a sender is never blocked by delivery. Message
    /// ordering between the same pair of stations is preserved only as far
    /// as the FCFS facilities enforce it, exactly as in the paper's model.
    pub fn send<S, R>(&self, from: &NetworkNode<S>, to: &NetworkNode<R>, msg: R, payload_bytes: u64)
    where
        S: 'static,
        R: 'static,
    {
        let packets = self.packets_for(payload_bytes);
        let mut msg_rng = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.messages += 1;
            inner.stats.packets += packets;
            inner.stats.bytes += payload_bytes;
            // Split at submission: the parent draw happens here, in the
            // deterministic serial order of send() calls, and the packet
            // draws below consume only the message's own stream.
            let ix = inner.stats.messages;
            inner.rng.split(ix)
        };
        let this = self.clone();
        let sender_cpu = from.cpu.clone();
        let sender_mips = from.mips;
        let receiver_cpu = to.cpu.clone();
        let receiver_mips = to.mips;
        let dest = to.inbox.clone();
        let net_delay = self.net_delay;
        self.env.spawn_service(
            // Send part: the packet train's service-time schedule.
            move |_now| {
                (0..packets)
                    .map(|_| msg_rng.exp_duration(net_delay))
                    .collect::<Vec<SimDuration>>()
            },
            // Serial commit: spawn the delivery process with the schedule.
            move |env, schedule| {
                env.spawn(async move {
                    // Sender CPU cost for all packets of the message.
                    if this.msg_cost > 0 {
                        sender_cpu
                            .use_for(SimDuration::from_instructions(
                                this.msg_cost * packets,
                                sender_mips,
                            ))
                            .await;
                    }
                    // Each packet occupies the network for its drawn service
                    // time. A zero draw still passes through the facility
                    // queue: a zero-cost packet waits its FCFS turn behind
                    // packets already in flight rather than jumping ahead.
                    for service in schedule {
                        this.medium.use_for(service).await;
                    }
                    // Receiver CPU cost.
                    if this.msg_cost > 0 {
                        receiver_cpu
                            .use_for(SimDuration::from_instructions(
                                this.msg_cost * packets,
                                receiver_mips,
                            ))
                            .await;
                    }
                    dest.send(msg);
                });
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_des::{Sim, SimTime};
    use std::cell::Cell;

    fn setup(
        net_delay_ms: u64,
        msg_cost: u64,
    ) -> (
        Sim,
        Network,
        NetworkNode<&'static str>,
        NetworkNode<&'static str>,
    ) {
        let sim = Sim::new();
        let env = sim.env();
        let mut params = SystemParams::table5();
        params.net_delay = SimDuration::from_millis(net_delay_ms);
        params.msg_cost = msg_cost;
        let net = Network::new(&env, &params, Pcg32::new(1, 1));
        let client = NetworkNode::new(&env, "client-cpu", 1, 1.0, WaitClass::ClientCpu);
        let server = NetworkNode::new(&env, "server-cpu", 1, 2.0, WaitClass::Cpu);
        (sim, net, client, server)
    }

    #[test]
    fn message_arrives_with_cpu_costs() {
        let (sim, net, client, server) = setup(0, 5_000);
        let at = Rc::new(Cell::new(SimTime::ZERO));
        {
            let server = server.clone();
            let env = sim.env();
            let at = Rc::clone(&at);
            sim.spawn(async move {
                let _ = server.inbox.recv().await;
                at.set(env.now());
            });
        }
        net.send(&client, &server, "req", 0);
        sim.run();
        // 5000 instr at 1 MIPS (5ms) + 5000 at 2 MIPS (2.5ms), no net delay.
        assert_eq!(at.get(), SimTime::from_nanos(7_500_000));
        assert_eq!(net.stats().messages, 1);
        assert_eq!(net.stats().packets, 1);
    }

    #[test]
    fn large_message_splits_into_packets() {
        let (sim, net, client, server) = setup(0, 1_000);
        {
            let server = server.clone();
            sim.spawn(async move {
                let _ = server.inbox.recv().await;
            });
        }
        // 3 pages of 4096 bytes = 3 packets.
        net.send(&client, &server, "pages", 3 * 4096);
        sim.run();
        assert_eq!(net.stats().packets, 3);
        assert_eq!(net.stats().bytes, 3 * 4096);
        // Sender 3*1000 instr at 1 MIPS = 3ms; receiver 1.5ms.
        assert_eq!(sim.now(), SimTime::from_nanos(4_500_000));
    }

    #[test]
    fn network_is_a_shared_fcfs_resource() {
        let (sim, net, client, server) = setup(2, 0);
        let got = Rc::new(Cell::new(0u32));
        {
            let server = server.clone();
            let got = Rc::clone(&got);
            sim.spawn(async move {
                for _ in 0..20 {
                    let _ = server.inbox.recv().await;
                    got.set(got.get() + 1);
                }
            });
        }
        for _ in 0..20 {
            net.send(&client, &server, "m", 100);
        }
        sim.run();
        assert_eq!(got.get(), 20);
        // 20 packets with mean 2ms exponential service serialised: the
        // total elapsed is the sum of the service draws, so well above a
        // single delay and the medium shows contention.
        assert!(sim.now() > SimTime::from_nanos(10_000_000));
        assert_eq!(net.stats().packets, 20);
    }

    #[test]
    fn zero_delay_zero_cost_is_instant() {
        let (sim, net, client, server) = setup(0, 0);
        let at = Rc::new(Cell::new(SimTime::from_nanos(99)));
        {
            let server = server.clone();
            let env = sim.env();
            let at = Rc::clone(&at);
            sim.spawn(async move {
                let _ = server.inbox.recv().await;
                at.set(env.now());
            });
        }
        net.send(&client, &server, "free", 4096);
        sim.run();
        assert_eq!(at.get(), SimTime::ZERO);
    }

    #[test]
    fn zero_service_packets_wait_their_fcfs_turn() {
        // Regression: a zero exponential draw used to skip the medium
        // entirely, letting a zero-cost packet jump ahead of queued ones.
        let (sim, net, client, server) = setup(0, 0);
        {
            // Occupy the medium for 5ms starting at t=0, before the send.
            let net = net.clone();
            sim.spawn(async move {
                net.medium().use_for(SimDuration::from_millis(5)).await;
            });
        }
        let at = Rc::new(Cell::new(SimTime::ZERO));
        {
            let server = server.clone();
            let env = sim.env();
            let at = Rc::clone(&at);
            sim.spawn(async move {
                let _ = server.inbox.recv().await;
                at.set(env.now());
            });
        }
        net.send(&client, &server, "queued", 0);
        sim.run();
        assert_eq!(
            at.get(),
            SimTime::from_nanos(5_000_000),
            "zero-service packet must queue FCFS behind the busy medium"
        );
    }

    #[test]
    fn packet_trains_are_identical_for_any_job_count() {
        // The send part runs on the window: the delivery timeline must not
        // depend on how many workers stepped it.
        let run = |jobs: usize| {
            let (sim, net, client, server) = setup(2, 1_000);
            sim.set_dispatch_jobs(jobs);
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            {
                let server = server.clone();
                let env = sim.env();
                let arrivals = Rc::clone(&arrivals);
                sim.spawn(async move {
                    for _ in 0..30 {
                        let _ = server.inbox.recv().await;
                        arrivals.borrow_mut().push(env.now().as_nanos());
                    }
                });
            }
            for i in 0..30u64 {
                net.send(&client, &server, "m", 100 * (i % 5));
            }
            sim.run();
            (
                sim.now(),
                sim.events_processed(),
                Rc::try_unwrap(arrivals).unwrap().into_inner(),
            )
        };
        let serial = run(1);
        for jobs in [2, 4] {
            assert_eq!(run(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn register_metrics_exposes_medium_and_counters() {
        let (sim, net, client, server) = setup(2, 0);
        let reg = ccdb_obs::Registry::new();
        net.register_metrics(&reg);
        assert_eq!(
            reg.names(),
            vec![
                "net.util",
                "net.qlen",
                "net.messages",
                "net.packets",
                "net.bytes"
            ]
        );
        {
            let server = server.clone();
            sim.spawn(async move {
                let _ = server.inbox.recv().await;
            });
        }
        net.send(&client, &server, "m", 100);
        sim.run();
        let vals = reg.read_all();
        assert_eq!(vals[2], 1.0, "one message");
        assert_eq!(vals[3], 1.0, "one packet");
        assert_eq!(vals[4], 100.0, "payload bytes");
        assert_eq!(vals[0], net.utilization());
    }

    #[test]
    fn charge_cpu_scales_with_mips() {
        let sim = Sim::new();
        let env = sim.env();
        let node: NetworkNode<()> = NetworkNode::new(&env, "cpu", 1, 2.0, WaitClass::Cpu);
        {
            let node = node.clone();
            sim.spawn(async move {
                node.charge_cpu(10_000).await; // 5ms at 2 MIPS
            });
        }
        sim.run();
        assert_eq!(sim.now(), SimTime::from_nanos(5_000_000));
    }

    #[test]
    fn sends_do_not_block_the_sender() {
        let (sim, net, client, server) = setup(50, 0);
        let sender_done_at = Rc::new(Cell::new(SimTime::MAX));
        {
            let net = net.clone();
            let client = client.clone();
            let server = server.clone();
            let env = sim.env();
            let t = Rc::clone(&sender_done_at);
            sim.spawn(async move {
                for _ in 0..5 {
                    net.send(&client, &server, "async", 0);
                }
                t.set(env.now());
            });
        }
        {
            let server = server.clone();
            sim.spawn(async move {
                for _ in 0..5 {
                    let _ = server.inbox.recv().await;
                }
            });
        }
        sim.run();
        assert_eq!(sender_done_at.get(), SimTime::ZERO, "send is asynchronous");
    }
}
