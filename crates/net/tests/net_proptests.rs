//! Property tests of the network manager: conservation, ordering, and
//! cost accounting under randomized traffic.

use std::cell::RefCell;
use std::rc::Rc;

use ccdb_des::{Pcg32, Sim, SimDuration, WaitClass};
use ccdb_model::SystemParams;
use ccdb_net::{Network, NetworkNode};
use proptest::prelude::*;

fn params(net_delay_ms: u64, msg_cost: u64) -> SystemParams {
    let mut p = SystemParams::table5();
    p.net_delay = SimDuration::from_millis(net_delay_ms);
    p.msg_cost = msg_cost;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every message sent arrives exactly once, whatever the payload mix,
    /// and the packet accounting matches the payload sizes.
    #[test]
    fn all_messages_arrive_with_correct_packet_counts(
        payloads in proptest::collection::vec(0u64..20_000, 1..30),
        net_delay_ms in 0u64..5,
        msg_cost in prop_oneof![Just(0u64), Just(5_000u64)],
    ) {
        let sim = Sim::new();
        let env = sim.env();
        let p = params(net_delay_ms, msg_cost);
        let net = Network::new(&env, &p, Pcg32::new(9, 9));
        let a: NetworkNode<u64> = NetworkNode::new(&env, "a", 1, 1.0, WaitClass::ClientCpu);
        let b: NetworkNode<u64> = NetworkNode::new(&env, "b", 1, 2.0, WaitClass::Cpu);
        let expected_packets: u64 = payloads.iter().map(|&x| net.packets_for(x)).sum();
        let n = payloads.len();
        let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let b = b.clone();
            let got = Rc::clone(&got);
            let env = env.clone();
            sim.spawn(async move {
                for _ in 0..n {
                    let v = b.inbox.recv().await;
                    got.borrow_mut().push(v);
                }
                let _ = env; // keep env alive for symmetry
            });
        }
        for (i, &bytes) in payloads.iter().enumerate() {
            net.send(&a, &b, i as u64, bytes);
        }
        sim.run();
        let mut got = got.borrow().clone();
        got.sort_unstable();
        prop_assert_eq!(got, (0..n as u64).collect::<Vec<_>>());
        prop_assert_eq!(net.stats().messages, n as u64);
        prop_assert_eq!(net.stats().packets, expected_packets);
        prop_assert_eq!(net.stats().bytes, payloads.iter().sum::<u64>());
    }

    /// Single-packet messages between one sender and one receiver keep
    /// FIFO order (the FCFS pipeline cannot reorder them).
    #[test]
    fn single_packet_messages_stay_fifo(count in 1usize..40, delay_ms in 0u64..4) {
        let sim = Sim::new();
        let env = sim.env();
        let p = params(delay_ms, 5_000);
        let net = Network::new(&env, &p, Pcg32::new(3, 3));
        let a: NetworkNode<u64> = NetworkNode::new(&env, "a", 1, 1.0, WaitClass::ClientCpu);
        let b: NetworkNode<u64> = NetworkNode::new(&env, "b", 1, 2.0, WaitClass::Cpu);
        let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let b = b.clone();
            let got = Rc::clone(&got);
            sim.spawn(async move {
                for _ in 0..count {
                    let v = b.inbox.recv().await;
                    got.borrow_mut().push(v);
                }
            });
        }
        for i in 0..count as u64 {
            net.send(&a, &b, i, 100); // 100 bytes = 1 packet
        }
        sim.run();
        prop_assert_eq!(got.borrow().clone(), (0..count as u64).collect::<Vec<_>>());
    }

    /// With zero delay and zero CPU cost the network is transparent: the
    /// medium records no busy time.
    #[test]
    fn free_network_is_transparent(count in 1usize..20) {
        let sim = Sim::new();
        let env = sim.env();
        let p = params(0, 0);
        let net = Network::new(&env, &p, Pcg32::new(4, 4));
        let a: NetworkNode<()> = NetworkNode::new(&env, "a", 1, 1.0, WaitClass::ClientCpu);
        let b: NetworkNode<()> = NetworkNode::new(&env, "b", 1, 1.0, WaitClass::Cpu);
        {
            let b = b.clone();
            sim.spawn(async move {
                for _ in 0..count {
                    let _ = b.inbox.recv().await;
                }
            });
        }
        for _ in 0..count {
            net.send(&a, &b, (), 4096);
        }
        sim.run();
        prop_assert_eq!(sim.now().as_nanos(), 0);
        prop_assert!(net.utilization() <= f64::EPSILON);
    }
}
