//! The database model (paper §3.1, Table 1).
//!
//! A database is a set of *classes*; each class is a sequence of *atoms*.
//! For this study an atom corresponds to one disk page (the paper argues
//! this does not affect the results because pages are also the unit of
//! consistency and transport). An *object* of class `c` starts at a random
//! atom of `c` and spans `ObjectSize[c]` consecutive atoms, so objects of
//! the same class can share atoms (sub-object sharing, Figure 2).

use ccdb_des::Pcg32;
use std::fmt;

/// Identifies one class (relation) in the database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u16);

/// Identifies one atom (= disk page) in the database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// Owning class.
    pub class: ClassId,
    /// Atom index within the class.
    pub atom: u32,
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}:{}", self.class.0, self.atom)
    }
}

/// Identifies one object: a span of atoms within a class.
///
/// Two objects with different `start` values can overlap — that is the
/// paper's sub-object sharing model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObjectRef {
    /// Owning class.
    pub class: ClassId,
    /// First atom of the object.
    pub start: u32,
}

/// Per-class configuration (Table 1: `NPages[i]`, `ObjectSize[i]`).
#[derive(Clone, Debug, PartialEq)]
pub struct ClassSpec {
    /// Number of atoms (pages) in the class.
    pub n_pages: u32,
    /// Atoms per object of this class.
    pub object_size: u32,
}

/// Skewed access: a *hot* region attracting a disproportionate share of
/// accesses (the classic b-c contention model of the ACL lineage; the
/// paper itself keeps access uniform).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessSkew {
    /// Fraction of each class's atoms that form the hot region (0, 1].
    pub hot_fraction: f64,
    /// Probability that an object draw starts in the hot region.
    pub hot_access_prob: f64,
}

impl AccessSkew {
    /// Panic on inconsistent settings.
    pub fn validate(&self) {
        assert!(
            self.hot_fraction > 0.0 && self.hot_fraction <= 1.0,
            "hot fraction must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_access_prob),
            "hot access probability must be in [0, 1]"
        );
    }
}

/// The whole database (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct DatabaseSpec {
    /// The classes; `NClasses` is `classes.len()`.
    pub classes: Vec<ClassSpec>,
    /// Probability that consecutive atoms of an object are stored
    /// sequentially on disk (`ClusterFactor`).
    pub cluster_factor: f64,
    /// Optional skewed access (None = the paper's uniform model).
    pub skew: Option<AccessSkew>,
}

impl DatabaseSpec {
    /// A database of `n_classes` identical classes.
    pub fn uniform(n_classes: u16, n_pages: u32, object_size: u32, cluster_factor: f64) -> Self {
        assert!(n_classes > 0 && n_pages > 0 && object_size > 0);
        assert!(
            object_size <= n_pages,
            "objects cannot be larger than their class"
        );
        DatabaseSpec {
            classes: vec![
                ClassSpec {
                    n_pages,
                    object_size,
                };
                n_classes as usize
            ],
            cluster_factor,
            skew: None,
        }
    }

    /// Apply skewed access (builder-style).
    pub fn with_skew(mut self, skew: AccessSkew) -> Self {
        skew.validate();
        self.skew = Some(skew);
        self
    }

    /// Number of classes.
    pub fn n_classes(&self) -> u16 {
        self.classes.len() as u16
    }

    /// Total pages across all classes.
    pub fn total_pages(&self) -> u64 {
        self.classes.iter().map(|c| c.n_pages as u64).sum()
    }

    /// Class spec lookup.
    pub fn class(&self, id: ClassId) -> &ClassSpec {
        &self.classes[id.0 as usize]
    }

    /// Draw a random object. Uniform by default: every page of the
    /// database is equally likely to be the start atom (classes weighted
    /// by size), per §3.1. With [`AccessSkew`], the draw first lands in
    /// the hot region (the first `hot_fraction` of each class) with
    /// probability `hot_access_prob`.
    pub fn random_object(&self, rng: &mut Pcg32) -> ObjectRef {
        if let Some(skew) = self.skew {
            let hot = rng.chance(skew.hot_access_prob);
            // Pick the class uniformly by size, then the atom within the
            // chosen region of that class.
            let class = self.random_class_by_size(rng);
            let n = self.class(class).n_pages;
            let hot_pages = ((n as f64 * skew.hot_fraction).ceil() as u32).clamp(1, n);
            let start = if hot {
                rng.below(hot_pages as u64) as u32
            } else if hot_pages == n {
                rng.below(n as u64) as u32
            } else {
                hot_pages + rng.below((n - hot_pages) as u64) as u32
            };
            return ObjectRef { class, start };
        }
        let mut k = rng.below(self.total_pages());
        for (i, c) in self.classes.iter().enumerate() {
            if k < c.n_pages as u64 {
                return ObjectRef {
                    class: ClassId(i as u16),
                    start: k as u32,
                };
            }
            k -= c.n_pages as u64;
        }
        unreachable!("random index exceeded total pages");
    }

    fn random_class_by_size(&self, rng: &mut Pcg32) -> ClassId {
        let mut k = rng.below(self.total_pages());
        for (i, c) in self.classes.iter().enumerate() {
            if k < c.n_pages as u64 {
                return ClassId(i as u16);
            }
            k -= c.n_pages as u64;
        }
        unreachable!("random index exceeded total pages");
    }

    /// The pages an object spans. Atom indices wrap around the end of the
    /// class so every start atom yields a full-size object.
    pub fn object_pages(&self, obj: ObjectRef) -> Vec<PageId> {
        let spec = self.class(obj.class);
        (0..spec.object_size)
            .map(|i| PageId {
                class: obj.class,
                atom: (obj.start + i) % spec.n_pages,
            })
            .collect()
    }

    /// Data disk holding a class: classes are distributed uniformly
    /// (round-robin) over the `n_disks` data disks; all pages of one class
    /// live on the same disk (§3.3.2).
    pub fn disk_of_class(&self, class: ClassId, n_disks: u32) -> u32 {
        assert!(n_disks > 0);
        class.0 as u32 % n_disks
    }

    /// Dense index of a page into `0..total_pages` (for version tables).
    pub fn page_index(&self, page: PageId) -> usize {
        let mut base = 0usize;
        for (i, c) in self.classes.iter().enumerate() {
            if i == page.class.0 as usize {
                debug_assert!(page.atom < c.n_pages);
                return base + page.atom as usize;
            }
            base += c.n_pages as usize;
        }
        panic!("page {page:?} not in database");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> DatabaseSpec {
        DatabaseSpec::uniform(40, 50, 1, 1.0)
    }

    #[test]
    fn uniform_database_shape() {
        let d = db();
        assert_eq!(d.n_classes(), 40);
        assert_eq!(d.total_pages(), 2000);
        assert_eq!(d.class(ClassId(7)).n_pages, 50);
    }

    #[test]
    #[should_panic(expected = "larger than their class")]
    fn object_bigger_than_class_rejected() {
        let _ = DatabaseSpec::uniform(1, 4, 5, 1.0);
    }

    #[test]
    fn random_object_is_uniform_over_pages() {
        let d = db();
        let mut rng = Pcg32::new(1, 1);
        let mut counts = vec![0u32; 40];
        for _ in 0..40_000 {
            let o = d.random_object(&mut rng);
            assert!(o.start < 50);
            counts[o.class.0 as usize] += 1;
        }
        for &c in &counts {
            // Expected 1000 per class.
            assert!((800..1200).contains(&c), "class count {c}");
        }
    }

    #[test]
    fn object_pages_wrap_around() {
        let d = DatabaseSpec::uniform(1, 10, 3, 1.0);
        let pages = d.object_pages(ObjectRef {
            class: ClassId(0),
            start: 9,
        });
        let atoms: Vec<u32> = pages.iter().map(|p| p.atom).collect();
        assert_eq!(atoms, vec![9, 0, 1]);
    }

    #[test]
    fn objects_share_atoms() {
        let d = DatabaseSpec::uniform(1, 10, 4, 1.0);
        let a = d.object_pages(ObjectRef {
            class: ClassId(0),
            start: 2,
        });
        let b = d.object_pages(ObjectRef {
            class: ClassId(0),
            start: 4,
        });
        let shared: Vec<_> = a.iter().filter(|p| b.contains(p)).collect();
        assert_eq!(shared.len(), 2); // atoms 4 and 5
    }

    #[test]
    fn classes_round_robin_over_disks() {
        let d = db();
        assert_eq!(d.disk_of_class(ClassId(0), 2), 0);
        assert_eq!(d.disk_of_class(ClassId(1), 2), 1);
        assert_eq!(d.disk_of_class(ClassId(2), 2), 0);
        // With enough classes both disks get equal load.
        let on0 = (0..40)
            .filter(|&i| d.disk_of_class(ClassId(i), 2) == 0)
            .count();
        assert_eq!(on0, 20);
    }

    #[test]
    fn page_index_is_dense_and_unique() {
        let d = DatabaseSpec::uniform(3, 5, 1, 1.0);
        let mut seen = std::collections::HashSet::new();
        for class in 0..3u16 {
            for atom in 0..5u32 {
                let idx = d.page_index(PageId {
                    class: ClassId(class),
                    atom,
                });
                assert!(idx < 15);
                assert!(seen.insert(idx), "duplicate index {idx}");
            }
        }
        assert_eq!(seen.len(), 15);
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn skewed_draws_prefer_the_hot_region() {
        let d = DatabaseSpec::uniform(10, 100, 1, 1.0).with_skew(AccessSkew {
            hot_fraction: 0.1,
            hot_access_prob: 0.8,
        });
        let mut rng = Pcg32::new(11, 3);
        let mut hot = 0u32;
        let n = 50_000;
        for _ in 0..n {
            let o = d.random_object(&mut rng);
            if o.start < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn cold_region_is_still_covered() {
        let d = DatabaseSpec::uniform(2, 50, 1, 1.0).with_skew(AccessSkew {
            hot_fraction: 0.2,
            hot_access_prob: 0.9,
        });
        let mut rng = Pcg32::new(5, 9);
        let mut saw_cold = false;
        for _ in 0..5_000 {
            if d.random_object(&mut rng).start >= 10 {
                saw_cold = true;
                break;
            }
        }
        assert!(saw_cold);
    }

    #[test]
    fn full_hot_fraction_degenerates_to_uniform() {
        let d = DatabaseSpec::uniform(1, 100, 1, 1.0).with_skew(AccessSkew {
            hot_fraction: 1.0,
            hot_access_prob: 1.0,
        });
        let mut rng = Pcg32::new(2, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(d.random_object(&mut rng).start);
        }
        assert!(seen.len() > 95, "most atoms reachable: {}", seen.len());
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn invalid_skew_rejected() {
        let _ = DatabaseSpec::uniform(1, 10, 1, 1.0).with_skew(AccessSkew {
            hot_fraction: 0.0,
            hot_access_prob: 0.5,
        });
    }
}
