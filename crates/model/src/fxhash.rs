//! A deterministic, dependency-free replacement for `SipHash` in hot maps.
//!
//! The simulator's inner loop does several hash-map probes per simulated
//! event (lock table, buffer LRU, transaction driver state, wait ledgers),
//! and the keys are small integers (`PageId`, `TxnId`, tuples thereof).
//! `std`'s default `RandomState`/SipHash costs tens of nanoseconds per
//! probe defending against adversarial keys we do not have. This is the
//! well-known Fx multiply-rotate hash (as used by rustc): a couple of
//! arithmetic ops per word, fixed seed, so map iteration order is also
//! stable across runs — strictly friendlier to the determinism rules in
//! `docs/kernel.md` than a per-process random seed.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] for any map probed on the event path.
//! Keys are trusted simulation identifiers; this hash must not be used on
//! untrusted external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher with a fixed seed (the 64-bit golden ratio, as
/// in rustc's `FxHasher`).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the tail-padded chunks; derived `Hash` for
        // small key structs routes through the fixed-width methods below,
        // so this path is rarely hot.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, fixed seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`] — drop-in for event-path maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`] — drop-in for event-path sets.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_iterate_stably() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        // Fixed seed: two identically-built maps iterate identically.
        let mut n: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            n.insert(i, i * 2);
        }
        let a: Vec<_> = m.iter().collect();
        let b: Vec<_> = n.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn byte_writes_match_padded_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_small_keys_spread() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        let mut hashes: FxHashSet<u64> = FxHashSet::default();
        for i in 0..10_000u64 {
            set.insert(i);
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(set.len(), 10_000);
        assert_eq!(hashes.len(), 10_000, "no collisions on sequential keys");
    }
}
