//! # ccdb-model — database, transaction, and system models
//!
//! The specification side of the Wang & Rowe simulation study:
//!
//! * [`db`] — the database model (classes, atoms/pages, objects with
//!   sub-object sharing; Table 1).
//! * [`params`] — transaction-type parameters (Table 2), system parameters
//!   (Table 3), and the concrete settings of Tables 4 and 5.
//! * [`workload`] — the transaction reference-string generator with the
//!   `InterXactSet` temporal-locality model (Figure 3).
//! * [`fxhash`] — a fixed-seed integer hasher for event-path hash maps
//!   (shared here because every simulation crate already depends on the
//!   model types used as keys).
//!
//! Everything here is pure (no simulated time); the `ccdb-core` crate wires
//! these models into the discrete-event simulation.

#![warn(missing_docs)]

pub mod db;
pub mod fxhash;
pub mod params;
pub mod workload;

pub use db::{AccessSkew, ClassId, ClassSpec, DatabaseSpec, ObjectRef, PageId};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use params::{table4_database, table4_txn, table5_database, SystemParams, TxnParams};
pub use workload::{InterXactSet, TxnOp, TxnSpec, Workload};
