//! Simulation parameters (paper Tables 2 and 3) and the standard settings
//! used by the experiments (Tables 4 and 5).

use ccdb_des::SimDuration;

use crate::db::DatabaseSpec;

/// Parameters of one transaction type (Table 2).
#[derive(Clone, Debug, PartialEq)]
pub struct TxnParams {
    /// Minimum number of `ReadObject` operations per transaction.
    pub min_xact_size: u32,
    /// Maximum number of `ReadObject` operations per transaction.
    pub max_xact_size: u32,
    /// Probability that each page of a read object is updated.
    pub prob_write: f64,
    /// Mean think time between a `ReadObject` and its `UpdateObject`.
    pub update_delay: SimDuration,
    /// Mean think time at the end of each loop pass.
    pub internal_delay: SimDuration,
    /// Mean think time between transactions.
    pub external_delay: SimDuration,
    /// Size of the inter-transaction working set (`InterXactSetSize`).
    pub inter_xact_set_size: usize,
    /// Probability that a read comes from the working set (`InterXactLoc`).
    pub inter_xact_loc: f64,
}

impl TxnParams {
    /// The short-batch transaction type used by most experiments: 4–12
    /// object reads, no think time, 1 s external delay, working set 20.
    pub fn short_batch() -> Self {
        TxnParams {
            min_xact_size: 4,
            max_xact_size: 12,
            prob_write: 0.2,
            update_delay: SimDuration::ZERO,
            internal_delay: SimDuration::ZERO,
            external_delay: SimDuration::from_secs(1),
            inter_xact_set_size: 20,
            inter_xact_loc: 0.25,
        }
    }

    /// The large-batch type of §5.2: 20–60 object reads.
    pub fn large_batch() -> Self {
        TxnParams {
            min_xact_size: 20,
            max_xact_size: 60,
            ..TxnParams::short_batch()
        }
    }

    /// The interactive type of §5.5: 5 s update delay, 2 s internal delay.
    pub fn interactive() -> Self {
        TxnParams {
            update_delay: SimDuration::from_secs(5),
            internal_delay: SimDuration::from_secs(2),
            ..TxnParams::short_batch()
        }
    }

    /// Average number of object reads per transaction.
    pub fn mean_xact_size(&self) -> f64 {
        (self.min_xact_size + self.max_xact_size) as f64 / 2.0
    }

    /// Panic on inconsistent settings.
    pub fn validate(&self) {
        assert!(self.min_xact_size > 0, "transactions must read something");
        assert!(self.min_xact_size <= self.max_xact_size);
        assert!((0.0..=1.0).contains(&self.prob_write));
        assert!((0.0..=1.0).contains(&self.inter_xact_loc));
    }
}

/// System parameters (Table 3).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemParams {
    /// Mean exponential per-packet network delay (`NetDelay`).
    pub net_delay: SimDuration,
    /// Maximum bytes per packet (`PacketSize`).
    pub packet_size: u32,
    /// Instructions to send or receive one packet (`MsgCost`).
    pub msg_cost: u64,
    /// Number of client workstations (`NClients`).
    pub n_clients: u32,
    /// CPUs per client (`NClientCPUs`).
    pub n_client_cpus: u32,
    /// Client CPU speed in MIPS (`ClientMips`).
    pub client_mips: f64,
    /// CPUs on the server (`NServerCPUs`).
    pub n_server_cpus: u32,
    /// Server CPU speed in MIPS (`ServerMips`).
    pub server_mips: f64,
    /// Data disks on the server (`NDataDisks`).
    pub n_data_disks: u32,
    /// Log disks on the server (`NLogDisks`); 0 disables the log manager.
    pub n_log_disks: u32,
    /// Pages in each client cache (`CacheSize`).
    pub cache_size: usize,
    /// Pages in the server buffer pool (`BufferSize`).
    pub buffer_size: usize,
    /// Minimum disk seek+rotation time (`SeekLow`).
    pub seek_low: SimDuration,
    /// Maximum disk seek+rotation time (`SeekHigh`).
    pub seek_high: SimDuration,
    /// Transfer time for one disk block (`DiskTran`).
    pub disk_tran: SimDuration,
    /// Disk block / memory page size in bytes (`PageSize`).
    pub page_size: u32,
    /// Instructions to initiate a disk access (`InitDiskCost`).
    pub init_disk_cost: u64,
    /// Instructions to process one page on the server (`ServerProcPage`).
    pub server_proc_page: u64,
    /// Instructions to process one page on the client (`ClientProcPage`).
    pub client_proc_page: u64,
    /// Maximum active transactions on the server (`MPL`).
    pub mpl: u32,
    /// Hash partitions of the server lock table (1 = the paper's single
    /// table; simulation dynamics are shard-count invariant, only the
    /// per-shard statistics split).
    pub lock_shards: u32,
}

impl SystemParams {
    /// The Table 5 baseline used by the §4 verification and §5 experiments.
    pub fn table5() -> Self {
        SystemParams {
            net_delay: SimDuration::from_millis(2),
            packet_size: 4096,
            msg_cost: 5_000,
            n_clients: 10,
            n_client_cpus: 1,
            client_mips: 1.0,
            n_server_cpus: 1,
            server_mips: 2.0,
            n_data_disks: 2,
            n_log_disks: 1,
            cache_size: 100,
            buffer_size: 400,
            seek_low: SimDuration::ZERO,
            seek_high: SimDuration::from_millis(44),
            disk_tran: SimDuration::from_millis(2),
            page_size: 4096,
            init_disk_cost: 5_000,
            server_proc_page: 10_000,
            client_proc_page: 20_000,
            mpl: 50,
            lock_shards: 1,
        }
    }

    /// The Table 4 configuration for the ACL comparison (§4, experiment 1).
    ///
    /// Notable degenerate settings: a 1-page server buffer (forces every
    /// dirty page to disk at commit), a 12-page client cache (deferred
    /// updates for both algorithms), disabled log manager, and zero network
    /// costs — reproducing the centralized-DBMS setting of ACL.
    pub fn table4_acl() -> Self {
        SystemParams {
            net_delay: SimDuration::ZERO,
            packet_size: 4096,
            msg_cost: 0,
            n_clients: 200,
            n_client_cpus: 1,
            client_mips: 1000.0, // client processing is free in the ACL model
            n_server_cpus: 1,
            server_mips: 1.0,
            n_data_disks: 2,
            n_log_disks: 0,
            cache_size: 12,
            buffer_size: 1,
            seek_low: SimDuration::from_millis(35),
            seek_high: SimDuration::from_millis(35),
            disk_tran: SimDuration::ZERO,
            page_size: 4096,
            init_disk_cost: 0,
            server_proc_page: 15_000,
            client_proc_page: 0,
            mpl: 25,
            lock_shards: 1,
        }
    }

    /// §5.3: a 20 MIPS server, other parameters per Table 5.
    pub fn fast_server() -> Self {
        SystemParams {
            server_mips: 20.0,
            ..SystemParams::table5()
        }
    }

    /// §5.4: 20 MIPS server and an infinitely fast network.
    pub fn fast_net_fast_server() -> Self {
        SystemParams {
            net_delay: SimDuration::ZERO,
            server_mips: 20.0,
            ..SystemParams::table5()
        }
    }

    /// Packets needed for a message body of `bytes`.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1 // a control message still occupies one packet
        } else {
            bytes.div_ceil(self.packet_size as u64)
        }
    }

    /// Panic on inconsistent settings.
    pub fn validate(&self) {
        assert!(self.n_clients > 0);
        assert!(self.n_client_cpus > 0 && self.n_server_cpus > 0);
        assert!(self.client_mips > 0.0 && self.server_mips > 0.0);
        assert!(self.n_data_disks > 0);
        assert!(self.cache_size > 0 && self.buffer_size > 0);
        assert!(self.seek_low <= self.seek_high);
        assert!(self.packet_size > 0);
        assert!(self.mpl > 0);
        assert!(self.lock_shards > 0);
    }
}

/// The Table 5 database: 40 classes x 50 single-page objects = 8 MB.
pub fn table5_database() -> DatabaseSpec {
    DatabaseSpec::uniform(40, 50, 1, 1.0)
}

/// The Table 4 database: 2 classes x 500 single-page objects.
pub fn table4_database() -> DatabaseSpec {
    DatabaseSpec::uniform(2, 500, 1, 1.0)
}

/// The Table 4 transaction type: 4–12 reads, ProbWrite 0.25, 1 s external
/// delay, no locality.
pub fn table4_txn() -> TxnParams {
    TxnParams {
        min_xact_size: 4,
        max_xact_size: 12,
        prob_write: 0.25,
        update_delay: SimDuration::ZERO,
        internal_delay: SimDuration::ZERO,
        external_delay: SimDuration::from_secs(1),
        inter_xact_set_size: 0,
        inter_xact_loc: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TxnParams::short_batch().validate();
        TxnParams::large_batch().validate();
        TxnParams::interactive().validate();
        table4_txn().validate();
        SystemParams::table5().validate();
        SystemParams::table4_acl().validate();
        SystemParams::fast_server().validate();
        SystemParams::fast_net_fast_server().validate();
    }

    #[test]
    fn table5_matches_paper() {
        let p = SystemParams::table5();
        assert_eq!(p.msg_cost, 5_000);
        assert_eq!(p.buffer_size, 400);
        assert_eq!(p.cache_size, 100);
        assert_eq!(p.server_mips, 2.0);
        assert_eq!(p.mpl, 50);
        let d = table5_database();
        assert_eq!(d.total_pages(), 2000);
        // 2000 pages x 4KB ~= 8MB of data (paper §4 says "8M bytes").
        assert_eq!(d.total_pages() * p.page_size as u64, 8_192_000);
    }

    #[test]
    fn fast_variants_differ_only_where_stated() {
        let base = SystemParams::table5();
        let fast = SystemParams::fast_server();
        assert_eq!(fast.server_mips, 20.0);
        assert_eq!(
            SystemParams {
                server_mips: base.server_mips,
                ..fast
            },
            base
        );
        let fastnet = SystemParams::fast_net_fast_server();
        assert_eq!(fastnet.net_delay, SimDuration::ZERO);
        assert_eq!(fastnet.server_mips, 20.0);
    }

    #[test]
    fn packets_round_up() {
        let p = SystemParams::table5();
        assert_eq!(p.packets_for(0), 1);
        assert_eq!(p.packets_for(1), 1);
        assert_eq!(p.packets_for(4096), 1);
        assert_eq!(p.packets_for(4097), 2);
        assert_eq!(p.packets_for(3 * 4096), 3);
    }

    #[test]
    fn mean_xact_size() {
        assert_eq!(TxnParams::short_batch().mean_xact_size(), 8.0);
        assert_eq!(TxnParams::large_batch().mean_xact_size(), 40.0);
    }

    #[test]
    #[should_panic]
    fn invalid_txn_params_rejected() {
        let mut p = TxnParams::short_batch();
        p.prob_write = 1.5;
        p.validate();
    }
}
