//! The transaction model and workload generator (paper §3.2, Figure 3).
//!
//! A transaction is a loop of `ReadObject` / `UpdateObject` operations over
//! objects drawn either uniformly from the database or — with probability
//! `InterXactLoc` — from the [`InterXactSet`], the set of objects read by
//! the most recent transactions of the same client. The generated
//! [`TxnSpec`] is immutable: an aborted transaction restarts with exactly
//! the same reference string, as in the ACL model.

use ccdb_des::Pcg32;
use std::collections::VecDeque;

use crate::db::{DatabaseSpec, ObjectRef, PageId};
use crate::params::TxnParams;

/// One `ReadObject` (and optional per-page updates) in a transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnOp {
    /// The object being read.
    pub object: ObjectRef,
    /// The pages the object spans.
    pub pages: Vec<PageId>,
    /// For each page, whether the following `UpdateObject` writes it.
    pub writes: Vec<bool>,
}

impl TxnOp {
    /// True if any page of the object is updated.
    pub fn has_writes(&self) -> bool {
        self.writes.iter().any(|&w| w)
    }
}

/// A complete transaction reference string.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnSpec {
    /// Client-local transaction sequence number.
    pub serial: u64,
    /// Index of the transaction type that generated this transaction
    /// (0 for single-type workloads).
    pub type_idx: usize,
    /// The operations, in execution order.
    pub ops: Vec<TxnOp>,
}

impl TxnSpec {
    /// Number of `ReadObject` operations (the paper's "transaction size").
    pub fn size(&self) -> usize {
        self.ops.len()
    }

    /// Distinct pages read, in first-access order.
    pub fn read_set(&self) -> Vec<PageId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            for &p in &op.pages {
                if !seen.contains(&p) {
                    seen.push(p);
                }
            }
        }
        seen
    }

    /// Distinct pages written, in first-write order. Always a subset of the
    /// read set (footnote to Table 2).
    pub fn write_set(&self) -> Vec<PageId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            for (i, &p) in op.pages.iter().enumerate() {
                if op.writes[i] && !seen.contains(&p) {
                    seen.push(p);
                }
            }
        }
        seen
    }

    /// True if the transaction performs no updates.
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|op| !op.has_writes())
    }
}

/// The inter-transaction working set: the last `capacity` *distinct*
/// objects read by recently committed transactions (paper §3.2).
#[derive(Clone, Debug)]
pub struct InterXactSet {
    capacity: usize,
    objects: VecDeque<ObjectRef>,
}

impl InterXactSet {
    /// Create an empty set with the given capacity (`InterXactSetSize`).
    pub fn new(capacity: usize) -> Self {
        InterXactSet {
            capacity,
            objects: VecDeque::new(),
        }
    }

    /// Record that a committed transaction read `obj` (most recent last).
    /// Duplicates move to the most-recent position; the oldest entry is
    /// evicted beyond capacity.
    pub fn note_read(&mut self, obj: ObjectRef) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.objects.iter().position(|o| *o == obj) {
            self.objects.remove(pos);
        }
        self.objects.push_back(obj);
        while self.objects.len() > self.capacity {
            self.objects.pop_front();
        }
    }

    /// Uniformly pick a member, if any.
    pub fn pick(&self, rng: &mut Pcg32) -> Option<ObjectRef> {
        if self.objects.is_empty() {
            None
        } else {
            let i = rng.below(self.objects.len() as u64) as usize;
            Some(self.objects[i])
        }
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects recorded yet.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Membership test (for statistics and tests).
    pub fn contains(&self, obj: &ObjectRef) -> bool {
        self.objects.contains(obj)
    }
}

/// Per-client workload generator. Supports a single transaction type or a
/// weighted mix of types (paper §3.2: "a simulation run can simulate ...
/// a mix of transactions belonging to different types").
///
/// ```
/// use ccdb_des::Pcg32;
/// use ccdb_model::{DatabaseSpec, TxnParams, Workload};
///
/// let db = DatabaseSpec::uniform(40, 50, 1, 1.0); // Table 5 database
/// let mut w = Workload::new(db, TxnParams::short_batch(), Pcg32::new(7, 1));
///
/// let txn = w.next_txn();
/// assert!((4..=12).contains(&txn.size())); // U[MinXactSize, MaxXactSize]
/// // The write set is always a subset of the read set (Table 2 footnote).
/// let reads = txn.read_set();
/// assert!(txn.write_set().iter().all(|p| reads.contains(p)));
///
/// // Committed reads feed the InterXactSet, the source of temporal
/// // locality for future transactions.
/// w.note_commit(&txn);
/// assert!(!w.inter_set().is_empty());
/// ```
pub struct Workload {
    db: DatabaseSpec,
    types: Vec<TxnParams>,
    /// Cumulative selection weights, parallel to `types`.
    cumulative: Vec<f64>,
    /// Type of the transaction generated last (delays are drawn from it).
    current: usize,
    rng: Pcg32,
    inter_set: InterXactSet,
    next_serial: u64,
    /// How many generated reads actually came from the working set
    /// (observability for tests and reports).
    pub locality_hits: u64,
    /// Total generated reads.
    pub total_reads: u64,
}

impl Workload {
    /// Create a single-type generator with its own random stream.
    pub fn new(db: DatabaseSpec, params: TxnParams, rng: Pcg32) -> Self {
        Workload::with_mix(db, vec![(params, 1.0)], rng)
    }

    /// Create a generator over a weighted mix of transaction types. The
    /// working set (`InterXactSet`) is shared across types, sized to the
    /// largest `inter_xact_set_size` in the mix.
    pub fn with_mix(db: DatabaseSpec, mix: Vec<(TxnParams, f64)>, rng: Pcg32) -> Self {
        assert!(!mix.is_empty(), "workload mix needs at least one type");
        let mut types = Vec::with_capacity(mix.len());
        let mut cumulative = Vec::with_capacity(mix.len());
        let mut acc = 0.0;
        for (params, weight) in mix {
            params.validate();
            assert!(weight > 0.0, "mix weights must be positive");
            acc += weight;
            types.push(params);
            cumulative.push(acc);
        }
        let set_size = types
            .iter()
            .map(|t| t.inter_xact_set_size)
            .max()
            .unwrap_or(0);
        Workload {
            db,
            types,
            cumulative,
            current: 0,
            rng,
            inter_set: InterXactSet::new(set_size),
            next_serial: 0,
            locality_hits: 0,
            total_reads: 0,
        }
    }

    /// The parameters of the transaction type generated last.
    pub fn params(&self) -> &TxnParams {
        &self.types[self.current]
    }

    /// Number of transaction types in the mix.
    pub fn n_types(&self) -> usize {
        self.types.len()
    }

    /// The database being referenced.
    pub fn db(&self) -> &DatabaseSpec {
        &self.db
    }

    /// Draw the next transaction (Figure 3: size uniform in `[min, max]`, each read
    /// followed by per-page Bernoulli(ProbWrite) updates). With a mix, the
    /// type is selected first by weight.
    pub fn next_txn(&mut self) -> TxnSpec {
        self.current = self.pick_type();
        let params = self.types[self.current].clone();
        let size = self
            .rng
            .range_inclusive(params.min_xact_size as u64, params.max_xact_size as u64)
            as usize;
        let mut ops = Vec::with_capacity(size);
        for _ in 0..size {
            let object = self.pick_object(&params);
            let pages = self.db.object_pages(object);
            let writes = pages
                .iter()
                .map(|_| self.rng.chance(params.prob_write))
                .collect();
            ops.push(TxnOp {
                object,
                pages,
                writes,
            });
        }
        let serial = self.next_serial;
        self.next_serial += 1;
        TxnSpec {
            serial,
            type_idx: self.current,
            ops,
        }
    }

    fn pick_type(&mut self) -> usize {
        if self.types.len() == 1 {
            return 0;
        }
        let total = *self.cumulative.last().expect("non-empty mix");
        let draw = self.rng.next_f64() * total;
        self.cumulative
            .iter()
            .position(|&c| draw < c)
            .unwrap_or(self.types.len() - 1)
    }

    fn pick_object(&mut self, params: &TxnParams) -> ObjectRef {
        self.total_reads += 1;
        if self.rng.chance(params.inter_xact_loc) {
            if let Some(obj) = self.inter_set.pick(&mut self.rng) {
                self.locality_hits += 1;
                return obj;
            }
        }
        self.db.random_object(&mut self.rng)
    }

    /// Tell the generator a transaction committed, feeding its reads into
    /// the working set. Aborted runs do not update the set (the same spec
    /// is retried).
    pub fn note_commit(&mut self, txn: &TxnSpec) {
        for op in &txn.ops {
            self.inter_set.note_read(op.object);
        }
    }

    /// Draw the external think time before the next transaction (from the
    /// type generated last; for mixes the first draw uses type 0).
    pub fn external_delay(&mut self) -> ccdb_des::SimDuration {
        let mean = self.types[self.current].external_delay;
        self.rng.exp_duration(mean)
    }

    /// Draw the think time between a read and its update.
    pub fn update_delay(&mut self) -> ccdb_des::SimDuration {
        let mean = self.types[self.current].update_delay;
        self.rng.exp_duration(mean)
    }

    /// Draw the think time at the end of a loop pass.
    pub fn internal_delay(&mut self) -> ccdb_des::SimDuration {
        let mean = self.types[self.current].internal_delay;
        self.rng.exp_duration(mean)
    }

    /// Observed fraction of reads served from the working set.
    pub fn observed_locality(&self) -> f64 {
        if self.total_reads == 0 {
            0.0
        } else {
            self.locality_hits as f64 / self.total_reads as f64
        }
    }

    /// Access to the working set (tests, statistics).
    pub fn inter_set(&self) -> &InterXactSet {
        &self.inter_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ClassId;
    use crate::params::TxnParams;

    fn workload(loc: f64, pw: f64) -> Workload {
        let db = DatabaseSpec::uniform(40, 50, 1, 1.0);
        let params = TxnParams {
            prob_write: pw,
            inter_xact_loc: loc,
            ..TxnParams::short_batch()
        };
        Workload::new(db, params, Pcg32::new(7, 1))
    }

    #[test]
    fn txn_size_in_bounds() {
        let mut w = workload(0.0, 0.2);
        for _ in 0..500 {
            let t = w.next_txn();
            assert!((4..=12).contains(&t.size()));
        }
    }

    #[test]
    fn write_set_subset_of_read_set() {
        let mut w = workload(0.25, 0.5);
        for _ in 0..200 {
            let t = w.next_txn();
            let rs = t.read_set();
            for p in t.write_set() {
                assert!(rs.contains(&p));
            }
            w.note_commit(&t);
        }
    }

    #[test]
    fn read_only_when_prob_write_zero() {
        let mut w = workload(0.25, 0.0);
        for _ in 0..100 {
            assert!(w.next_txn().is_read_only());
        }
    }

    #[test]
    fn locality_matches_parameter() {
        let mut w = workload(0.5, 0.0);
        // Warm the working set first.
        for _ in 0..20 {
            let t = w.next_txn();
            w.note_commit(&t);
        }
        w.locality_hits = 0;
        w.total_reads = 0;
        for _ in 0..3000 {
            let t = w.next_txn();
            w.note_commit(&t);
        }
        let obs = w.observed_locality();
        assert!((obs - 0.5).abs() < 0.03, "observed locality {obs}");
    }

    #[test]
    fn zero_locality_never_hits() {
        let mut w = workload(0.0, 0.2);
        for _ in 0..100 {
            let t = w.next_txn();
            w.note_commit(&t);
        }
        assert_eq!(w.locality_hits, 0);
    }

    #[test]
    fn inter_set_caps_at_capacity() {
        let mut s = InterXactSet::new(3);
        for i in 0..10 {
            s.note_read(ObjectRef {
                class: ClassId(0),
                start: i,
            });
        }
        assert_eq!(s.len(), 3);
        // Most recent three survive.
        for i in 7..10 {
            assert!(s.contains(&ObjectRef {
                class: ClassId(0),
                start: i,
            }));
        }
    }

    #[test]
    fn inter_set_dedupes_and_refreshes() {
        let mut s = InterXactSet::new(2);
        let a = ObjectRef {
            class: ClassId(0),
            start: 1,
        };
        let b = ObjectRef {
            class: ClassId(0),
            start: 2,
        };
        let c = ObjectRef {
            class: ClassId(0),
            start: 3,
        };
        s.note_read(a);
        s.note_read(b);
        s.note_read(a); // refresh a: now [b, a]
        s.note_read(c); // evict b: now [a, c]
        assert!(s.contains(&a));
        assert!(s.contains(&c));
        assert!(!s.contains(&b));
    }

    #[test]
    fn zero_capacity_set_stays_empty() {
        let mut s = InterXactSet::new(0);
        s.note_read(ObjectRef {
            class: ClassId(0),
            start: 1,
        });
        assert!(s.is_empty());
        let mut rng = Pcg32::new(1, 1);
        assert_eq!(s.pick(&mut rng), None);
    }

    #[test]
    fn aborted_spec_is_replayable() {
        let mut w = workload(0.25, 0.5);
        let t = w.next_txn();
        let t2 = t.clone();
        assert_eq!(t, t2); // identical reference string on restart
    }

    #[test]
    fn serials_increase() {
        let mut w = workload(0.0, 0.0);
        let a = w.next_txn();
        let b = w.next_txn();
        assert!(b.serial > a.serial);
    }

    #[test]
    fn multi_page_objects_expand() {
        let db = DatabaseSpec::uniform(4, 50, 4, 1.0);
        let params = TxnParams::short_batch();
        let mut w = Workload::new(db, params, Pcg32::new(3, 3));
        let t = w.next_txn();
        for op in &t.ops {
            assert_eq!(op.pages.len(), 4);
            assert_eq!(op.writes.len(), 4);
        }
    }
}
