//! Property tests of the workload generator: structural invariants of the
//! generated reference strings over the whole parameter space.

use ccdb_des::{Pcg32, SimDuration};
use ccdb_model::{DatabaseSpec, TxnParams, Workload};
use proptest::prelude::*;

fn txn_params(min: u32, span: u32, pw: f64, loc: f64, set: usize) -> TxnParams {
    TxnParams {
        min_xact_size: min,
        max_xact_size: min + span,
        prob_write: pw,
        update_delay: SimDuration::ZERO,
        internal_delay: SimDuration::ZERO,
        external_delay: SimDuration::from_secs(1),
        inter_xact_set_size: set,
        inter_xact_loc: loc,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sizes stay in [min, max]; writes are a subset of reads; pages
    /// belong to the database; the working set respects its capacity.
    #[test]
    fn generated_transactions_are_well_formed(
        n_classes in 1u16..20,
        n_pages in 1u32..200,
        object_size_seed in 1u32..8,
        min in 1u32..10,
        span in 0u32..10,
        pw in 0.0f64..1.0,
        loc in 0.0f64..1.0,
        set in 0usize..30,
        seed in 0u64..500,
    ) {
        let object_size = object_size_seed.min(n_pages);
        let db = DatabaseSpec::uniform(n_classes, n_pages, object_size, 1.0);
        let mut w = Workload::new(db.clone(), txn_params(min, span, pw, loc, set), Pcg32::new(seed, 1));
        for _ in 0..20 {
            let t = w.next_txn();
            prop_assert!((min as usize..=(min + span) as usize).contains(&t.size()));
            let reads = t.read_set();
            for p in t.write_set() {
                prop_assert!(reads.contains(&p), "write outside read set");
            }
            for op in &t.ops {
                prop_assert_eq!(op.pages.len(), object_size as usize);
                for p in &op.pages {
                    prop_assert!(p.class.0 < n_classes);
                    prop_assert!(p.atom < n_pages);
                }
            }
            w.note_commit(&t);
            prop_assert!(w.inter_set().len() <= set);
        }
        if pw == 0.0 {
            prop_assert!(w.next_txn().is_read_only());
        }
    }

    /// The same seed replays the same reference string; different seeds
    /// diverge.
    #[test]
    fn reference_strings_replay(seed in 0u64..1000) {
        let db = DatabaseSpec::uniform(10, 50, 1, 1.0);
        let mk = |s| Workload::new(db.clone(), txn_params(4, 8, 0.3, 0.4, 20), Pcg32::new(s, 1));
        let mut a = mk(seed);
        let mut b = mk(seed);
        for _ in 0..5 {
            let ta = a.next_txn();
            let tb = b.next_txn();
            prop_assert_eq!(&ta, &tb);
            a.note_commit(&ta);
            b.note_commit(&tb);
        }
        let mut c = mk(seed.wrapping_add(1));
        let tc = c.next_txn();
        let ta = a.next_txn();
        prop_assert_ne!(ta, tc);
    }

    /// Mixes select every type with roughly its weight.
    #[test]
    fn mixes_respect_weights(w1 in 1.0f64..5.0, w2 in 1.0f64..5.0, seed in 0u64..100) {
        let db = DatabaseSpec::uniform(10, 50, 1, 1.0);
        let small = txn_params(2, 0, 0.0, 0.0, 0);
        let large = txn_params(20, 0, 0.0, 0.0, 0);
        let mut w = Workload::with_mix(
            db,
            vec![(small, w1), (large, w2)],
            Pcg32::new(seed, 2),
        );
        let n = 2000;
        let mut firsts = 0u32;
        for _ in 0..n {
            let t = w.next_txn();
            match t.type_idx {
                0 => {
                    firsts += 1;
                    prop_assert_eq!(t.size(), 2);
                }
                1 => prop_assert_eq!(t.size(), 20),
                other => prop_assert!(false, "unknown type {}", other),
            }
        }
        let expected = w1 / (w1 + w2);
        let observed = firsts as f64 / n as f64;
        prop_assert!(
            (observed - expected).abs() < 0.06,
            "observed {} expected {}",
            observed,
            expected
        );
    }
}
