//! The sans-io server protocol core.
//!
//! [`ServerCore`] owns every protocol *decision* the server makes — lock
//! grants, version validation, commit certification, retention policy,
//! notification fan-out, abort propagation — and the logical state behind
//! them (lock manager, version table, caching directory, server
//! transaction table). It knows nothing about clocks, CPUs, disks,
//! facilities, sockets or coroutines: a driver feeds it one protocol step
//! at a time and interprets the returned values as sends/parks/wakes in
//! its own runtime.
//!
//! Two drivers exist: the DES runtime in `ccdb-core::server` (which adds
//! simulated resources and wait attribution around each decision) and the
//! TCP engine in `ccdb-server` (which adds sockets and a parked-request
//! registry). Both must call the same methods at the same protocol points;
//! the DES driver is the reference — its run reports are byte-identical to
//! the pre-extraction implementation.

use std::collections::{BTreeSet, HashMap, HashSet};

use ccdb_lock::{
    ClientId, LockStats, Mode, RequestOutcome, RetainPolicy, ShardedLockManager, TxnId, Wake,
};
use ccdb_model::{DatabaseSpec, PageId};

use crate::algorithm::{Algorithm, Tuning};

/// What to do with a lock request that has just been granted, given the
/// version the client said it had cached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantDecision {
    /// The cached copy is current: reply `Valid` (if the request was
    /// synchronous) and resolve the op.
    UseCached,
    /// Stale or absent: ship the page and resolve the op.
    Ship,
    /// No-wait locking read a stale cached page: abort the transaction
    /// (the restart message names the page so the client refetches it).
    StaleAbort,
}

/// Everything a driver must act on after [`ServerCore::abort_txn`].
#[derive(Clone, Debug)]
pub struct AbortOutcome {
    /// The aborted transaction's client (send it a `Restart`).
    pub client: ClientId,
    /// Lock grants produced by releasing the victim's locks: resume the
    /// parked requesters.
    pub wakes: Vec<Wake>,
    /// Callback messages produced by the release (callback locking).
    pub callbacks: Vec<(ClientId, PageId)>,
    /// Pages on which the victim itself had parked lock requests, in
    /// ascending order; the driver must fail those parked continuations.
    pub parked: Vec<PageId>,
}

struct TxnEntry {
    client: ClientId,
    ops_resolved: u32,
    failed: bool,
    /// Pages with a parked lock request (ordered so abort processing is
    /// deterministic regardless of driver).
    parked: BTreeSet<PageId>,
}

/// The server-side protocol state machine (see the module docs).
pub struct ServerCore {
    algorithm: Algorithm,
    tuning: Tuning,
    oracle: bool,
    n_clients: u32,
    db: DatabaseSpec,
    lm: ShardedLockManager,
    /// Committed version of every page (dense, indexed by
    /// [`DatabaseSpec::page_index`]).
    versions: Vec<u64>,
    /// Which clients have been shipped each page (notification directory).
    directory: HashMap<PageId, HashSet<ClientId>>,
    txns: HashMap<TxnId, TxnEntry>,
    /// Transactions the server has aborted; straggler messages are dropped.
    aborted: HashSet<TxnId>,
}

impl ServerCore {
    /// Build a core for `algorithm` over a database of `db.total_pages()`
    /// pages, all at version 0.
    pub fn new(
        algorithm: Algorithm,
        tuning: Tuning,
        oracle: bool,
        n_clients: u32,
        lock_shards: u32,
        db: DatabaseSpec,
    ) -> ServerCore {
        let versions = vec![0; db.total_pages() as usize];
        ServerCore {
            algorithm,
            tuning,
            oracle,
            n_clients,
            db,
            lm: ShardedLockManager::new(lock_shards),
            versions,
            directory: HashMap::new(),
            txns: HashMap::new(),
            aborted: HashSet::new(),
        }
    }

    /// The algorithm this core serves.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The modelling variants in effect.
    pub fn tuning(&self) -> Tuning {
        self.tuning
    }

    /// Whether the serializability oracle is on.
    pub fn oracle(&self) -> bool {
        self.oracle
    }

    /// The database shape this core versions.
    pub fn db(&self) -> &DatabaseSpec {
        &self.db
    }

    // ---- transaction registration --------------------------------------

    /// Has the server aborted `txn`? Straggler messages of aborted
    /// transactions are dropped (synchronous ones get an `Aborted` reply).
    pub fn is_aborted(&self, txn: TxnId) -> bool {
        self.aborted.contains(&txn)
    }

    /// Is `txn` registered (first message seen, not yet cleaned up)?
    pub fn txn_known(&self, txn: TxnId) -> bool {
        self.txns.contains_key(&txn)
    }

    /// Register `txn` on its first message. The driver is responsible for
    /// admission control (MPL); the core only tracks protocol state.
    pub fn register_txn(&mut self, txn: TxnId, client: ClientId) {
        self.txns.insert(
            txn,
            TxnEntry {
                client,
                ops_resolved: 0,
                failed: false,
                parked: BTreeSet::new(),
            },
        );
    }

    /// The client that opened `txn`, if it is registered.
    pub fn client_of(&self, txn: TxnId) -> Option<ClientId> {
        self.txns.get(&txn).map(|e| e.client)
    }

    /// Registered transactions whose client is `client`, ascending.
    /// (Disconnect handling in a real server.)
    pub fn txns_of_client(&self, client: ClientId) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(_, e)| e.client == client)
            .map(|(t, _)| *t)
            .collect();
        out.sort_unstable();
        out
    }

    // ---- lock path ------------------------------------------------------

    /// Request `mode` on `page` for `txn`. On `Blocked` the driver parks
    /// the continuation (and calls [`ServerCore::park`]); the listed
    /// callback targets must be sent `Callback` messages.
    pub fn request_lock(
        &mut self,
        txn: TxnId,
        client: ClientId,
        page: PageId,
        mode: Mode,
    ) -> RequestOutcome {
        self.lm.request(txn, client, page, mode)
    }

    /// The lock shard responsible for `page` (wait attribution).
    pub fn shard_of(&self, page: PageId) -> u32 {
        self.lm.shard_of(page)
    }

    /// Record that `txn` has a parked lock request on `page`.
    pub fn park(&mut self, txn: TxnId, page: PageId) {
        if let Some(entry) = self.txns.get_mut(&txn) {
            entry.parked.insert(page);
        }
    }

    /// Remove the parked marker (the request was granted or failed).
    pub fn unpark(&mut self, txn: TxnId, page: PageId) {
        if let Some(entry) = self.txns.get_mut(&txn) {
            entry.parked.remove(&page);
        }
    }

    /// Lock granted: validate the cached version *now* (it may have gone
    /// stale while the request was blocked).
    pub fn after_grant(
        &self,
        page: PageId,
        cached_version: Option<u64>,
        wait: bool,
    ) -> GrantDecision {
        let current = self.versions[self.db.page_index(page)];
        match cached_version {
            Some(v) if v == current => GrantDecision::UseCached,
            Some(_) if !wait => GrantDecision::StaleAbort,
            _ => GrantDecision::Ship,
        }
    }

    /// Current committed version of `page`.
    pub fn version_of(&self, page: PageId) -> u64 {
        self.versions[self.db.page_index(page)]
    }

    /// Record that `page` was shipped to `to` (caching directory) and
    /// return the shipped version.
    pub fn note_shipped(&mut self, to: ClientId, page: PageId) -> u64 {
        self.directory.entry(page).or_default().insert(to);
        self.versions[self.db.page_index(page)]
    }

    /// Count one protocol operation of `txn` as resolved. Returns `true`
    /// if the transaction is still registered (the driver then wakes a
    /// pending commit, if any).
    pub fn resolve_op(&mut self, txn: TxnId) -> bool {
        match self.txns.get_mut(&txn) {
            Some(entry) => {
                entry.ops_resolved += 1;
                true
            }
            None => false,
        }
    }

    // ---- commit path ----------------------------------------------------

    /// May the commit of `txn` proceed? True when every op the client sent
    /// has been resolved, when the transaction already failed (the doomed
    /// check rejects it next), or when it is unknown (straggler).
    pub fn commit_ready(&self, txn: TxnId, ops_sent: u32) -> bool {
        match self.txns.get(&txn) {
            Some(entry) => entry.failed || entry.ops_resolved >= ops_sent,
            None => true,
        }
    }

    /// The smallest page `txn` is parked on, if any (deterministic wait
    /// attribution for a commit gated on unresolved ops).
    pub fn min_parked(&self, txn: TxnId) -> Option<PageId> {
        self.txns
            .get(&txn)
            .and_then(|e| e.parked.iter().min().copied())
    }

    /// Is the commit doomed — the transaction aborted, failed, or gone?
    pub fn commit_doomed(&self, txn: TxnId) -> bool {
        self.aborted.contains(&txn) || self.txns.get(&txn).map(|e| e.failed).unwrap_or(true)
    }

    /// The version every page written by `txn` carries after commit:
    /// transaction ids are globally unique and monotonic per client, so
    /// they double as version numbers.
    pub fn commit_version(txn: TxnId) -> u64 {
        txn.0
    }

    /// Certification: validate the read set against committed versions
    /// and — atomically with the validation — bump the written pages'
    /// versions. The version bump IS the logical commit point: a
    /// concurrent certifier that read any of these pages will now fail
    /// its own validation instead of silently losing an update.
    ///
    /// For the locking family this validates nothing and returns `true`;
    /// under the oracle it instead *asserts* that every read version is
    /// current (the transaction's locks must have prevented any committed
    /// overwrite), panicking on a protocol bug.
    pub fn validate_commit(
        &mut self,
        txn: TxnId,
        read_set: &[(PageId, u64)],
        dirty: &[PageId],
    ) -> bool {
        if self.algorithm.deferred_updates() {
            let ok = read_set
                .iter()
                .all(|(p, v)| self.versions[self.db.page_index(*p)] == *v);
            if ok {
                let new_version = Self::commit_version(txn);
                for &page in dirty {
                    let idx = self.db.page_index(page);
                    self.versions[idx] = new_version;
                }
            }
            ok
        } else {
            if self.oracle {
                for (p, v) in read_set {
                    let cur = self.versions[self.db.page_index(*p)];
                    assert_eq!(
                        cur, *v,
                        "oracle violation: {:?} read {:?}@v{} but committed version is v{}",
                        self.algorithm, p, v, cur
                    );
                }
            }
            true
        }
    }

    /// Bump the written pages' versions at commit completion. A no-op for
    /// the certification family, which already bumped them at the
    /// validation point ([`ServerCore::validate_commit`]).
    pub fn publish_versions(&mut self, txn: TxnId, dirty: &[PageId]) {
        if !self.algorithm.deferred_updates() {
            let new_version = Self::commit_version(txn);
            for &page in dirty {
                let idx = self.db.page_index(page);
                self.versions[idx] = new_version;
            }
        }
    }

    /// Release the committer's locks under the algorithm's retention
    /// policy (callback locking retains them as read locks, or as
    /// read+write locks under the write-retention variant). Returns the
    /// grants to resume and the callbacks to send.
    pub fn release_commit_locks(
        &mut self,
        txn: TxnId,
        from: ClientId,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let policy = if matches!(self.algorithm, Algorithm::Callback) {
            if self.tuning.retain_write_locks {
                RetainPolicy::ReadWrite(from)
            } else {
                RetainPolicy::Read(from)
            }
        } else {
            RetainPolicy::Drop
        };
        self.lm.release_all_policy(txn, policy)
    }

    /// Should this commit push update notifications (no-wait locking with
    /// notification, and something was written)?
    pub fn should_push_updates(&self, dirty: &[PageId]) -> bool {
        matches!(self.algorithm, Algorithm::NoWait { notify: true }) && !dirty.is_empty()
    }

    /// Batch the updated pages per caching client, in ascending client
    /// order (deterministic send order). With the broadcast variant every
    /// other client receives every page and the directory is not
    /// consulted.
    pub fn notification_plan(
        &self,
        committer: ClientId,
        dirty: &[PageId],
    ) -> Vec<(ClientId, Vec<PageId>)> {
        let mut per_client: HashMap<ClientId, Vec<PageId>> = HashMap::new();
        if self.tuning.notify_broadcast {
            for c in 0..self.n_clients {
                let c = ClientId(c);
                if c != committer {
                    per_client.insert(c, dirty.to_vec());
                }
            }
        } else {
            for &page in dirty {
                if let Some(clients) = self.directory.get(&page) {
                    for &c in clients {
                        if c != committer {
                            per_client.entry(c).or_default().push(page);
                        }
                    }
                }
            }
        }
        let mut targets: Vec<(ClientId, Vec<PageId>)> = per_client.into_iter().collect();
        targets.sort_by_key(|(c, _)| c.0);
        targets
    }

    /// Notification flavour: invalidations instead of page contents?
    pub fn notify_invalidate(&self) -> bool {
        self.tuning.notify_invalidate
    }

    // ---- abort path -----------------------------------------------------

    /// Abort `txn`: mark it aborted, release its locks and queued
    /// requests, and fail its entry. Returns `None` for an unknown or
    /// already-aborted transaction (the straggler is still marked aborted
    /// so later messages are dropped); otherwise the driver must send the
    /// `Restart`, resume the wakes, fail the parked continuations, and
    /// eventually call [`ServerCore::forget_txn`].
    pub fn abort_txn(&mut self, txn: TxnId) -> Option<AbortOutcome> {
        if self.aborted.contains(&txn) || !self.txns.contains_key(&txn) {
            self.aborted.insert(txn);
            return None;
        }
        self.aborted.insert(txn);
        let (wakes, callbacks) = self.lm.abort(txn);
        let entry = self.txns.get_mut(&txn).expect("checked above");
        entry.failed = true;
        let parked: Vec<PageId> = entry.parked.iter().copied().collect();
        Some(AbortOutcome {
            client: entry.client,
            wakes,
            callbacks,
            parked,
        })
    }

    // ---- retained locks (callback locking) ------------------------------

    /// A client released (or evicted) its retained lock on `page`.
    pub fn release_retained(
        &mut self,
        client: ClientId,
        page: PageId,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        self.lm.release_retained(client, page)
    }

    /// A client deferred a callback on `page` until `blocker` ends;
    /// returns a deadlock victim to abort, if the deferral closes a cycle.
    pub fn callback_deferred(
        &mut self,
        page: PageId,
        from: ClientId,
        blocker: TxnId,
    ) -> Option<TxnId> {
        self.lm.callback_deferred(page, from, blocker)
    }

    /// Every page `client` holds a retained lock on (disconnect cleanup).
    pub fn retained_pages(&self, client: ClientId) -> Vec<PageId> {
        self.lm.retained_pages(client)
    }

    /// Drop the transaction entry after commit or abort. Under the oracle,
    /// asserts the lock manager holds nothing for it first.
    pub fn forget_txn(&mut self, txn: TxnId) {
        if self.oracle {
            self.lm.assert_txn_gone(txn);
        }
        self.txns.remove(&txn);
    }

    // ---- reporting / diagnostics ----------------------------------------

    /// Aggregate lock-manager counters.
    pub fn lock_stats(&self) -> LockStats {
        self.lm.stats()
    }

    /// Per-shard lock-manager counters.
    pub fn per_shard_lock_stats(&self) -> Vec<LockStats> {
        self.lm.per_shard_stats()
    }

    /// Pages present in the lock table.
    pub fn lock_table_len(&self) -> usize {
        self.lm.table_len()
    }

    /// Transactions with a blocked lock request.
    pub fn blocked_txn_count(&self) -> usize {
        self.lm.blocked_txn_count()
    }

    /// Number of registered (live) transactions.
    pub fn live_txn_count(&self) -> usize {
        self.txns.len()
    }

    /// Live transaction ids, ascending (diagnostics).
    pub fn live_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self.txns.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Diagnostic view of one transaction: `(client, ops_resolved,
    /// failed, parked pages)`.
    pub fn txn_debug(&self, txn: TxnId) -> Option<(ClientId, u32, bool, Vec<PageId>)> {
        self.txns.get(&txn).map(|e| {
            (
                e.client,
                e.ops_resolved,
                e.failed,
                e.parked.iter().copied().collect(),
            )
        })
    }

    /// Diagnostic rendering of one lock-table entry.
    pub fn lock_debug_entry(&self, page: PageId) -> String {
        self.lm.debug_entry(page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    fn core(algorithm: Algorithm) -> ServerCore {
        ServerCore::new(
            algorithm,
            Tuning::default(),
            true,
            4,
            4,
            ccdb_model::table5_database(),
        )
    }

    #[test]
    fn grant_decision_matrix() {
        let mut c = core(Algorithm::NoWait { notify: false });
        assert_eq!(
            c.after_grant(page(1), Some(0), true),
            GrantDecision::UseCached
        );
        assert_eq!(c.after_grant(page(1), None, true), GrantDecision::Ship);
        // Bump the version: a stale sync request refetches, a stale async
        // (no-wait) request aborts.
        c.versions[c.db.page_index(page(1))] = 9;
        assert_eq!(c.after_grant(page(1), Some(0), true), GrantDecision::Ship);
        assert_eq!(
            c.after_grant(page(1), Some(0), false),
            GrantDecision::StaleAbort
        );
        assert_eq!(
            c.after_grant(page(1), Some(9), false),
            GrantDecision::UseCached
        );
    }

    #[test]
    fn certification_validates_and_bumps_atomically() {
        let mut c = core(Algorithm::Certification { inter: true });
        let t1 = TxnId(101);
        let t2 = TxnId(102);
        c.register_txn(t1, ClientId(0));
        c.register_txn(t2, ClientId(1));
        // t1 commits a write to page 1.
        assert!(c.validate_commit(t1, &[(page(1), 0)], &[page(1)]));
        assert_eq!(c.version_of(page(1)), 101);
        // t2 read page 1 at version 0: validation fails and bumps nothing.
        assert!(!c.validate_commit(t2, &[(page(1), 0)], &[page(2)]));
        assert_eq!(c.version_of(page(2)), 0);
    }

    #[test]
    fn abort_is_sticky_and_reports_parked_pages() {
        let mut c = core(Algorithm::TwoPhase { inter: true });
        let t = TxnId(7);
        assert!(c.abort_txn(t).is_none()); // unknown: marked aborted
        assert!(c.is_aborted(t));
        let t2 = TxnId(8);
        c.register_txn(t2, ClientId(2));
        c.park(t2, page(5));
        c.park(t2, page(3));
        let out = c.abort_txn(t2).expect("live txn aborts");
        assert_eq!(out.client, ClientId(2));
        assert_eq!(out.parked, vec![page(3), page(5)]); // ascending
        assert!(c.commit_doomed(t2));
        assert!(c.abort_txn(t2).is_none()); // second abort is a no-op
    }

    #[test]
    fn commit_gate_counts_resolved_ops() {
        let mut c = core(Algorithm::NoWait { notify: false });
        let t = TxnId(9);
        c.register_txn(t, ClientId(0));
        assert!(!c.commit_ready(t, 2));
        c.resolve_op(t);
        assert!(!c.commit_ready(t, 2));
        c.resolve_op(t);
        assert!(c.commit_ready(t, 2));
        assert!(!c.commit_doomed(t));
    }

    #[test]
    fn notification_plan_is_sorted_and_skips_committer() {
        let mut c = core(Algorithm::NoWait { notify: true });
        c.note_shipped(ClientId(3), page(1));
        c.note_shipped(ClientId(0), page(1));
        c.note_shipped(ClientId(1), page(2));
        let plan = c.notification_plan(ClientId(0), &[page(1), page(2)]);
        assert_eq!(
            plan,
            vec![(ClientId(1), vec![page(2)]), (ClientId(3), vec![page(1)]),]
        );
        assert!(c.should_push_updates(&[page(1)]));
        assert!(!c.should_push_updates(&[]));
    }
}
