//! Sans-io protocol cores for the Wang & Rowe cache-consistency
//! algorithms.
//!
//! This crate holds everything about the client/server protocols that is
//! *not* about time or transport: the message types ([`C2S`], [`S2C`]),
//! the algorithm taxonomy ([`Algorithm`], [`Tuning`]), and two pure state
//! machines — [`ServerCore`] (lock table, page versions, caching
//! directory, transaction registry) and [`ClientCore`] (cache discipline,
//! read/write/commit protocol steps, callback handling).
//!
//! Neither core knows about clocks, facilities, coroutines, or sockets.
//! Two drivers interpret them:
//!
//! * the DES runtime in `ccdb-core`, which charges simulated CPU/disk/
//!   network time around each decision, and
//! * the real TCP page-server in `ccdb-server`, which moves the same
//!   messages over a length-prefixed binary codec.
//!
//! Because both runtimes make every protocol decision through the same
//! code, a wire trace recorded from a live server can be replayed against
//! the simulator's semantics and diffed decision-by-decision — the DES
//! acts as a conformance oracle for the real server.

#![warn(missing_docs)]

pub mod algorithm;
pub mod client;
pub mod msg;
pub mod server;

pub use algorithm::{Algorithm, ParseAlgorithmError, Tuning};
pub use client::{Action, AsyncOut, ClientCore, CommitAction, LocalNote, OpKind, SyncOp};
pub use msg::{AbortKind, OpId, ReplyKind, C2S, S2C};
pub use server::{AbortOutcome, GrantDecision, ServerCore};
