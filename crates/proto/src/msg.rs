//! The client/server wire protocol.
//!
//! Message payload sizes (for packetisation): control messages carry no
//! body; every page shipped adds `PageSize` bytes. Version numbers, page
//! ids, and op ids ride in the header and are not charged (as in the
//! paper, which charges per page moved).
//!
//! [`C2S::payload_bytes`] / [`S2C::payload_bytes`] are the single
//! definition of a message's data volume: the simulated `Network` charges
//! them for packetisation, and the real binary codec (`ccdb-server`)
//! appends exactly that many payload bytes to the encoded frame, so the
//! simulated cost and the on-the-wire size cannot drift apart.

use ccdb_lock::{Mode, TxnId};
use ccdb_model::PageId;

/// Correlates a synchronous request with its reply.
pub type OpId = u64;

/// Why a transaction aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortKind {
    /// Chosen as a deadlock victim.
    Deadlock,
    /// Read a stale cached page (no-wait locking).
    StaleRead,
    /// Failed commit-time certification.
    Validation,
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum C2S {
    /// Request a lock on `page` and, unless the cached `version` is still
    /// current, the page contents. Used by the locking family.
    ///
    /// `wait: false` is no-wait locking's asynchronous variant: the server
    /// sends no reply on success and a [`S2C::Restart`] on failure.
    LockFetch {
        /// Requesting transaction.
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Requested mode.
        mode: Mode,
        /// Version cached at the client, if any.
        cached_version: Option<u64>,
        /// Synchronous (client blocks for the reply) or not.
        wait: bool,
        /// Reply correlation id (meaningful when `wait`).
        op: OpId,
    },
    /// Fetch a page without locking (certification).
    Fetch {
        /// Requesting transaction.
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Reply correlation id.
        op: OpId,
    },
    /// Check that a cached version is current (certification,
    /// inter-transaction check-on-access).
    CheckVersion {
        /// Requesting transaction.
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Version cached at the client.
        version: u64,
        /// Reply correlation id.
        op: OpId,
    },
    /// Commit request: ships the dirty pages; `read_set` carries the
    /// versions read (used for certification validation and by the
    /// serializability oracle).
    Commit {
        /// Committing transaction.
        txn: TxnId,
        /// Pages read with the version each was read at.
        read_set: Vec<(PageId, u64)>,
        /// Updated pages shipped with the request.
        dirty: Vec<PageId>,
        /// Number of protocol operations the client issued for this
        /// transaction (the server must resolve them all before deciding;
        /// robust against message reordering under no-wait locking).
        ops_sent: u32,
        /// Reply correlation id.
        op: OpId,
    },
    /// Callback reply: the retained lock on `page` is released, or its
    /// release is deferred until `blocker` (the client's current
    /// transaction) terminates.
    CallbackReply {
        /// Page whose retained lock was called back.
        page: PageId,
        /// Released now?
        released: bool,
        /// If deferred: the transaction that must end first.
        blocker: Option<TxnId>,
    },
    /// A clean page with a retained lock was evicted from the client cache;
    /// the server must drop the retained lock (callback locking, §3.3.3).
    ReleaseRetained {
        /// Page evicted.
        page: PageId,
    },
}

impl C2S {
    /// Payload bytes: the one definition of this message's data volume,
    /// used for simulated packetisation AND by the real codec (see the
    /// module docs).
    pub fn payload_bytes(&self, page_size: u32) -> u64 {
        match self {
            C2S::Commit { dirty, .. } => dirty.len() as u64 * page_size as u64,
            _ => 0,
        }
    }

    /// The transaction this message belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            C2S::LockFetch { txn, .. }
            | C2S::Fetch { txn, .. }
            | C2S::CheckVersion { txn, .. }
            | C2S::Commit { txn, .. } => Some(*txn),
            C2S::CallbackReply { .. } | C2S::ReleaseRetained { .. } => None,
        }
    }
}

/// What a synchronous request resolved to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplyKind {
    /// The page contents (at `version`) are attached; lock granted if one
    /// was requested.
    PageData {
        /// Version of the shipped page.
        version: u64,
    },
    /// The cached copy is valid (and the lock granted, if requested); no
    /// data shipped.
    Valid,
    /// Commit completed. Written pages now carry version `new_version`.
    Committed {
        /// Version assigned to every page this transaction wrote.
        new_version: u64,
    },
    /// The request (or commit) failed: certification did not validate, a
    /// deadlock was broken, or a cached page was stale under no-wait
    /// locking. The client must restart the transaction.
    Aborted,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum S2C {
    /// Reply to a synchronous request.
    Reply {
        /// Correlation id of the request.
        op: OpId,
        /// Outcome.
        kind: ReplyKind,
    },
    /// Callback locking: please release the retained read lock on `page`.
    Callback {
        /// Page to release.
        page: PageId,
    },
    /// The server aborted `txn`; the client must restart it.
    Restart {
        /// Aborted transaction.
        txn: TxnId,
        /// Why it was aborted.
        kind: AbortKind,
        /// For stale-read aborts: the cached page that was out of date.
        /// The client drops it so the restart fetches a fresh copy.
        stale_page: Option<PageId>,
    },
    /// Notification: `pages` were updated by a committed transaction; the
    /// new contents (at `version`) are attached.
    Update {
        /// Updated pages with their new version.
        pages: Vec<PageId>,
        /// The version the pages now carry.
        version: u64,
    },
    /// Notification (invalidation variant): drop the cached copies of
    /// `pages`; they were updated by a committed transaction. No contents
    /// attached.
    Invalidate {
        /// Pages to drop.
        pages: Vec<PageId>,
    },
}

impl S2C {
    /// Payload bytes: the one definition of this message's data volume,
    /// used for simulated packetisation AND by the real codec (see the
    /// module docs).
    pub fn payload_bytes(&self, page_size: u32) -> u64 {
        match self {
            S2C::Reply {
                kind: ReplyKind::PageData { .. },
                ..
            } => page_size as u64,
            S2C::Update { pages, .. } => pages.len() as u64 * page_size as u64,
            S2C::Invalidate { .. } => 0,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    #[test]
    fn payload_sizes() {
        let commit = C2S::Commit {
            txn: TxnId(1),
            read_set: vec![(page(1), 0), (page(2), 0)],
            dirty: vec![page(1), page(2), page(3)],
            ops_sent: 4,
            op: 9,
        };
        assert_eq!(commit.payload_bytes(4096), 3 * 4096);
        let lock = C2S::LockFetch {
            txn: TxnId(1),
            page: page(1),
            mode: Mode::S,
            cached_version: None,
            wait: true,
            op: 1,
        };
        assert_eq!(lock.payload_bytes(4096), 0);
        let data = S2C::Reply {
            op: 1,
            kind: ReplyKind::PageData { version: 3 },
        };
        assert_eq!(data.payload_bytes(4096), 4096);
        let valid = S2C::Reply {
            op: 1,
            kind: ReplyKind::Valid,
        };
        assert_eq!(valid.payload_bytes(4096), 0);
        let update = S2C::Update {
            pages: vec![page(1), page(2)],
            version: 5,
        };
        assert_eq!(update.payload_bytes(4096), 2 * 4096);
    }

    #[test]
    fn txn_extraction() {
        assert_eq!(
            C2S::Fetch {
                txn: TxnId(7),
                page: page(1),
                op: 0
            }
            .txn(),
            Some(TxnId(7))
        );
        assert_eq!(C2S::ReleaseRetained { page: page(1) }.txn(), None);
    }
}
