//! Algorithm selection (paper §2) and modelling variants.
//!
//! Moved here from `ccdb-core::config` so the sans-io protocol cores can
//! branch on the algorithm without depending on the simulator; `ccdb-core`
//! re-exports both types unchanged.

use std::fmt;
use std::str::FromStr;

/// The cache consistency algorithm to simulate (paper §2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Algorithm {
    /// Two-phase locking with caching; `inter` keeps the cache across
    /// transaction boundaries (check-on-access via the lock request).
    TwoPhase {
        /// Inter-transaction caching (vs intra-transaction).
        inter: bool,
    },
    /// Certification (optimistic concurrency control) with deferred
    /// updates; `inter` keeps the cache across transactions
    /// (check-on-access on first touch per transaction).
    Certification {
        /// Inter-transaction caching (vs intra-transaction).
        inter: bool,
    },
    /// Callback locking: read locks are retained by clients across
    /// transactions; the server calls conflicting locks back.
    Callback,
    /// No-wait (optimistic) locking: clients proceed on cached pages and
    /// send lock requests asynchronously; the server aborts on stale reads
    /// or deadlock. `notify` adds update propagation after commits.
    NoWait {
        /// Send updated pages to caching clients after commit.
        notify: bool,
    },
}

impl Algorithm {
    /// Every algorithm variant, in paper order.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::TwoPhase { inter: false },
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: false },
        Algorithm::Certification { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// The five inter-transaction algorithms of §5, in the paper's order.
    pub const INTER_TRANSACTION: [Algorithm; 5] = [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// The four lock-based algorithms compared in the §5 experiments.
    pub const EXPERIMENT_SET: [Algorithm; 4] = [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Callback,
        Algorithm::NoWait { notify: false },
        Algorithm::NoWait { notify: true },
    ];

    /// True if the client cache survives transaction boundaries.
    pub fn inter_transaction(self) -> bool {
        match self {
            Algorithm::TwoPhase { inter } | Algorithm::Certification { inter } => inter,
            Algorithm::Callback | Algorithm::NoWait { .. } => true,
        }
    }

    /// True for the deferred-update (certification) family.
    pub fn deferred_updates(self) -> bool {
        matches!(self, Algorithm::Certification { .. })
    }

    /// Short label used in reports (matches the paper's terminology).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::TwoPhase { inter: false } => "B2PL",
            Algorithm::TwoPhase { inter: true } => "C2PL",
            Algorithm::Certification { inter: false } => "OCC",
            Algorithm::Certification { inter: true } => "COCC",
            Algorithm::Callback => "CB",
            Algorithm::NoWait { notify: false } => "NW",
            Algorithm::NoWait { notify: true } => "NWN",
        }
    }

    /// The exact inverse of [`Algorithm::label`]: the reader path for
    /// documents that record algorithms by label (sweep specs, JSONL job
    /// records, wire-trace headers). Unlike [`FromStr`], accepts no
    /// aliases and is case-sensitive.
    pub fn from_label(label: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.label() == label)
    }

    /// Full name for human-readable output.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::TwoPhase { inter: false } => "two-phase locking (intra)",
            Algorithm::TwoPhase { inter: true } => "two-phase locking",
            Algorithm::Certification { inter: false } => "certification (intra)",
            Algorithm::Certification { inter: true } => "certification",
            Algorithm::Callback => "callback locking",
            Algorithm::NoWait { notify: false } => "no-wait locking",
            Algorithm::NoWait { notify: true } => "no-wait locking w/ notification",
        }
    }
}

/// Displays as the paper label ([`Algorithm::label`]); round-trips through
/// [`Algorithm::from_str`].
impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error for [`Algorithm::from_str`]: the input matched no algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown algorithm {:?} (expected one of B2PL, C2PL, OCC, COCC, CB, NW, NWN)",
            self.input
        )
    }
}

impl std::error::Error for ParseAlgorithmError {}

/// Case-insensitive parse of the paper labels, plus the historical CLI
/// aliases `2PL` (= C2PL), `CERT` (= COCC) and `CALLBACK` (= CB). The one
/// parser behind every user-facing algorithm flag (`--alg`, `--algs`,
/// `ccdb serve --alg`).
impl FromStr for Algorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Algorithm, ParseAlgorithmError> {
        match s.to_ascii_uppercase().as_str() {
            "B2PL" => Ok(Algorithm::TwoPhase { inter: false }),
            "C2PL" | "2PL" => Ok(Algorithm::TwoPhase { inter: true }),
            "OCC" => Ok(Algorithm::Certification { inter: false }),
            "COCC" | "CERT" => Ok(Algorithm::Certification { inter: true }),
            "CB" | "CALLBACK" => Ok(Algorithm::Callback),
            "NW" => Ok(Algorithm::NoWait { notify: false }),
            "NWN" => Ok(Algorithm::NoWait { notify: true }),
            _ => Err(ParseAlgorithmError {
                input: s.to_string(),
            }),
        }
    }
}

/// Modelling variants beyond the paper's baseline protocols. All default
/// to `false` (the paper's choices); the ablation benches flip them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tuning {
    /// Callback locking: retain write locks *as write locks* after commit
    /// instead of demoting them to read locks — the variant §2.3 discusses
    /// and declines. Subsequent writes by the same client need no server
    /// message, but other clients' reads now trigger callbacks.
    pub retain_write_locks: bool,
    /// Notification: send invalidations instead of propagating the new
    /// page contents — the alternative §2.5 discusses (cheap messages, but
    /// clients must refetch).
    pub notify_invalidate: bool,
    /// Restart aborted transactions immediately instead of after the ACL
    /// adaptive delay (exponential with mean = average response time).
    pub zero_restart_delay: bool,
    /// Notification: broadcast updates to every client instead of using
    /// the per-page caching directory — the simpler server the paper's
    /// §6 mentions ("if it sends updates to individual clients instead of
    /// broadcasting them to all clients").
    pub notify_broadcast: bool,
    /// Process asynchronous server messages during update/internal think
    /// times. The paper's implementation does NOT ("in the current
    /// implementation, these messages are not processed during the
    /// internal delay time", §5.5) and blames callback/no-wait locking's
    /// poor interactive results on it; this flag removes the limitation.
    pub responsive_client: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = Algorithm::ALL.iter().map(|a| a.label()).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::from_label(alg.label()), Some(alg));
        }
        assert_eq!(Algorithm::from_label("2pl"), None);
        assert_eq!(Algorithm::from_label(""), None);
    }

    #[test]
    fn display_from_str_round_trip() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.to_string().parse::<Algorithm>(), Ok(alg));
            // Case-insensitive.
            assert_eq!(
                alg.to_string().to_ascii_lowercase().parse::<Algorithm>(),
                Ok(alg)
            );
        }
    }

    #[test]
    fn from_str_aliases() {
        assert_eq!("2pl".parse(), Ok(Algorithm::TwoPhase { inter: true }));
        assert_eq!("cert".parse(), Ok(Algorithm::Certification { inter: true }));
        assert_eq!("callback".parse(), Ok(Algorithm::Callback));
        assert!("xyz".parse::<Algorithm>().is_err());
        let err = "xyz".parse::<Algorithm>().unwrap_err();
        assert!(err.to_string().contains("xyz"));
    }

    #[test]
    fn caching_modes() {
        assert!(!Algorithm::TwoPhase { inter: false }.inter_transaction());
        assert!(Algorithm::TwoPhase { inter: true }.inter_transaction());
        assert!(Algorithm::Callback.inter_transaction());
        assert!(Algorithm::NoWait { notify: true }.inter_transaction());
        assert!(Algorithm::Certification { inter: true }.deferred_updates());
        assert!(!Algorithm::Callback.deferred_updates());
    }
}
