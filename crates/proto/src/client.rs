//! The sans-io client protocol core.
//!
//! [`ClientCore`] owns the client side of every algorithm's protocol: what
//! a read/write/commit does with the cache, which message (if any) it
//! sends, and how each reply or asynchronous server message updates the
//! cache and transaction state. It has no clock, no network and no
//! coroutines — a driver interprets the returned [`Action`]s, transports
//! the messages, and feeds replies back in.
//!
//! The cache is passed in by the driver on every call rather than owned:
//! the DES runtime shares it with the report collector through an
//! `Rc<RefCell<..>>`, while the TCP load driver owns it on a thread.

use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::PageId;
use ccdb_storage::{CachedPage, ClientCache, PageLock};

use crate::algorithm::{Algorithm, Tuning};
use crate::msg::{AbortKind, OpId, ReplyKind, C2S, S2C};

/// Which local step a [`Action::Local`] outcome was (drivers trace these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalNote {
    /// A locally-satisfied read that the reference implementation traces.
    Read,
    /// A locally-satisfied write that the reference implementation traces.
    Write,
}

/// What kind of synchronous request a [`SyncOp`] is; fed back to
/// [`ClientCore::apply_read_reply`] with the reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Locking-family read (`LockFetch` S, wait).
    LockRead,
    /// Certification check-on-access (`CheckVersion`).
    OccCheck,
    /// Certification cold-miss fetch (`Fetch`).
    OccFetch,
    /// No-wait cold-miss fetch (`LockFetch` S, wait).
    NoWaitFetch,
}

/// A synchronous request: send `msg`, block until the reply to `op`
/// arrives, then feed it to the matching `apply_*_reply` method.
#[derive(Clone, Debug)]
pub struct SyncOp {
    /// Which apply path handles the reply.
    pub kind: OpKind,
    /// Reply correlation id.
    pub op: OpId,
    /// The message to send.
    pub msg: C2S,
}

/// One protocol step's outcome.
#[derive(Clone, Debug)]
pub enum Action {
    /// Satisfied locally; no message.
    Local {
        /// Trace marker, when the step is one the reference traces.
        note: Option<LocalNote>,
    },
    /// Send and block for the reply.
    Sync(SyncOp),
    /// Send and continue (no-wait locking's asynchronous requests).
    Async(C2S),
}

/// Commit step outcome.
#[derive(Clone, Debug)]
pub enum CommitAction {
    /// Callback locking running entirely on retained locks with nothing
    /// written: commit locally, no server message.
    Local,
    /// Send the commit request and block for the reply.
    Send {
        /// Reply correlation id.
        op: OpId,
        /// The pages shipped with the commit (for tracing).
        dirty: Vec<PageId>,
        /// The message to send.
        msg: C2S,
    },
}

/// Outcome of [`ClientCore::handle_async`].
#[derive(Clone, Debug, Default)]
pub struct AsyncOut {
    /// Messages to send in order (callback replies, retained-lock
    /// releases).
    pub sends: Vec<C2S>,
    /// A callback was answered: `(page, released)`; drivers trace it.
    pub callback_answer: Option<(PageId, bool)>,
}

/// The client-side protocol state machine (see the module docs).
pub struct ClientCore {
    id: ClientId,
    algorithm: Algorithm,
    tuning: Tuning,
    next_op: OpId,
    txn_serial: u64,
    // --- current transaction attempt state ---
    txn: TxnId,
    txn_aborted: bool,
    abort_kind: AbortKind,
    ops_sent: u32,
    read_versions: Vec<(PageId, u64)>,
    deferred_callbacks: Vec<PageId>,
}

impl ClientCore {
    /// A fresh core for client `id` running `algorithm`.
    pub fn new(id: ClientId, algorithm: Algorithm, tuning: Tuning) -> ClientCore {
        ClientCore {
            id,
            algorithm,
            tuning,
            next_op: 0,
            txn_serial: 0,
            txn: TxnId(0),
            txn_aborted: false,
            abort_kind: AbortKind::Deadlock,
            ops_sent: 0,
            read_versions: Vec::new(),
            deferred_callbacks: Vec::new(),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The algorithm this core runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The current transaction attempt's id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Protocol operations sent so far in this attempt.
    pub fn ops_sent(&self) -> u32 {
        self.ops_sent
    }

    fn fresh_op(&mut self) -> OpId {
        self.next_op += 1;
        self.next_op
    }

    fn record_read(&mut self, page: PageId, version: u64) {
        if !self.read_versions.iter().any(|(p, _)| *p == page) {
            self.read_versions.push((page, version));
        }
    }

    /// Start a new transaction attempt; returns its id. Transaction ids
    /// are globally unique and monotonic: version numbers are derived
    /// from committing transaction ids.
    pub fn begin_attempt(&mut self) -> TxnId {
        self.txn_serial += 1;
        self.txn = TxnId(((self.id.0 as u64) << 32) | self.txn_serial);
        self.txn_aborted = false;
        self.abort_kind = AbortKind::Deadlock;
        self.ops_sent = 0;
        self.read_versions.clear();
        self.txn
    }

    /// Fail if the server has restarted this attempt (checked at no-wait
    /// protocol points, after the driver drained its inbox).
    pub fn abort_pending(&self) -> Result<(), AbortKind> {
        if self.txn_aborted {
            Err(self.abort_kind)
        } else {
            Ok(())
        }
    }

    /// Install a fetched page; evictions of retained-lock pages produce
    /// `ReleaseRetained` messages (§3.3.3) the driver must send.
    fn install_fetched(
        &mut self,
        cache: &mut ClientCache,
        page: PageId,
        version: u64,
        lock: PageLock,
        checked: bool,
    ) -> Vec<C2S> {
        let mut state = CachedPage::fresh(version);
        state.lock = lock;
        state.checked = checked;
        let mut sends = Vec::new();
        for ev in cache.install(page, state) {
            debug_assert!(
                !ev.state.dirty,
                "dirty pages are pinned or locked and cannot be evicted"
            );
            if ev.state.retained {
                sends.push(C2S::ReleaseRetained { page: ev.page });
            }
        }
        sends
    }

    // ---- ReadObject -----------------------------------------------------

    /// One `ReadObject` protocol step for `page`.
    pub fn read_step(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        match self.algorithm {
            Algorithm::TwoPhase { .. } | Algorithm::Callback => self.read_locking(cache, page),
            Algorithm::Certification { .. } => self.read_occ(cache, page),
            Algorithm::NoWait { .. } => self.read_no_wait(cache, page),
        }
    }

    fn read_locking(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        let callback = matches!(self.algorithm, Algorithm::Callback);
        let cached_version = match cache.access(page) {
            Some(st) if st.lock != PageLock::None => {
                let v = st.version;
                self.record_read(page, v);
                return Action::Local {
                    note: Some(LocalNote::Read),
                };
            }
            Some(st) if callback && st.retained => {
                // The whole point of callback locking: a retained lock
                // makes the cached copy usable with no server message.
                st.lock = PageLock::Read;
                let v = st.version;
                self.record_read(page, v);
                return Action::Local {
                    note: Some(LocalNote::Read),
                };
            }
            Some(st) => Some(st.version),
            None => None,
        };
        let op = self.fresh_op();
        self.ops_sent += 1;
        Action::Sync(SyncOp {
            kind: OpKind::LockRead,
            op,
            msg: C2S::LockFetch {
                txn: self.txn,
                page,
                mode: Mode::S,
                cached_version,
                wait: true,
                op,
            },
        })
    }

    fn read_occ(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        let (kind, msg) = match cache.access(page) {
            Some(st) if st.checked => {
                let v = st.version;
                self.record_read(page, v);
                return Action::Local { note: None };
            }
            Some(st) => {
                let version = st.version;
                let op = self.fresh_op();
                self.ops_sent += 1;
                (
                    OpKind::OccCheck,
                    SyncOp {
                        kind: OpKind::OccCheck,
                        op,
                        msg: C2S::CheckVersion {
                            txn: self.txn,
                            page,
                            version,
                            op,
                        },
                    },
                )
            }
            None => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                (
                    OpKind::OccFetch,
                    SyncOp {
                        kind: OpKind::OccFetch,
                        op,
                        msg: C2S::Fetch {
                            txn: self.txn,
                            page,
                            op,
                        },
                    },
                )
            }
        };
        let _ = kind;
        Action::Sync(msg)
    }

    fn read_no_wait(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        match cache.access(page) {
            Some(st) if st.lock != PageLock::None => {
                let v = st.version;
                self.record_read(page, v);
                Action::Local { note: None }
            }
            Some(st) => {
                // Assume the cached copy is valid and keep running; the
                // server aborts us if the assumption was wrong.
                st.lock = PageLock::Read;
                let version = st.version;
                self.ops_sent += 1;
                self.record_read(page, version);
                Action::Async(C2S::LockFetch {
                    txn: self.txn,
                    page,
                    mode: Mode::S,
                    cached_version: Some(version),
                    wait: false,
                    op: 0,
                })
            }
            None => {
                let op = self.fresh_op();
                self.ops_sent += 1;
                Action::Sync(SyncOp {
                    kind: OpKind::NoWaitFetch,
                    op,
                    msg: C2S::LockFetch {
                        txn: self.txn,
                        page,
                        mode: Mode::S,
                        cached_version: None,
                        wait: true,
                        op,
                    },
                })
            }
        }
    }

    /// Apply the reply to a synchronous read. `Ok` carries messages the
    /// driver must send (retained-lock releases from cache evictions).
    pub fn apply_read_reply(
        &mut self,
        cache: &mut ClientCache,
        kind: OpKind,
        page: PageId,
        reply: ReplyKind,
    ) -> Result<Vec<C2S>, AbortKind> {
        match kind {
            OpKind::LockRead => match reply {
                ReplyKind::Valid => {
                    let st = cache.peek_mut(page).expect("validated page is cached");
                    st.lock = PageLock::Read;
                    let v = st.version;
                    self.record_read(page, v);
                    Ok(Vec::new())
                }
                ReplyKind::PageData { version } => {
                    let sends = self.install_fetched(cache, page, version, PageLock::Read, false);
                    self.record_read(page, version);
                    Ok(sends)
                }
                ReplyKind::Aborted => Err(AbortKind::Deadlock),
                ReplyKind::Committed { .. } => unreachable!("commit reply to a lock request"),
            },
            OpKind::OccCheck => match reply {
                ReplyKind::Valid => {
                    let st = cache.peek_mut(page).expect("checked page is cached");
                    st.checked = true;
                    let v = st.version;
                    self.record_read(page, v);
                    Ok(Vec::new())
                }
                ReplyKind::PageData { version } => {
                    let sends = self.install_fetched(cache, page, version, PageLock::None, true);
                    self.record_read(page, version);
                    Ok(sends)
                }
                ReplyKind::Aborted => Err(AbortKind::Validation),
                ReplyKind::Committed { .. } => unreachable!("commit reply to a check"),
            },
            OpKind::OccFetch => match reply {
                ReplyKind::PageData { version } => {
                    let sends = self.install_fetched(cache, page, version, PageLock::None, true);
                    self.record_read(page, version);
                    Ok(sends)
                }
                ReplyKind::Aborted => Err(AbortKind::Validation),
                other => unreachable!("unexpected fetch reply {other:?}"),
            },
            OpKind::NoWaitFetch => match reply {
                ReplyKind::PageData { version } => {
                    let sends = self.install_fetched(cache, page, version, PageLock::Read, false);
                    self.record_read(page, version);
                    Ok(sends)
                }
                ReplyKind::Aborted => Err(if self.txn_aborted {
                    self.abort_kind
                } else {
                    AbortKind::Deadlock
                }),
                other => unreachable!("unexpected no-wait fetch reply {other:?}"),
            },
        }
    }

    // ---- UpdateObject ---------------------------------------------------

    /// One `UpdateObject` protocol step for `page` (which this
    /// transaction has already read).
    pub fn write_step(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        match self.algorithm {
            Algorithm::TwoPhase { .. } | Algorithm::Callback => self.write_locking(cache, page),
            Algorithm::Certification { .. } => {
                // Deferred updates: purely local; ship at commit.
                let st = cache
                    .peek_mut(page)
                    .expect("updated page was read by this transaction");
                st.dirty = true;
                st.pinned = true;
                Action::Local {
                    note: Some(LocalNote::Write),
                }
            }
            Algorithm::NoWait { .. } => {
                let st = cache
                    .peek_mut(page)
                    .expect("updated page was read by this transaction");
                if st.lock == PageLock::Write {
                    // X already requested for this page.
                    Action::Local { note: None }
                } else {
                    st.lock = PageLock::Write;
                    st.dirty = true;
                    let version = st.version;
                    self.ops_sent += 1;
                    Action::Async(C2S::LockFetch {
                        txn: self.txn,
                        page,
                        mode: Mode::X,
                        cached_version: Some(version),
                        wait: false,
                        op: 0,
                    })
                }
            }
        }
    }

    fn write_locking(&mut self, cache: &mut ClientCache, page: PageId) -> Action {
        let st = cache
            .peek_mut(page)
            .expect("updated page was read by this transaction");
        if st.lock == PageLock::Write {
            st.dirty = true;
            return Action::Local { note: None };
        }
        if st.retained && st.retained_write {
            // Write-retention variant: the client already holds an
            // exclusive lock across transactions — update locally with
            // no server message at all.
            st.lock = PageLock::Write;
            st.dirty = true;
            return Action::Local {
                note: Some(LocalNote::Write),
            };
        }
        let version = st.version;
        let op = self.fresh_op();
        self.ops_sent += 1;
        Action::Sync(SyncOp {
            kind: OpKind::LockRead, // unused: write replies go to apply_write_reply
            op,
            msg: C2S::LockFetch {
                txn: self.txn,
                page,
                mode: Mode::X,
                cached_version: Some(version),
                wait: true,
                op,
            },
        })
    }

    /// Apply the reply to a synchronous write upgrade.
    pub fn apply_write_reply(
        &mut self,
        cache: &mut ClientCache,
        page: PageId,
        reply: ReplyKind,
    ) -> Result<Vec<C2S>, AbortKind> {
        match reply {
            ReplyKind::Valid => {
                let st = cache.peek_mut(page).expect("upgraded page is cached");
                st.lock = PageLock::Write;
                st.dirty = true;
                Ok(Vec::new())
            }
            ReplyKind::PageData { version } => {
                // Defensive: under S locks / retained locks the copy cannot
                // have gone stale; the oracle would flag a protocol bug.
                let sends = self.install_fetched(cache, page, version, PageLock::Write, false);
                cache.peek_mut(page).expect("just installed").dirty = true;
                Ok(sends)
            }
            ReplyKind::Aborted => Err(AbortKind::Deadlock),
            ReplyKind::Committed { .. } => unreachable!("commit reply to an upgrade"),
        }
    }

    // ---- CommitXact -----------------------------------------------------

    /// The commit step: local for a callback-locking transaction that ran
    /// entirely on retained locks and wrote nothing (this is where
    /// callback locking wins at high locality), a `Commit` message
    /// otherwise.
    pub fn commit_step(&mut self, cache: &ClientCache) -> CommitAction {
        let dirty = cache.dirty_pages();
        if matches!(self.algorithm, Algorithm::Callback) && self.ops_sent == 0 && dirty.is_empty() {
            return CommitAction::Local;
        }
        let op = self.fresh_op();
        let msg = C2S::Commit {
            txn: self.txn,
            read_set: self.read_versions.clone(),
            dirty: dirty.clone(),
            ops_sent: self.ops_sent,
            op,
        };
        CommitAction::Send { op, dirty, msg }
    }

    /// Apply the commit reply; `Ok` carries the new version the written
    /// pages were stamped with.
    pub fn apply_commit_reply(
        &mut self,
        cache: &mut ClientCache,
        dirty: &[PageId],
        reply: ReplyKind,
    ) -> Result<u64, AbortKind> {
        match reply {
            ReplyKind::Committed { new_version } => {
                for &page in dirty {
                    if let Some(st) = cache.peek_mut(page) {
                        st.version = new_version;
                    }
                }
                Ok(new_version)
            }
            ReplyKind::Aborted => Err(if self.txn_aborted {
                self.abort_kind
            } else {
                match self.algorithm {
                    Algorithm::Certification { .. } => AbortKind::Validation,
                    Algorithm::NoWait { .. } => AbortKind::StaleRead,
                    _ => AbortKind::Deadlock,
                }
            }),
            other => unreachable!("unexpected commit reply {other:?}"),
        }
    }

    // ---- asynchronous server messages -----------------------------------

    /// Handle an asynchronous server message (callback, restart order,
    /// pushed update, invalidation, or a stale reply from an op of an
    /// aborted attempt).
    pub fn handle_async(&mut self, cache: &mut ClientCache, msg: S2C) -> AsyncOut {
        let mut out = AsyncOut::default();
        match msg {
            S2C::Callback { page } => {
                let release = match cache.peek_mut(page) {
                    Some(st) if st.lock != PageLock::None => false,
                    Some(st) => {
                        st.retained = false;
                        st.retained_write = false;
                        true
                    }
                    None => true,
                };
                out.callback_answer = Some((page, release));
                if release {
                    out.sends.push(C2S::CallbackReply {
                        page,
                        released: true,
                        blocker: None,
                    });
                } else {
                    self.deferred_callbacks.push(page);
                    out.sends.push(C2S::CallbackReply {
                        page,
                        released: false,
                        blocker: Some(self.txn),
                    });
                }
            }
            S2C::Restart {
                txn,
                kind,
                stale_page,
            } => {
                // The stale page is dropped regardless of which attempt the
                // message is about: the copy is out of date either way.
                if let Some(page) = stale_page {
                    cache.invalidate(page);
                }
                if txn == self.txn && !self.txn_aborted {
                    self.txn_aborted = true;
                    self.abort_kind = kind;
                }
            }
            S2C::Update { pages, version } => {
                for page in pages {
                    if let Some(st) = cache.peek_mut(page) {
                        // Pages the running transaction already touched are
                        // left alone: if they are stale the server will
                        // restart the transaction anyway.
                        if st.lock == PageLock::None && !st.dirty {
                            st.version = version;
                            st.checked = false;
                        }
                    }
                }
            }
            S2C::Invalidate { pages } => {
                for page in pages {
                    let drop_it = match cache.peek(page) {
                        Some(st) => st.lock == PageLock::None && !st.dirty,
                        None => false,
                    };
                    if drop_it {
                        cache.invalidate(page);
                    }
                }
            }
            // Stale reply from an op of an aborted attempt.
            S2C::Reply { .. } => {}
        }
        out
    }

    // ---- attempt end ----------------------------------------------------

    /// Post-commit bookkeeping; returns the deferred-callback releases to
    /// send.
    pub fn finish_commit(&mut self, cache: &mut ClientCache) -> Vec<C2S> {
        let retain = matches!(self.algorithm, Algorithm::Callback);
        let retain_writes = retain && self.tuning.retain_write_locks;
        cache.end_txn(retain, retain_writes);
        if !self.algorithm.inter_transaction() {
            cache.clear();
        }
        self.release_deferred(cache)
    }

    /// Post-abort bookkeeping: locally updated pages hold uncommitted data
    /// and are invalidated; transaction lock marks are dropped (the server
    /// already released the real locks without retention). Returns the
    /// deferred-callback releases to send.
    pub fn abort_cleanup(&mut self, cache: &mut ClientCache) -> Vec<C2S> {
        for page in cache.dirty_pages() {
            cache.invalidate(page);
        }
        cache.end_txn(false, false);
        if !self.algorithm.inter_transaction() {
            cache.clear();
        }
        self.release_deferred(cache)
    }

    /// Honour callbacks deferred to the end of this transaction.
    fn release_deferred(&mut self, cache: &mut ClientCache) -> Vec<C2S> {
        let deferred = std::mem::take(&mut self.deferred_callbacks);
        let mut sends = Vec::new();
        for page in deferred {
            if let Some(st) = cache.peek_mut(page) {
                st.retained = false;
                st.retained_write = false;
            }
            sends.push(C2S::ReleaseRetained { page });
        }
        sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    fn setup(algorithm: Algorithm) -> (ClientCore, ClientCache) {
        (
            ClientCore::new(ClientId(0), algorithm, Tuning::default()),
            ClientCache::new(8),
        )
    }

    #[test]
    fn txn_ids_are_unique_per_client() {
        let (mut c, _) = setup(Algorithm::Callback);
        let t1 = c.begin_attempt();
        let t2 = c.begin_attempt();
        assert_ne!(t1, t2);
        let mut other = ClientCore::new(ClientId(1), Algorithm::Callback, Tuning::default());
        assert_ne!(other.begin_attempt(), t1);
    }

    #[test]
    fn locking_cold_read_then_cached_read() {
        let (mut c, mut cache) = setup(Algorithm::TwoPhase { inter: true });
        c.begin_attempt();
        // Cold miss: a synchronous LockFetch with no cached version.
        let Action::Sync(sop) = c.read_step(&mut cache, page(1)) else {
            panic!("cold read must go to the server");
        };
        assert!(matches!(
            sop.msg,
            C2S::LockFetch {
                cached_version: None,
                wait: true,
                ..
            }
        ));
        let sends = c
            .apply_read_reply(
                &mut cache,
                sop.kind,
                page(1),
                ReplyKind::PageData { version: 3 },
            )
            .unwrap();
        assert!(sends.is_empty());
        // Same page again: local (lock held).
        assert!(matches!(
            c.read_step(&mut cache, page(1)),
            Action::Local {
                note: Some(LocalNote::Read)
            }
        ));
    }

    #[test]
    fn callback_retained_read_is_local() {
        let (mut c, mut cache) = setup(Algorithm::Callback);
        c.begin_attempt();
        let mut st = CachedPage::fresh(5);
        st.retained = true;
        cache.install(page(2), st);
        assert!(matches!(
            c.read_step(&mut cache, page(2)),
            Action::Local {
                note: Some(LocalNote::Read)
            }
        ));
        // Pure retained-lock transaction commits locally.
        assert!(matches!(c.commit_step(&cache), CommitAction::Local));
    }

    #[test]
    fn no_wait_writes_are_async() {
        let (mut c, mut cache) = setup(Algorithm::NoWait { notify: false });
        c.begin_attempt();
        cache.install(page(3), CachedPage::fresh(1));
        // Optimistic read on a cached page.
        assert!(matches!(c.read_step(&mut cache, page(3)), Action::Async(_)));
        // First write: async X request; second: local.
        assert!(matches!(
            c.write_step(&mut cache, page(3)),
            Action::Async(_)
        ));
        assert!(matches!(
            c.write_step(&mut cache, page(3)),
            Action::Local { note: None }
        ));
        assert_eq!(c.ops_sent(), 2);
    }

    #[test]
    fn restart_marks_current_attempt_only() {
        let (mut c, mut cache) = setup(Algorithm::NoWait { notify: false });
        let t1 = c.begin_attempt();
        cache.install(page(4), CachedPage::fresh(0));
        let out = c.handle_async(
            &mut cache,
            S2C::Restart {
                txn: TxnId(999),
                kind: AbortKind::StaleRead,
                stale_page: Some(page(4)),
            },
        );
        assert!(out.sends.is_empty());
        assert!(c.abort_pending().is_ok()); // different txn
        assert!(cache.peek(page(4)).is_none()); // stale page dropped anyway
        c.handle_async(
            &mut cache,
            S2C::Restart {
                txn: t1,
                kind: AbortKind::StaleRead,
                stale_page: None,
            },
        );
        assert_eq!(c.abort_pending(), Err(AbortKind::StaleRead));
    }

    #[test]
    fn callback_deferred_while_locked() {
        let (mut c, mut cache) = setup(Algorithm::Callback);
        c.begin_attempt();
        let mut st = CachedPage::fresh(1);
        st.retained = true;
        st.lock = PageLock::Read;
        cache.install(page(5), st);
        let out = c.handle_async(&mut cache, S2C::Callback { page: page(5) });
        assert_eq!(out.callback_answer, Some((page(5), false)));
        assert!(matches!(
            out.sends.as_slice(),
            [C2S::CallbackReply {
                released: false,
                blocker: Some(_),
                ..
            }]
        ));
        // End of transaction honours the deferral.
        let sends = c.finish_commit(&mut cache);
        assert!(matches!(sends.as_slice(), [C2S::ReleaseRetained { .. }]));
        assert!(!cache.peek(page(5)).unwrap().retained);
    }
}
