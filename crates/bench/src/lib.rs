//! Shared machinery for the figure/table benchmark harnesses.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure
//! family from the paper's evaluation. Targets are plain `main` programs
//! (`harness = false`) that print the same rows/series the paper reports.
//!
//! Environment knobs:
//!
//! * `CCDB_QUICK=1` — short windows (10 s warm-up, 60 s measurement) for a
//!   fast smoke pass; default is 30 s + 300 s.
//! * `CCDB_SEED=N` — override the base seed.
//! * `CCDB_CSV_DIR=path` — additionally write every printed figure as a
//!   CSV file under `path` (for external plotting).
//! * `CCDB_JOBS=N` / `--jobs N` (harness argv) — worker threads for
//!   [`BenchCtl::run_many`]; defaults to `available_parallelism()`, and
//!   `1` forces the strictly serial path. Output is identical for every
//!   worker count.

use ccdb_core::{run_simulation, RunReport, SimConfig};
use ccdb_des::SimDuration;
use ccdb_sweep::{resolve_workers, run_indexed};

mod suite;

pub use suite::{bench_delta_table, check_bench, run_bench, utc_date, BENCH_SCHEMA};

/// Run control shared by the harnesses.
#[derive(Clone, Copy, Debug)]
pub struct BenchCtl {
    /// Warm-up excluded from statistics.
    pub warmup: SimDuration,
    /// Measured window.
    pub measure: SimDuration,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for [`BenchCtl::run_many`] (1 = serial).
    pub jobs: usize,
}

impl BenchCtl {
    /// Read the environment knobs and the harness's own `--jobs N` flag.
    pub fn from_env() -> Self {
        let quick = std::env::var_os("CCDB_QUICK").is_some();
        let seed = std::env::var("CCDB_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xCCDB);
        let jobs = resolve_workers(jobs_from_args(std::env::args()));
        if quick {
            BenchCtl {
                warmup: SimDuration::from_secs(10),
                measure: SimDuration::from_secs(60),
                seed,
                jobs,
            }
        } else {
            BenchCtl {
                warmup: SimDuration::from_secs(30),
                measure: SimDuration::from_secs(300),
                seed,
                jobs,
            }
        }
    }

    /// Apply the run control to a configuration and execute it.
    pub fn run(&self, cfg: SimConfig) -> RunReport {
        run_simulation(
            cfg.with_seed(self.seed)
                .with_horizon(self.warmup, self.measure),
        )
    }

    /// Like [`BenchCtl::run`] but with the measurement window scaled by
    /// `factor` (interactive experiments need longer windows because each
    /// transaction takes ~56 s).
    pub fn run_scaled(&self, cfg: SimConfig, factor: u64) -> RunReport {
        run_simulation(
            cfg.with_seed(self.seed)
                .with_horizon(self.warmup, self.measure * factor),
        )
    }

    /// Run a batch of configurations on [`BenchCtl::jobs`] worker threads
    /// and return the reports in input order. Each run is a pure function
    /// of its configuration, so the result — like [`BenchCtl::run`] called
    /// in a loop — is identical for every worker count.
    pub fn run_many(&self, cfgs: Vec<SimConfig>) -> Vec<RunReport> {
        let prepared: Vec<SimConfig> = cfgs
            .into_iter()
            .map(|cfg| {
                cfg.with_seed(self.seed)
                    .with_horizon(self.warmup, self.measure)
            })
            .collect();
        run_indexed(
            &prepared,
            self.jobs,
            |_, cfg| run_simulation(cfg.clone()),
            |_, _| {},
        )
    }
}

/// Extract `--jobs N` from a harness's argument list (`cargo bench --
/// --jobs 4` forwards it). Unparsable or missing values fall through to
/// the `CCDB_JOBS` / `available_parallelism()` defaults.
fn jobs_from_args(args: impl Iterator<Item = String>) -> Option<usize> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            return args.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0);
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().ok().filter(|&n| n > 0);
        }
    }
    None
}

/// One plotted series: a label and (x, y) points.
pub struct Series {
    /// Legend label (algorithm name).
    pub label: String,
    /// Points, e.g. (clients, response time).
    pub points: Vec<(f64, f64)>,
}

/// Print a figure as an aligned text table: one row per x value, one
/// column per series. With `CCDB_CSV_DIR` set, also writes
/// `<dir>/<slug(title)>.csv`.
pub fn print_figure(title: &str, x_label: &str, y_label: &str, series: &[Series]) {
    if let Some(dir) = std::env::var_os("CCDB_CSV_DIR") {
        if let Err(e) = write_csv(std::path::Path::new(&dir), title, x_label, series) {
            eprintln!("warning: could not write CSV for {title}: {e}");
        }
    }
    println!();
    println!("== {title} ==");
    println!("   ({y_label})");
    print!("{x_label:>10}");
    for s in series {
        print!(" {:>10}", s.label);
    }
    println!();
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| *x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        if x.fract() == 0.0 {
            print!("{:>10}", *x as i64);
        } else {
            print!("{x:>10.2}");
        }
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => print!(" {y:>10.3}"),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
}

/// Write one figure as CSV: header `x,label1,label2,...`, one row per x.
fn write_csv(
    dir: &std::path::Path,
    title: &str,
    x_label: &str,
    series: &[Series],
) -> std::io::Result<()> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let mut f = std::fs::File::create(dir.join(format!("{slug}.csv")))?;
    write!(f, "{x_label}")?;
    for s in series {
        write!(f, ",{}", s.label)?;
    }
    writeln!(f)?;
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|(x, _)| *x).collect())
        .unwrap_or_default();
    for (i, x) in xs.iter().enumerate() {
        write!(f, "{x}")?;
        for s in series {
            match s.points.get(i) {
                Some((_, y)) => write!(f, ",{y}")?,
                None => write!(f, ",")?,
            }
        }
        writeln!(f)?;
    }
    Ok(())
}

/// Print a one-line summary of a run (used for ancillary statistics).
pub fn print_detail(r: &RunReport) {
    println!(
        "   {:<5} clients={:<3} resp={:.3}s ci95={:.3} tput={:.2}/s commits={} aborts={} \
         (dl={} stale={} val={}) msgs/commit={:.1} cpuS={:.0}% net={:.0}% disk={:.0}% \
         log={:.0}% hit={:.0}% bufhit={:.0}%",
        r.algorithm.label(),
        r.n_clients,
        r.resp_time_mean,
        r.resp_time_ci95,
        r.throughput,
        r.commits,
        r.aborts,
        r.deadlock_aborts,
        r.stale_aborts,
        r.validation_aborts,
        r.msgs_per_commit,
        r.server_cpu_util * 100.0,
        r.net_util * 100.0,
        r.data_disk_util * 100.0,
        r.log_disk_util * 100.0,
        r.cache_hit_ratio * 100.0,
        r.buffer_hit_ratio * 100.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctl_from_env_has_positive_windows() {
        let ctl = BenchCtl::from_env();
        assert!(ctl.measure > SimDuration::ZERO);
        assert!(ctl.warmup > SimDuration::ZERO);
        assert!(ctl.jobs >= 1);
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse = |args: &[&str]| jobs_from_args(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["bench", "--jobs", "4"]), Some(4));
        assert_eq!(parse(&["bench", "--jobs=2"]), Some(2));
        assert_eq!(parse(&["bench"]), None);
        assert_eq!(parse(&["bench", "--jobs", "zero"]), None);
        assert_eq!(parse(&["bench", "--jobs", "0"]), None);
    }

    #[test]
    fn run_many_matches_serial_runs() {
        let ctl = BenchCtl {
            warmup: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(4),
            seed: 7,
            jobs: 3,
        };
        let cfgs: Vec<SimConfig> = [2u32, 4]
            .iter()
            .map(|&c| {
                ccdb_core::experiments::short_txn(ccdb_core::Algorithm::Callback, c, 0.25, 0.2)
            })
            .collect();
        let many = ctl.run_many(cfgs.clone());
        for (cfg, parallel) in cfgs.into_iter().zip(&many) {
            let serial = ctl.run(cfg);
            assert_eq!(serial.commits, parallel.commits);
            assert_eq!(serial.resp_time_mean, parallel.resp_time_mean);
        }
    }

    #[test]
    fn figure_printer_handles_empty_and_simple() {
        print_figure("empty", "x", "y", &[]);
        print_figure(
            "one",
            "clients",
            "seconds",
            &[Series {
                label: "CB".into(),
                points: vec![(2.0, 0.1), (10.0, 0.2)],
            }],
        );
    }
}

#[cfg(test)]
mod csv_tests {
    use super::*;

    #[test]
    fn csv_dump_writes_files() {
        let dir = std::env::temp_dir().join("ccdb_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_csv(
            &dir,
            "Figure 9(b): response time, Loc=0.25",
            "clients",
            &[Series {
                label: "CB".into(),
                points: vec![(2.0, 0.5), (10.0, 0.7)],
            }],
        )
        .unwrap();
        let content =
            std::fs::read_to_string(dir.join("figure_9_b_response_time_loc_0_25.csv")).unwrap();
        assert!(content.starts_with("clients,CB\n"));
        assert!(content.contains("2,0.5"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
