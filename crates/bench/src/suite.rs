//! The `ccdb bench` suite: a pinned workload matrix over the profiled
//! kernel, exported as a versioned `ccdb.bench/v1` document.
//!
//! Each case runs one simulation with kernel self-profiling on
//! ([`ccdb_core::run_simulation_profiled`]) and records two very
//! different kinds of numbers:
//!
//! * **exact** — per-[`EventKind`] dispatch counts, commits, total
//!   events. These are a pure function of the configuration and must
//!   match the committed baseline bit-for-bit on any machine; a mismatch
//!   means the simulator's behaviour changed.
//! * **wall-clock** — seconds, events/sec, per-kind poll nanos. These
//!   vary by host; [`check_bench`] only flags a throughput drop beyond a
//!   tolerance (20 % by default in `scripts/smoke/bench.sh`).
//!
//! The last DES case samples a metric time series and reports the
//! retained buffer footprint (`peak_series_bytes`), so series-memory
//! regressions show up in the same trajectory. Documents are written as
//! `BENCH_<date>.json` (see [`utc_date`]) and tracked in git.
//!
//! After the DES matrix, the `server_*` cases (marked `realtime: true`)
//! stand up the actual reactor page-server on a loopback socket, drive
//! it with the load generator, and record real-socket events/sec next to
//! `des_events_per_sec` — the profiled-kernel rate of the matching DES
//! case. Their commit counts are deterministic (clients × txns) and
//! exact-checked, but their message counts depend on socket scheduling,
//! so [`check_bench`] skips the exact-events comparison for them while
//! still applying the throughput-regression gate. They are excluded from
//! `totals`, which stays a pure DES number.

use std::time::{Duration, Instant};

use ccdb_core::{
    experiments, run_simulation_observed, run_simulation_profiled, run_simulation_profiled_jobs,
    Algorithm, ObsOptions, SimConfig, Trace,
};
use ccdb_des::{EventKind, SimDuration};
use ccdb_obs::Json;
use ccdb_server::{load, serve, LoadOptions, ServeOptions};

use crate::BenchCtl;

/// Schema tag of the bench document.
pub const BENCH_SCHEMA: &str = "ccdb.bench/v1";

/// One case of the pinned matrix: a stable name and its configuration.
/// The final case additionally samples a metric series.
fn matrix(ctl: &BenchCtl) -> Vec<(&'static str, SimConfig)> {
    let horizon = |cfg: SimConfig| {
        cfg.with_seed(ctl.seed)
            .with_horizon(ctl.warmup, ctl.measure)
    };
    vec![
        (
            "short_c2pl_25",
            horizon(experiments::short_txn(
                Algorithm::TwoPhase { inter: true },
                25,
                0.25,
                0.2,
            )),
        ),
        (
            "short_cb_25",
            horizon(experiments::short_txn(Algorithm::Callback, 25, 0.25, 0.2)),
        ),
        (
            "short_occ_25",
            horizon(experiments::short_txn(
                Algorithm::Certification { inter: false },
                25,
                0.25,
                0.2,
            )),
        ),
        (
            "short_nwn_50",
            horizon(experiments::short_txn(
                Algorithm::NoWait { notify: true },
                50,
                0.25,
                0.2,
            )),
        ),
        (
            // The same workload as short_cb_25 through the windowed
            // dispatcher (4 kernel workers): counters must match the
            // serial case bit-for-bit, wall-clock shows the window tax.
            "par_window_cb_25",
            horizon(experiments::short_txn(Algorithm::Callback, 25, 0.25, 0.2)),
        ),
        (
            // Service-task-heavy: 50 callback clients hammering a 10% hot
            // region. Every client caches the hot pages, so each update
            // commit broadcasts invalidations to ~all clients in one
            // instant — dense same-instant bursts of packet-train and disk
            // service tasks, the workload the dispatch window is for.
            "svc_cb_50",
            horizon(svc_heavy_config()),
        ),
        (
            // The same service-heavy workload through the windowed
            // dispatcher: exact counters must match svc_cb_50 bit-for-bit;
            // events/sec is the headline window-win number.
            "par_svc_cb_50",
            horizon(svc_heavy_config()),
        ),
        (
            "short_cb_25_sampled",
            horizon(experiments::short_txn(Algorithm::Callback, 25, 0.25, 0.2)),
        ),
    ]
}

/// Kernel dispatch workers for the `par_*` cases.
const WINDOW_JOBS: usize = 4;

/// The realtime `server_*` cases: stable name, algorithm, engine shards,
/// and the DES matrix case whose events/sec rides along as the
/// simulated prediction for the same algorithm family.
fn server_matrix() -> Vec<(&'static str, Algorithm, u32, &'static str)> {
    vec![
        ("server_cb_shard1", Algorithm::Callback, 1, "short_cb_25"),
        ("server_cb_shard4", Algorithm::Callback, 4, "short_cb_25"),
        (
            "server_occ_shard4",
            Algorithm::Certification { inter: false },
            4,
            "short_occ_25",
        ),
    ]
}

/// Stand up the reactor on an ephemeral loopback port, drive it with the
/// load generator, and report real-socket numbers. `events` is the
/// server-side message count (from the wire trace), which depends on
/// socket scheduling — hence `realtime: true`, which tells
/// [`check_bench`] to compare only the deterministic `commits`.
#[allow(clippy::too_many_arguments)]
fn run_server_case(
    name: &str,
    algorithm: Algorithm,
    engine_shards: u32,
    clients: u32,
    txns: u32,
    seed: u64,
    des_case: &str,
    des_events_per_sec: f64,
) -> Json {
    let dir = std::env::temp_dir().join(format!("ccdb-bench-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let port_file = dir.join("port");
    let trace_path = dir.join("trace.jsonl");

    let mut sopts = ServeOptions::new(algorithm);
    sopts.clients = clients;
    sopts.once = true;
    sopts.engine_shards = engine_shards;
    sopts.port_file = Some(port_file.clone());
    sopts.trace = Some(trace_path.clone());
    let server = std::thread::spawn(move || serve(&sopts));

    let mut tries = 0;
    let port: u16 = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            break s.trim().parse().expect("port file is atomic");
        }
        tries += 1;
        assert!(tries < 2_000, "bench server never published its port");
        std::thread::sleep(Duration::from_millis(5));
    };

    let started = Instant::now();
    let summary = load(&LoadOptions {
        addr: format!("127.0.0.1:{port}"),
        clients,
        txns,
        seed,
    })
    .expect("bench load run failed");
    let commits = server
        .join()
        .expect("bench server thread panicked")
        .expect("bench server failed");
    let wall_s = started.elapsed().as_secs_f64();
    assert_eq!(
        commits,
        u64::from(clients) * u64::from(txns),
        "server case {name} lost commits"
    );

    // Server-side wire messages: trace lines minus header and footer.
    let messages = std::fs::read_to_string(&trace_path)
        .expect("read bench trace")
        .lines()
        .count()
        .saturating_sub(2) as u64;
    std::fs::remove_dir_all(&dir).ok();

    let mut case = Json::obj();
    case.set("name", name)
        .set("alg", algorithm.label())
        .set("clients", u64::from(clients))
        .set("txns", u64::from(txns))
        .set("engine_shards", u64::from(engine_shards))
        .set("realtime", true)
        .set("events", messages)
        .set("commits", commits)
        .set("aborts", summary.aborts)
        .set("pages_verified", summary.pages_verified)
        .set("wall_s", wall_s)
        .set("events_per_sec", messages as f64 / wall_s.max(1e-9))
        .set("des_case", des_case)
        .set("des_events_per_sec", des_events_per_sec);
    case
}

/// The service-task-heavy workload behind `svc_cb_50` / `par_svc_cb_50`:
/// callback locking, 50 clients, and a 10% hot region taking 70% of
/// accesses, so invalidation broadcasts (and the disk traffic they cause)
/// arrive as wide same-instant service-task windows.
fn svc_heavy_config() -> SimConfig {
    let mut cfg = experiments::short_txn(Algorithm::Callback, 50, 0.25, 0.5);
    cfg.db = cfg.db.with_skew(ccdb_model::AccessSkew {
        hot_fraction: 0.1,
        hot_access_prob: 0.7,
    });
    cfg
}

/// Run the pinned matrix and build the `ccdb.bench/v1` document.
///
/// `quick` is recorded in the document so [`check_bench`] refuses to
/// compare a quick run against a full baseline.
pub fn run_bench(ctl: &BenchCtl, quick: bool) -> Json {
    let cases = matrix(ctl);
    let mut out_cases: Vec<Json> = Vec::with_capacity(cases.len());
    let (mut total_events, mut total_wall) = (0u64, 0.0f64);
    for (name, cfg) in cases {
        let sampled = name.ends_with("_sampled");
        let alg = cfg.algorithm;
        let clients = cfg.sys.n_clients;
        let started = Instant::now();
        let (report, profile, series_bytes) = if sampled {
            // The sampled case measures the observability tax and the
            // retained series footprint rather than kernel dispatch.
            let obs = ObsOptions {
                sample_interval: Some(SimDuration::from_secs_f64(cfg.measure.as_secs_f64() / 64.0)),
                ..ObsOptions::default()
            };
            let observed = run_simulation_observed(cfg, Trace::disabled(), obs);
            let bytes = observed
                .series
                .as_ref()
                .map(|s| (s.names().len() + 2) * s.len() * 8)
                .unwrap_or(0);
            (observed.report, None, bytes)
        } else if name.starts_with("par_") {
            let profiled = run_simulation_profiled_jobs(cfg, WINDOW_JOBS);
            (profiled.report, Some(profiled.profile), 0)
        } else {
            let profiled = run_simulation_profiled(cfg);
            (profiled.report, Some(profiled.profile), 0)
        };
        let wall_s = started.elapsed().as_secs_f64();
        total_events += report.events;
        total_wall += wall_s;

        let mut case = Json::obj();
        case.set("name", name)
            .set("alg", alg.label())
            .set("clients", clients as u64)
            .set("events", report.events)
            .set("commits", report.commits)
            .set("wall_s", wall_s)
            .set("events_per_sec", report.events as f64 / wall_s.max(1e-9));
        if let Some(profile) = profile {
            let mut kinds = Json::obj();
            for kind in EventKind::ALL {
                let mut k = Json::obj();
                k.set("count", profile.count(kind))
                    .set("nanos", profile.nanos(kind));
                kinds.set(kind.label(), k);
            }
            case.set("kinds", kinds);
        }
        if sampled {
            case.set("peak_series_bytes", series_bytes as u64);
        }
        out_cases.push(case);
    }

    // Realtime server cases: the actual reactor over loopback, reported
    // beside the DES prediction but kept out of the DES-only totals.
    let (srv_clients, srv_txns) = if quick { (4, 50) } else { (4, 200) };
    for (name, alg, shards, des_case) in server_matrix() {
        let des_rate = out_cases
            .iter()
            .find(|c| c.get("name").and_then(|n| n.as_str()) == Some(des_case))
            .and_then(|c| c.get("events_per_sec"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        out_cases.push(run_server_case(
            name,
            alg,
            shards,
            srv_clients,
            srv_txns,
            ctl.seed,
            des_case,
            des_rate,
        ));
    }

    let mut doc = Json::obj();
    doc.set("schema", BENCH_SCHEMA)
        .set("quick", quick)
        .set("seed", ctl.seed)
        .set("warmup_s", ctl.warmup.as_secs_f64())
        .set("measure_s", ctl.measure.as_secs_f64())
        .set("cases", out_cases);
    let mut totals = Json::obj();
    totals
        .set("events", total_events)
        .set("wall_s", total_wall)
        .set("events_per_sec", total_events as f64 / total_wall.max(1e-9));
    doc.set("totals", totals);
    doc
}

fn case_map(doc: &Json) -> Result<Vec<(&str, &Json)>, String> {
    let cases = doc.get("cases").ok_or("bench document has no cases")?;
    let Json::Arr(items) = cases else {
        return Err("bench cases is not an array".to_string());
    };
    items
        .iter()
        .map(|c| {
            c.get("name")
                .and_then(|n| n.as_str())
                .map(|n| (n, c))
                .ok_or_else(|| "bench case has no name".to_string())
        })
        .collect()
}

fn case_u64(case: &Json, key: &str, name: &str) -> Result<u64, String> {
    case.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("case {name} has no {key}"))
}

/// Compare a fresh bench document against a committed baseline.
///
/// Event and commit counts are deterministic, so they must match
/// **exactly** — any drift means the simulation changed and the baseline
/// needs a deliberate refresh. Wall-clock throughput may only regress:
/// a case more than `tolerance` (e.g. `0.2` = 20 %) below the baseline's
/// events/sec fails. Cases marked `realtime: true` (the `server_*`
/// socket runs) have scheduling-dependent message counts, so only their
/// `commits` are compared exactly; the throughput gate still applies.
/// Returns every violation, not just the first.
pub fn check_bench(current: &Json, baseline: &Json, tolerance: f64) -> Result<(), String> {
    let mut failures: Vec<String> = Vec::new();
    for (doc, which) in [(current, "current"), (baseline, "baseline")] {
        match doc.get("schema").and_then(|s| s.as_str()) {
            Some(BENCH_SCHEMA) => {}
            other => {
                return Err(format!(
                    "{which} document is not {BENCH_SCHEMA} (schema {other:?})"
                ))
            }
        }
    }
    let mode = |doc: &Json| doc.get("quick").map(|q| q.render());
    if mode(current) != mode(baseline) {
        return Err(
            "bench modes differ (one quick, one full); compare like against like".to_string(),
        );
    }

    let base_cases = case_map(baseline)?;
    let cur_cases = case_map(current)?;
    for (name, base) in &base_cases {
        let Some((_, cur)) = cur_cases.iter().find(|(n, _)| n == name) else {
            failures.push(format!("case {name}: missing from current run"));
            continue;
        };
        let realtime = base
            .get("realtime")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        let keys: &[&str] = if realtime {
            &["commits"]
        } else {
            &["events", "commits"]
        };
        for &key in keys {
            let (b, c) = (case_u64(base, key, name)?, case_u64(cur, key, name)?);
            if b != c {
                failures.push(format!(
                    "case {name}: {key} changed {b} -> {c} (simulation no longer \
                     reproduces the baseline; refresh BENCH_*.json deliberately)"
                ));
            }
        }
        let rate = |c: &Json| c.get("events_per_sec").and_then(|v| v.as_f64());
        if let (Some(b), Some(c)) = (rate(base), rate(cur)) {
            if c < b * (1.0 - tolerance) {
                failures.push(format!(
                    "case {name}: events/sec regressed {:.0} -> {:.0} \
                     (more than {:.0}% below baseline)",
                    b,
                    c,
                    tolerance * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The before/after throughput table `ccdb bench --check` prints: one
/// row per case present in both documents (baseline order), then the
/// totals row. Deltas are current-over-baseline events/sec; cases
/// missing a rate on either side are skipped.
pub fn bench_delta_table(current: &Json, baseline: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>8}",
        "case", "base ev/s", "now ev/s", "delta"
    );
    let rate = |c: &Json| c.get("events_per_sec").and_then(|v| v.as_f64());
    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    if let (Ok(base_cases), Ok(cur_cases)) = (case_map(baseline), case_map(current)) {
        for (name, base) in &base_cases {
            let Some((_, cur)) = cur_cases.iter().find(|(n, _)| n == name) else {
                continue;
            };
            if let (Some(b), Some(c)) = (rate(base), rate(cur)) {
                rows.push((name.to_string(), b, c));
            }
        }
    }
    let totals = |doc: &Json| doc.get("totals").and_then(rate);
    if let (Some(b), Some(c)) = (totals(baseline), totals(current)) {
        rows.push(("total".to_string(), b, c));
    }
    for (name, b, c) in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>14.0} {:>14.0} {:>+7.1}%",
            name,
            b,
            c,
            (c / b.max(1e-9) - 1.0) * 100.0
        );
    }
    out
}

/// `YYYY-MM-DD` (UTC) from seconds since the Unix epoch, via the
/// days-to-civil algorithm — no external time crate.
pub fn utc_date(secs_since_epoch: u64) -> String {
    let days = (secs_since_epoch / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctl() -> BenchCtl {
        BenchCtl {
            warmup: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(4),
            seed: 0xCCDB,
            jobs: 1,
        }
    }

    #[test]
    fn bench_document_shape_and_self_check() {
        let doc = run_bench(&tiny_ctl(), true);
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(BENCH_SCHEMA)
        );
        let Some(Json::Arr(cases)) = doc.get("cases") else {
            panic!("cases array");
        };
        assert_eq!(cases.len(), 11);
        // Profiled cases attribute every dispatch to a kind.
        let first = &cases[0];
        let events = first.get("events").and_then(|v| v.as_u64()).unwrap();
        let Some(Json::Obj(kinds)) = first.get("kinds") else {
            panic!("kinds object");
        };
        let by_kind: u64 = kinds
            .iter()
            .map(|(_, k)| k.get("count").and_then(|v| v.as_u64()).unwrap())
            .sum();
        assert_eq!(by_kind, events);
        // The windowed case reproduces the serial case's counters exactly.
        let by_name = |n: &str| {
            cases
                .iter()
                .find(|c| c.get("name").unwrap().as_str() == Some(n))
        };
        for (s, w) in [
            ("short_cb_25", "par_window_cb_25"),
            ("svc_cb_50", "par_svc_cb_50"),
        ] {
            let serial = by_name(s).unwrap();
            let windowed = by_name(w).unwrap();
            for key in ["events", "commits"] {
                assert_eq!(
                    serial.get(key).unwrap().as_u64(),
                    windowed.get(key).unwrap().as_u64(),
                    "windowed dispatch must not change {key} ({s} vs {w})"
                );
            }
        }
        // The sampled case reports a positive series footprint, no kinds.
        let sampled = by_name("short_cb_25_sampled").unwrap();
        assert!(sampled.get("kinds").is_none());
        assert!(
            sampled
                .get("peak_series_bytes")
                .and_then(|v| v.as_u64())
                .unwrap()
                > 0
        );
        // The realtime server cases hit their commit quota over a real
        // socket, verify page images, and carry the DES prediction.
        for name in ["server_cb_shard1", "server_cb_shard4", "server_occ_shard4"] {
            let case = by_name(name).unwrap();
            assert_eq!(case.get("realtime").and_then(|v| v.as_bool()), Some(true));
            let clients = case.get("clients").unwrap().as_u64().unwrap();
            let txns = case.get("txns").unwrap().as_u64().unwrap();
            assert_eq!(
                case.get("commits").unwrap().as_u64(),
                Some(clients * txns),
                "{name} must commit its full quota"
            );
            assert!(case.get("pages_verified").unwrap().as_u64().unwrap() > 0);
            assert!(case.get("events_per_sec").unwrap().as_f64().unwrap() > 0.0);
            assert!(case.get("des_events_per_sec").unwrap().as_f64().unwrap() > 0.0);
        }
        // A document always passes against itself.
        check_bench(&doc, &doc, 0.2).unwrap();
        // And the delta table covers every case plus the totals row.
        let table = bench_delta_table(&doc, &doc);
        assert!(table.contains("par_window_cb_25"));
        assert!(table.contains("total"));
        assert!(table.contains("+0.0%"));
    }

    #[test]
    fn determinism_drift_and_regression_are_flagged() {
        let doc = run_bench(&tiny_ctl(), true);
        let rendered = doc.render();

        // A different events count is an exact-match failure.
        let events = doc.get("cases").unwrap();
        let Json::Arr(cases) = events else {
            unreachable!()
        };
        let n = cases[0].get("events").and_then(|v| v.as_u64()).unwrap();
        let drifted =
            Json::parse(&rendered.replacen(&format!("\"events\":{n}"), "\"events\":1", 1)).unwrap();
        let err = check_bench(&drifted, &doc, 0.2).unwrap_err();
        assert!(err.contains("events changed"), "{err}");

        // Comparing quick against full is refused outright.
        let full = Json::parse(&rendered.replacen("\"quick\":true", "\"quick\":false", 1)).unwrap();
        assert!(check_bench(&full, &doc, 0.2)
            .unwrap_err()
            .contains("modes differ"));

        // Zero tolerance flags any slowdown; a generous all-cases pass is
        // exercised by the self-check above.
        let slow =
            Json::parse(&rendered.replace("\"events_per_sec\":", "\"events_per_sec_orig\":"))
                .unwrap();
        // Removing the rate skips the regression check rather than failing.
        check_bench(&slow, &slow, 0.0).unwrap();
    }

    #[test]
    fn realtime_cases_compare_commits_but_not_events() {
        let make = |events: u64, commits: u64, rate: f64| {
            let mut case = Json::obj();
            case.set("name", "server_x")
                .set("realtime", true)
                .set("events", events)
                .set("commits", commits)
                .set("events_per_sec", rate);
            let mut doc = Json::obj();
            doc.set("schema", BENCH_SCHEMA)
                .set("quick", true)
                .set("cases", Json::Arr(vec![case]));
            doc
        };
        // Socket message counts drift run to run; that must pass.
        check_bench(&make(900, 100, 50.0), &make(500, 100, 50.0), 0.2).unwrap();
        // Commits stay exact even for realtime cases.
        let err = check_bench(&make(500, 99, 50.0), &make(500, 100, 50.0), 0.2).unwrap_err();
        assert!(err.contains("commits changed"), "{err}");
        // And the throughput-regression gate still applies.
        let err = check_bench(&make(500, 100, 10.0), &make(500, 100, 50.0), 0.2).unwrap_err();
        assert!(err.contains("events/sec regressed"), "{err}");
    }

    #[test]
    fn civil_dates_from_epoch_seconds() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(86_399), "1970-01-01");
        assert_eq!(utc_date(86_400), "1970-01-02");
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(utc_date(1_786_147_200), "2026-08-08");
        // Leap day.
        assert_eq!(utc_date(951_782_400), "2000-02-29");
    }
}
