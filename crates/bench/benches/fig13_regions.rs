//! Figure 13: the algorithm-selection regions over the (write probability,
//! locality) plane for the short-transaction, server-bound system.
//!
//! The paper summarises §5.1 with a region diagram: upper-left (low W, low
//! locality) — no difference; lower-left (high locality, low W) — callback
//! locking; the rest — two-phase locking. We reproduce it by running every
//! grid cell with the maximum client population and naming the winner
//! (ties within 5% are reported as such).

use ccdb_bench::BenchCtl;
use ccdb_core::experiments;
use ccdb_core::Algorithm;

const CLIENTS: u32 = 50;
const TIE_MARGIN: f64 = 0.05;

fn main() {
    let ctl = BenchCtl::from_env();
    let locs = [0.05, 0.25, 0.50, 0.75];
    let pws = [0.0, 0.1, 0.2, 0.35, 0.5];
    println!("== Figure 13: best algorithm per (write probability, locality) cell ==");
    println!("   ({CLIENTS} clients, short transactions; ties within 5% shown as a/b)");
    print!("{:>10}", "loc \\ W");
    for pw in pws {
        print!(" {pw:>12}");
    }
    println!();
    for loc in locs {
        print!("{loc:>10}");
        for pw in pws {
            let mut best: Option<(Algorithm, f64)> = None;
            let mut second: Option<(Algorithm, f64)> = None;
            for alg in experiments::SECTION5_ALGORITHMS {
                let r = ctl.run(experiments::short_txn(alg, CLIENTS, loc, pw));
                let t = r.resp_time_mean;
                match best {
                    None => best = Some((alg, t)),
                    Some((_, bt)) if t < bt => {
                        second = best;
                        best = Some((alg, t));
                    }
                    _ => match second {
                        None => second = Some((alg, t)),
                        Some((_, st)) if t < st => second = Some((alg, t)),
                        _ => {}
                    },
                }
            }
            let (walg, wt) = best.expect("at least one algorithm ran");
            let cell = match second {
                Some((salg, st)) if (st - wt) / wt < TIE_MARGIN => {
                    format!("{}/{}", walg.label(), salg.label())
                }
                _ => walg.label().to_string(),
            };
            print!(" {cell:>12}");
        }
        println!();
    }
}
