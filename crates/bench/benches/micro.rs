//! Criterion micro-benchmarks of the substrates: simulation-kernel event
//! throughput, lock-manager operations, LRU/buffer operations, RNG
//! variates, and a small end-to-end simulation. These are engineering
//! benchmarks (not paper figures); they track the cost of the machinery
//! the experiments run on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use ccdb_core::{run_simulation, Algorithm, SimConfig};
use ccdb_des::{Facility, Mailbox, Pcg32, Sim, SimDuration};
use ccdb_lock::{ClientId, LockManager, Mode, TxnId};
use ccdb_model::{ClassId, PageId};
use ccdb_storage::{BufferManager, LruCore};

fn page(n: u32) -> PageId {
    PageId {
        class: ClassId(0),
        atom: n,
    }
}

fn kernel_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    const EVENTS: u64 = 100_000;
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("hold_chain", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let env = sim.env();
            sim.spawn(async move {
                for _ in 0..EVENTS {
                    env.hold(SimDuration::from_nanos(10)).await;
                }
            });
            sim.run();
            black_box(sim.events_processed())
        })
    });
    g.bench_function("facility_contention", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let env = sim.env();
            let cpu = Facility::new(&env, "cpu", 2);
            for _ in 0..10 {
                let cpu = cpu.clone();
                sim.spawn(async move {
                    for _ in 0..1_000 {
                        cpu.use_for(SimDuration::from_nanos(50)).await;
                    }
                });
            }
            sim.run();
            black_box(cpu.completions())
        })
    });
    g.bench_function("mailbox_ping_pong", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let env = sim.env();
            let a: Mailbox<u32> = Mailbox::new(&env);
            let z: Mailbox<u32> = Mailbox::new(&env);
            {
                let (a, z) = (a.clone(), z.clone());
                sim.spawn(async move {
                    for i in 0..5_000 {
                        a.send(i);
                        let _ = z.recv().await;
                    }
                });
            }
            {
                let (a, z) = (a.clone(), z.clone());
                sim.spawn(async move {
                    for _ in 0..5_000 {
                        let v = a.recv().await;
                        z.send(v);
                    }
                });
            }
            sim.run();
            black_box(a.total_sent())
        })
    });
    g.finish();
}

fn lock_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock");
    g.bench_function("grant_release_cycle", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for t in 0..100u64 {
                for p in 0..10u32 {
                    let _ = lm.request(TxnId(t), ClientId(t as u32), page(p * 7), Mode::S);
                }
                let _ = lm.release_all(TxnId(t), None);
            }
            black_box(lm.stats().requests)
        })
    });
    g.bench_function("conflict_queue_churn", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for round in 0..50u64 {
                let writer = TxnId(round * 3);
                let _ = lm.request(writer, ClientId(0), page(1), Mode::X);
                let _ = lm.request(TxnId(round * 3 + 1), ClientId(1), page(1), Mode::S);
                let _ = lm.request(TxnId(round * 3 + 2), ClientId(2), page(1), Mode::S);
                let (wakes, _) = lm.release_all(writer, None);
                for w in wakes {
                    let _ = lm.release_all(w.txn, None);
                }
            }
            black_box(lm.table_len())
        })
    });
    g.finish();
}

fn storage_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("lru_mixed_ops", |b| {
        b.iter(|| {
            let mut lru: LruCore<u32, u32> = LruCore::new();
            for i in 0..10_000u32 {
                lru.insert(i % 512, i);
                if i % 3 == 0 {
                    lru.touch(&(i % 512));
                }
                if i % 7 == 0 {
                    let _ = lru.pop_lru_where(|_, _| true);
                }
            }
            black_box(lru.len())
        })
    });
    g.bench_function("buffer_thrash", |b| {
        b.iter(|| {
            let mut buf = BufferManager::new(400);
            let mut rng = Pcg32::new(1, 1);
            for _ in 0..10_000 {
                let p = page(rng.below(2_000) as u32);
                if !buf.lookup(p) {
                    let _ = buf.admit(p);
                }
            }
            black_box(buf.stats().hits)
        })
    });
    g.finish();
}

fn rng_variates(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("exp_durations", |b| {
        let mut rng = Pcg32::new(7, 7);
        let mean = SimDuration::from_millis(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(rng.exp_duration(mean).as_nanos());
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for alg in [Algorithm::TwoPhase { inter: true }, Algorithm::Callback] {
        g.bench_function(format!("sim_20s_{}", alg.label()), |b| {
            b.iter(|| {
                let cfg = SimConfig::table5(alg)
                    .with_clients(10)
                    .with_locality(0.5)
                    .with_prob_write(0.2)
                    .with_horizon(SimDuration::from_secs(2), SimDuration::from_secs(18));
                black_box(run_simulation(cfg).commits)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    kernel_events,
    lock_manager,
    storage_structures,
    rng_variates,
    end_to_end
);
criterion_main!(benches);
