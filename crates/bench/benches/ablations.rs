//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! These are not paper figures; they probe the modelling decisions the
//! paper made (or explicitly declined):
//!
//! 1. **Buffer manager** (§1, points 1–4): the paper argues an explicit
//!    server buffer manager changes the results — sweep `BufferSize`.
//! 2. **Write-lock retention** (§2.3): the paper retains only read locks;
//!    compare against retaining write locks as write locks.
//! 3. **Notification mode** (§2.5): propagate updated pages (the paper's
//!    choice) vs invalidate.
//! 4. **Restart delay** (§3.4): the ACL adaptive delay vs immediate
//!    restart.
//! 5. **MPL admission** (§3.3.4): sweep the multiprogramming level under
//!    the Table 5 system.
//! 6. **Clustering** (§3.1): multi-page objects with `ClusterFactor`
//!    swept from 0 to 1.

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::config::Tuning;
use ccdb_core::{experiments, Algorithm, SimConfig};
use ccdb_model::{DatabaseSpec, TxnParams};

fn main() {
    let ctl = BenchCtl::from_env();

    // 1. Buffer size sweep (2PL, 30 clients, medium contention).
    {
        let mut points = Vec::new();
        for buf in [1usize, 50, 100, 200, 400, 800] {
            let mut cfg =
                experiments::short_txn(Algorithm::TwoPhase { inter: true }, 30, 0.25, 0.2);
            cfg.sys.buffer_size = buf;
            let r = ctl.run(cfg);
            points.push((buf as f64, r.resp_time_mean));
        }
        print_figure(
            "Ablation 1: server buffer pool size (C2PL, 30 clients, Loc=0.25, W=0.2)",
            "frames",
            "mean response time (s)",
            &[Series {
                label: "C2PL".into(),
                points,
            }],
        );
    }

    // 2. Write-lock retention for callback locking.
    {
        let mut base_series = Vec::new();
        let mut tuned_series = Vec::new();
        for &pw in &[0.0, 0.2, 0.5] {
            let cfg = experiments::short_txn(Algorithm::Callback, 30, 0.75, pw);
            let base = ctl.run(cfg.clone());
            let tuned = ctl.run(cfg.with_tuning(Tuning {
                retain_write_locks: true,
                ..Tuning::default()
            }));
            base_series.push((pw, base.resp_time_mean));
            tuned_series.push((pw, tuned.resp_time_mean));
        }
        print_figure(
            "Ablation 2: callback write-lock retention (30 clients, Loc=0.75)",
            "W",
            "mean response time (s)",
            &[
                Series {
                    label: "retain-S".into(),
                    points: base_series,
                },
                Series {
                    label: "retain-SX".into(),
                    points: tuned_series,
                },
            ],
        );
    }

    // 3. Notification mode: propagate vs invalidate (fast net, where
    // notification matters most).
    {
        let mut prop = Vec::new();
        let mut inval = Vec::new();
        for &clients in &experiments::CLIENT_SWEEP {
            let cfg = experiments::fast_net_fast_server(
                Algorithm::NoWait { notify: true },
                clients,
                0.25,
                0.5,
            );
            prop.push((clients as f64, ctl.run(cfg.clone()).resp_time_mean));
            inval.push((
                clients as f64,
                ctl.run(cfg.with_tuning(Tuning {
                    notify_invalidate: true,
                    ..Tuning::default()
                }))
                .resp_time_mean,
            ));
        }
        print_figure(
            "Ablation 3: notification mode (NWN, fast net+server, Loc=0.25, W=0.5)",
            "clients",
            "mean response time (s)",
            &[
                Series {
                    label: "propagate".into(),
                    points: prop,
                },
                Series {
                    label: "invalidate".into(),
                    points: inval,
                },
            ],
        );
    }

    // 4. Restart delay policy (no-wait, where restarts dominate).
    {
        let mut adaptive = Vec::new();
        let mut immediate = Vec::new();
        for &clients in &experiments::CLIENT_SWEEP {
            let cfg =
                experiments::short_txn(Algorithm::NoWait { notify: false }, clients, 0.25, 0.5);
            let a = ctl.run(cfg.clone());
            let b = ctl.run(cfg.with_tuning(Tuning {
                zero_restart_delay: true,
                ..Tuning::default()
            }));
            adaptive.push((clients as f64, a.resp_time_mean));
            immediate.push((clients as f64, b.resp_time_mean));
        }
        print_figure(
            "Ablation 4: restart delay policy (NW, Loc=0.25, W=0.5)",
            "clients",
            "mean response time (s)",
            &[
                Series {
                    label: "adaptive".into(),
                    points: adaptive,
                },
                Series {
                    label: "immediate".into(),
                    points: immediate,
                },
            ],
        );
    }

    // 5. MPL sweep under the Table 5 system (50 clients).
    {
        let mut points = Vec::new();
        let mut details = Vec::new();
        for &mpl in &[2u32, 5, 10, 25, 50] {
            let mut cfg =
                experiments::short_txn(Algorithm::TwoPhase { inter: true }, 50, 0.25, 0.5);
            cfg.sys.mpl = mpl;
            let r = ctl.run(cfg);
            points.push((mpl as f64, r.throughput));
            details.push(r);
        }
        print_figure(
            "Ablation 5: MPL admission under Table 5 (C2PL, 50 clients, W=0.5)",
            "MPL",
            "transactions per second",
            &[Series {
                label: "C2PL".into(),
                points,
            }],
        );
        for r in &details {
            print_detail(r);
        }
    }

    // 10. Client cache size (a Table 3 parameter the paper never sweeps):
    // callback locking's advantage is exactly as large as the cache lets
    // the working set stay resident.
    {
        let mut tp = Vec::new();
        let mut cb = Vec::new();
        for &cache in &[10usize, 25, 50, 100, 200, 400] {
            for (series, alg) in [
                (&mut tp, Algorithm::TwoPhase { inter: true }),
                (&mut cb, Algorithm::Callback),
            ] {
                let mut cfg = experiments::short_txn(alg, 30, 0.75, 0.2);
                cfg.sys.cache_size = cache;
                let r = ctl.run(cfg);
                series.push((cache as f64, r.resp_time_mean));
            }
        }
        print_figure(
            "Ablation 10: client cache size (30 clients, Loc=0.75, W=0.2)",
            "pages",
            "mean response time (s)",
            &[
                Series {
                    label: "C2PL".into(),
                    points: tp,
                },
                Series {
                    label: "CB".into(),
                    points: cb,
                },
            ],
        );
    }

    // 11. Message cost (the Carey & Livny axis the paper cites: "when
    // message cost was high ... certification outperformed two-phase
    // locking"). Sweep MsgCost for 2PL vs certification.
    {
        let mut tp = Vec::new();
        let mut occ = Vec::new();
        for &cost in &[1_000u64, 5_000, 10_000, 20_000] {
            for (series, alg) in [
                (&mut tp, Algorithm::TwoPhase { inter: true }),
                (&mut occ, Algorithm::Certification { inter: true }),
            ] {
                let mut cfg = experiments::short_txn(alg, 30, 0.25, 0.2);
                cfg.sys.msg_cost = cost;
                let r = ctl.run(cfg);
                series.push((cost as f64, r.resp_time_mean));
            }
        }
        print_figure(
            "Ablation 11: per-packet message cost (30 clients, Loc=0.25, W=0.2)",
            "instr",
            "mean response time (s)",
            &[
                Series {
                    label: "C2PL".into(),
                    points: tp,
                },
                Series {
                    label: "COCC".into(),
                    points: occ,
                },
            ],
        );
    }

    // 8. Responsive interactive clients: remove the paper's "messages are
    // not processed during internal delays" limitation (§5.5) and watch
    // callback locking recover in the interactive experiment.
    {
        let mut stock = Vec::new();
        let mut responsive = Vec::new();
        for alg in [Algorithm::Callback, Algorithm::NoWait { notify: false }] {
            for (series, tuned) in [(&mut stock, false), (&mut responsive, true)] {
                let cfg = experiments::interactive(alg, 50, 0.25, 0.5).with_tuning(Tuning {
                    responsive_client: tuned,
                    ..Tuning::default()
                });
                let r = ctl.run_scaled(cfg, 5);
                series.push((r.algorithm.label().to_string(), r.resp_time_mean));
            }
        }
        println!("\n== Ablation 8: responsive clients (interactive, 50 clients, W=0.5) ==");
        println!("{:>8} {:>14} {:>14}", "alg", "paper quirk", "responsive");
        for i in 0..stock.len() {
            println!(
                "{:>8} {:>14.3} {:>14.3}",
                stock[i].0, stock[i].1, responsive[i].1
            );
        }
    }

    // 9. Server multiprocessing: the paper parameterises NServerCPUs but
    // never varies it; sweep it under the saturated short-txn workload.
    {
        let mut points = Vec::new();
        for &cpus in &[1u32, 2, 4, 8] {
            let mut cfg =
                experiments::short_txn(Algorithm::TwoPhase { inter: true }, 50, 0.25, 0.2);
            cfg.sys.n_server_cpus = cpus;
            let r = ctl.run(cfg);
            points.push((cpus as f64, r.throughput));
        }
        print_figure(
            "Ablation 9: server CPUs (C2PL, 50 clients, Loc=0.25, W=0.2)",
            "CPUs",
            "transactions per second",
            &[Series {
                label: "C2PL".into(),
                points,
            }],
        );
    }

    // 7. Notification targeting: per-page directory vs broadcast-to-all
    // (slow network, where extra messages hurt most).
    {
        let mut directory = Vec::new();
        let mut broadcast = Vec::new();
        for &clients in &experiments::CLIENT_SWEEP {
            let cfg = experiments::short_txn(Algorithm::NoWait { notify: true }, clients, 0.5, 0.5);
            directory.push((clients as f64, ctl.run(cfg.clone()).resp_time_mean));
            broadcast.push((
                clients as f64,
                ctl.run(cfg.with_tuning(Tuning {
                    notify_broadcast: true,
                    ..Tuning::default()
                }))
                .resp_time_mean,
            ));
        }
        print_figure(
            "Ablation 7: notification targeting (NWN, Loc=0.5, W=0.5)",
            "clients",
            "mean response time (s)",
            &[
                Series {
                    label: "directory".into(),
                    points: directory,
                },
                Series {
                    label: "broadcast".into(),
                    points: broadcast,
                },
            ],
        );
    }

    // 6. Clustering: 4-page objects, ClusterFactor swept.
    {
        let mut points = Vec::new();
        for &cf in &[0.0, 0.5, 1.0] {
            let mut cfg: SimConfig =
                experiments::short_txn(Algorithm::TwoPhase { inter: true }, 20, 0.25, 0.2);
            cfg.db = DatabaseSpec::uniform(10, 50, 4, cf);
            cfg.txn = TxnParams {
                min_xact_size: 2,
                max_xact_size: 6,
                ..cfg.txn
            };
            let r = ctl.run(cfg);
            points.push((cf, r.resp_time_mean));
        }
        print_figure(
            "Ablation 6: object clustering (4-page objects, C2PL, 20 clients)",
            "ClusterFactor",
            "mean response time (s)",
            &[Series {
                label: "C2PL".into(),
                points,
            }],
        );
    }
}
