//! §5.5 (Figure 22): interactive transactions (UpdateDelay 5 s,
//! InternalDelay 2 s — an average of 56 s of think time per transaction).
//!
//! All resources are lightly used; response-time differences come from
//! data contention only. Expected shape: flat, near-identical curves at
//! W=0; with W=0.5 the algorithms with more aborts (no-wait, callback)
//! fall behind two-phase locking.

use ccdb_bench::{print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CLIENT_SWEEP, SECTION5_ALGORITHMS};

fn main() {
    let ctl = BenchCtl::from_env();
    let cases = [
        ("Figure 22(a): response time, Loc=0.25, W=0.0", 0.25, 0.0),
        ("Figure 22(b): response time, Loc=0.25, W=0.5", 0.25, 0.5),
    ];
    for (title, loc, pw) in cases {
        let mut series = Vec::new();
        for alg in SECTION5_ALGORITHMS {
            let mut points = Vec::new();
            for &clients in &CLIENT_SWEEP {
                // Interactive transactions run ~56 s each: use a longer
                // window so every client commits enough transactions.
                let r = ctl.run_scaled(experiments::interactive(alg, clients, loc, pw), 5);
                points.push((clients as f64, r.resp_time_mean));
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(title, "clients", "mean response time (s)", &series);
    }
}
