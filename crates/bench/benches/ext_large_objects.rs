//! Extension experiment: large objects and object clustering.
//!
//! The paper's §4 footnote: "We did not study the impact of large objects
//! or object clustering in our initial experiments." This harness runs
//! that deferred study on our reproduction:
//!
//! * **Object size sweep** — databases of 1/2/4/8-page objects (total
//!   pages held constant, reads-per-transaction scaled so the *page*
//!   footprint stays comparable), with sub-object sharing as in Figure 2.
//!   Larger objects turn logically disjoint accesses into page conflicts
//!   and lengthen lock-hold chains, so the blocking algorithms deadlock
//!   more while no-wait sees more stale reads.
//! * **Clustering sweep** — with 8-page objects, `ClusterFactor` from 0
//!   to 1 converts most of each object's disk reads from random to
//!   sequential accesses.

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::{experiments, Algorithm, SimConfig};
use ccdb_model::{DatabaseSpec, TxnParams};

fn config_for(alg: Algorithm, object_size: u32, cluster: f64, clients: u32) -> SimConfig {
    let mut cfg = experiments::short_txn(alg, clients, 0.25, 0.2);
    // 2000 pages total regardless of object size.
    cfg.db = DatabaseSpec::uniform(40, 50, object_size, cluster);
    // Keep ~8 pages read per transaction: reads = 8 / object_size.
    let reads = (8 / object_size).max(1);
    cfg.txn = TxnParams {
        min_xact_size: (reads / 2).max(1),
        max_xact_size: reads + reads / 2,
        ..cfg.txn
    };
    cfg
}

fn main() {
    let ctl = BenchCtl::from_env();

    // Object-size sweep at 30 clients.
    {
        let mut series = Vec::new();
        let mut at_8: Vec<ccdb_core::RunReport> = Vec::new();
        for alg in experiments::SECTION5_ALGORITHMS {
            let mut points = Vec::new();
            for &size in &[1u32, 2, 4, 8] {
                let r = ctl.run(config_for(alg, size, 1.0, 30));
                points.push((size as f64, r.resp_time_mean));
                if size == 8 {
                    at_8.push(r);
                }
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(
            "Extension: object size sweep (30 clients, Loc=0.25, W=0.2, ~8 pages/txn)",
            "obj pages",
            "mean response time (s)",
            &series,
        );
        println!("   at 8-page objects (note deadlock/stale-abort counts):");
        for r in &at_8 {
            print_detail(r);
        }
    }

    // Clustering sweep with 8-page objects (disk-heavy: fast net+server so
    // the data disks dominate and sequential I/O shows).
    {
        let mut series = Vec::new();
        for alg in [Algorithm::TwoPhase { inter: true }, Algorithm::Callback] {
            let mut points = Vec::new();
            for &cf in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let mut cfg = config_for(alg, 8, cf, 30);
                cfg.sys.server_mips = 20.0;
                cfg.sys.net_delay = ccdb_des::SimDuration::ZERO;
                let r = ctl.run(cfg);
                points.push((cf, r.resp_time_mean));
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(
            "Extension: ClusterFactor sweep (8-page objects, fast net+server, disk-bound)",
            "cluster",
            "mean response time (s)",
            &series,
        );
    }
}
