//! §5.2 (Figures 14–15): large transactions (20–60 object reads).
//!
//! Expected shape: similar to the short-transaction experiment (the server
//! is still the bottleneck), but callback and no-wait locking degrade
//! faster as the write probability grows because aborts are larger and
//! more expensive; notification helps no-wait here, yet both stay
//! dominated by 2PL and callback locking.

use ccdb_bench::{print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CLIENT_SWEEP, SECTION5_ALGORITHMS};

fn main() {
    let ctl = BenchCtl::from_env();
    let cases = [
        ("Figure 14(a): response time, Loc=0.25, W=0.2", 0.25, 0.2),
        ("Figure 14(b): response time, Loc=0.25, W=0.5", 0.25, 0.5),
        ("Figure 15(a): response time, Loc=0.75, W=0.2", 0.75, 0.2),
        ("Figure 15(b): response time, Loc=0.75, W=0.5", 0.75, 0.5),
    ];
    for (title, loc, pw) in cases {
        let mut series = Vec::new();
        for alg in SECTION5_ALGORITHMS {
            let mut points = Vec::new();
            for &clients in &CLIENT_SWEEP {
                let r = ctl.run(experiments::large_txn(alg, clients, loc, pw));
                points.push((clients as f64, r.resp_time_mean));
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(title, "clients", "mean response time (s)", &series);
    }
}
