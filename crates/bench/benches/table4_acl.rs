//! §4 verification experiment 1 (Table 4): the ACL comparison.
//!
//! Centralized-DBMS settings: 200 clients, free network, 1-page server
//! buffer (every dirty page forced to disk at commit), 12-page client cache
//! (deferred updates for both algorithms), log manager disabled. Throughput
//! is measured while sweeping the multiprogramming level.
//!
//! Expected shape (paper + ACL's limited-resource case): two-phase locking
//! dominates certification; certification degrades at high MPL because
//! restarts waste the saturated resources.

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::{experiments, Algorithm};

fn main() {
    let ctl = BenchCtl::from_env();
    let algorithms = [
        Algorithm::TwoPhase { inter: true },
        Algorithm::Certification { inter: true },
    ];
    let mut series = Vec::new();
    let mut details = Vec::new();
    for alg in algorithms {
        let mut points = Vec::new();
        for &mpl in &experiments::ACL_MPL_SWEEP {
            let r = ctl.run(experiments::acl_verification(alg, mpl));
            points.push((mpl as f64, r.throughput));
            details.push((mpl, r));
        }
        series.push(Series {
            label: alg.label().to_string(),
            points,
        });
    }
    print_figure(
        "Table 4 / ACL comparison: throughput vs multiprogramming level",
        "MPL",
        "committed transactions per second",
        &series,
    );
    println!("\ndetails:");
    for (mpl, r) in &details {
        print!("   MPL={mpl:<4}");
        print_detail(r);
    }
}
