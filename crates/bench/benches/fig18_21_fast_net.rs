//! §5.4 (Figures 18–21): fast server *and* free network (NetDelay = 0).
//!
//! With messages nearly free and disk I/O relatively expensive, the data
//! disks become the most contended resource (~80% utilisation at 50
//! clients in the paper). Expected shape: no-wait with notification and
//! callback locking dominate; notification now pays off because pushed
//! updates avoid both aborts and re-fetch disk reads.

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CLIENT_SWEEP, SECTION5_ALGORITHMS};
use ccdb_core::RunReport;

fn main() {
    let ctl = BenchCtl::from_env();
    let cases = [
        (
            "Figure 18(a): response time, Loc=0.25, W=0.2",
            0.25,
            0.2,
            None,
        ),
        (
            "Figure 18(b): response time, Loc=0.25, W=0.5",
            0.25,
            0.5,
            None,
        ),
        (
            "Figure 19(a): response time, Loc=0.75, W=0.2",
            0.75,
            0.2,
            Some("Figure 21: throughput, Loc=0.75, W=0.2"),
        ),
        (
            "Figure 19(b): response time, Loc=0.75, W=0.5",
            0.75,
            0.5,
            None,
        ),
        (
            "Figure 20 companion: response time, Loc=0.25, W=0.2",
            0.25,
            0.2,
            Some("Figure 20: throughput, Loc=0.25, W=0.2"),
        ),
    ];
    for (title, loc, pw, tput_title) in cases {
        let mut resp_series = Vec::new();
        let mut tput_series = Vec::new();
        let mut at_50: Vec<RunReport> = Vec::new();
        for alg in SECTION5_ALGORITHMS {
            let mut resp = Vec::new();
            let mut tput = Vec::new();
            for &clients in &CLIENT_SWEEP {
                let r = ctl.run(experiments::fast_net_fast_server(alg, clients, loc, pw));
                resp.push((clients as f64, r.resp_time_mean));
                tput.push((clients as f64, r.throughput));
                if clients == 50 {
                    at_50.push(r);
                }
            }
            resp_series.push(Series {
                label: alg.label().to_string(),
                points: resp,
            });
            tput_series.push(Series {
                label: alg.label().to_string(),
                points: tput,
            });
        }
        print_figure(title, "clients", "mean response time (s)", &resp_series);
        if let Some(tt) = tput_title {
            print_figure(tt, "clients", "transactions per second", &tput_series);
        }
        println!("   at 50 clients (note the disk utilisation):");
        for r in &at_50 {
            print_detail(r);
        }
    }
}
