//! Extension experiment: skewed (hot-spot) access.
//!
//! The paper keeps page access uniform; its predecessors (Agrawal, Carey
//! & Livny) showed that contention conclusions can flip under skew. This
//! harness concentrates a fraction of accesses on a 10% hot region and
//! watches the algorithms separate:
//!
//! * Blocking algorithms queue on the hot pages (deadlocks rise).
//! * No-wait turns hot-page conflicts into stale-read aborts.
//! * Callback locking's retained locks on hot pages are constantly called
//!   back, erasing its locality advantage.
//!
//! Also compares FCFS vs SSTF scheduling on the positional disk model
//! under a hot-spot-like arrival pattern (the substrate-level question
//! §3.3.2 leaves open).

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::{experiments, RunReport};
use ccdb_des::{Pcg32, Sim, SimDuration};
use ccdb_model::AccessSkew;
use ccdb_storage::{SchedPolicy, ScheduledDisk};

fn main() {
    let ctl = BenchCtl::from_env();

    // Hot-spot sweep: 10% of pages take 10%..90% of accesses (10% = the
    // uniform baseline), 30 clients, moderate updates.
    {
        let mut series = Vec::new();
        let mut at_worst: Vec<RunReport> = Vec::new();
        for alg in experiments::SECTION5_ALGORITHMS {
            let mut points = Vec::new();
            for &hot_prob in &[0.1, 0.3, 0.5, 0.7, 0.9] {
                let mut cfg = experiments::short_txn(alg, 30, 0.25, 0.2);
                cfg.db = cfg.db.with_skew(AccessSkew {
                    hot_fraction: 0.1,
                    hot_access_prob: hot_prob,
                });
                let r = ctl.run(cfg);
                points.push((hot_prob, r.resp_time_mean));
                if hot_prob == 0.9 {
                    at_worst.push(r);
                }
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(
            "Extension: hot-spot access (10% of pages, 30 clients, Loc=0.25, W=0.2)",
            "hot prob",
            "mean response time (s)",
            &series,
        );
        println!("   at 90% hot accesses (note the abort mix):");
        for r in &at_worst {
            print_detail(r);
        }
    }

    // Disk scheduling on the positional model: batched random arrivals.
    {
        let mut rows = Vec::new();
        for policy in [SchedPolicy::Fcfs, SchedPolicy::Sstf] {
            let sim = Sim::new();
            let env = sim.env();
            let disk = ScheduledDisk::new(
                &env,
                policy,
                1_000,
                SimDuration::from_millis(2),
                SimDuration::from_millis(42),
                SimDuration::from_millis(2),
            );
            let mut rng = Pcg32::new(42, 1);
            for batch in 0..50u64 {
                for _ in 0..8 {
                    let cyl = rng.below(1_000) as u32;
                    let disk = disk.clone();
                    let env2 = env.clone();
                    sim.spawn(async move {
                        env2.hold(SimDuration::from_millis(batch * 250)).await;
                        disk.access(cyl, &env2).await;
                    });
                }
            }
            sim.run();
            rows.push((policy, disk.mean_service(), disk.mean_seek_distance()));
        }
        println!("\n== Extension: disk scheduling (positional model, 8-deep random queues) ==");
        println!(
            "{:>8} {:>18} {:>20}",
            "policy", "mean service (s)", "mean seek (cyls)"
        );
        for (p, svc, dist) in rows {
            println!("{p:>8?} {svc:>18.5} {dist:>20.1}");
        }
    }
}
