//! §5.3 (Figures 16–17): a 20 MIPS server — the bottleneck shifts to the
//! network.
//!
//! Expected shape: virtually the same ordering as the short-transaction
//! experiment, because messages stress the network exactly where they used
//! to stress the server CPU; no-wait-with-notification suffers most with
//! many clients because of its extra notification traffic.

use ccdb_bench::{print_detail, print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CLIENT_SWEEP, SECTION5_ALGORITHMS};

fn main() {
    let ctl = BenchCtl::from_env();
    let cases = [
        ("Figure 16(a): response time, Loc=0.25, W=0.2", 0.25, 0.2),
        ("Figure 16(b): response time, Loc=0.25, W=0.5", 0.25, 0.5),
        ("Figure 17(a): response time, Loc=0.75, W=0.2", 0.75, 0.2),
        ("Figure 17(b): response time, Loc=0.75, W=0.5", 0.75, 0.5),
    ];
    for (title, loc, pw) in cases {
        let mut series = Vec::new();
        let mut full = Vec::new();
        for alg in SECTION5_ALGORITHMS {
            let mut points = Vec::new();
            for &clients in &CLIENT_SWEEP {
                let r = ctl.run(experiments::fast_server(alg, clients, loc, pw));
                points.push((clients as f64, r.resp_time_mean));
                if clients == *CLIENT_SWEEP.last().expect("non-empty sweep") {
                    full.push(r);
                }
            }
            series.push(Series {
                label: alg.label().to_string(),
                points,
            });
        }
        print_figure(title, "clients", "mean response time (s)", &series);
        println!("   at 50 clients (note the network utilisation):");
        for r in &full {
            print_detail(r);
        }
    }
}
