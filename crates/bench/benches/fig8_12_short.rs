//! §5.1 (Figures 8–12): short transactions with the server as bottleneck.
//!
//! Response time over the client sweep for every (locality, write
//! probability) cell of Figures 8–11, plus the Figure 12 throughput plots.
//!
//! Expected shape: 2PL and callback locking dominate no-wait (±notify);
//! callback wins at high locality, and at medium locality with low writes;
//! notification rarely helps no-wait when the server is the bottleneck.

use ccdb_bench::{print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CLIENT_SWEEP, SECTION5_ALGORITHMS};
use ccdb_core::RunReport;

fn run_grid(ctl: &BenchCtl, loc: f64, pw: f64) -> Vec<(String, Vec<RunReport>)> {
    // One flat batch over the worker pool, then regroup per algorithm.
    let cfgs = SECTION5_ALGORITHMS
        .iter()
        .flat_map(|&alg| {
            CLIENT_SWEEP
                .iter()
                .map(move |&clients| experiments::short_txn(alg, clients, loc, pw))
        })
        .collect();
    let mut runs = ctl.run_many(cfgs).into_iter();
    SECTION5_ALGORITHMS
        .iter()
        .map(|&alg| {
            (
                alg.label().to_string(),
                runs.by_ref().take(CLIENT_SWEEP.len()).collect(),
            )
        })
        .collect()
}

fn resp_series(grid: &[(String, Vec<RunReport>)]) -> Vec<Series> {
    grid.iter()
        .map(|(label, runs)| Series {
            label: label.clone(),
            points: runs
                .iter()
                .map(|r| (r.n_clients as f64, r.resp_time_mean))
                .collect(),
        })
        .collect()
}

fn tput_series(grid: &[(String, Vec<RunReport>)]) -> Vec<Series> {
    grid.iter()
        .map(|(label, runs)| Series {
            label: label.clone(),
            points: runs
                .iter()
                .map(|r| (r.n_clients as f64, r.throughput))
                .collect(),
        })
        .collect()
}

fn main() {
    let ctl = BenchCtl::from_env();
    let figures = [
        ("Figure 8", 0.05),
        ("Figure 9", 0.25),
        ("Figure 10", 0.50),
        ("Figure 11", 0.75),
    ];
    let sub = [("(a) W=0.0", 0.0), ("(b) W=0.2", 0.2), ("(c) W=0.5", 0.5)];
    for (fig, loc) in figures {
        for (sub_label, pw) in sub {
            let grid = run_grid(&ctl, loc, pw);
            print_figure(
                &format!("{fig}{sub_label}: response time, Loc={loc}"),
                "clients",
                "mean response time (s)",
                &resp_series(&grid),
            );
            // Figure 12: throughput for (Loc=0.25, W=0.2) and (0.75, 0.2).
            if pw == 0.2 && (loc == 0.25 || loc == 0.75) {
                let which = if loc == 0.25 { "12(a)" } else { "12(b)" };
                print_figure(
                    &format!("Figure {which}: throughput, Loc={loc}, W=0.2"),
                    "clients",
                    "transactions per second",
                    &tput_series(&grid),
                );
            }
        }
    }
}
