//! §4 verification experiment 2 (Figures 5–7): intra- vs inter-transaction
//! caching for two-phase locking and certification.
//!
//! Expected shape: with low locality (Fig 5) the four variants are close;
//! certification falls behind at high write probability. With high
//! locality (Fig 6) the inter-transaction variants win by up to ~30%
//! (read-only) and ~12% (ProbWrite 0.5). Figure 7 shows the same ordering
//! in throughput.

use ccdb_bench::{print_figure, BenchCtl, Series};
use ccdb_core::experiments::{self, CACHING_ALGORITHMS, CLIENT_SWEEP};

fn main() {
    let ctl = BenchCtl::from_env();
    // (figure, locality, write probability)
    let cases = [
        ("Figure 5(a): response time, Loc=0.05, W=0.2", 0.05, 0.2),
        ("Figure 5(b): response time, Loc=0.05, W=0.5", 0.05, 0.5),
        ("Figure 6(a): response time, Loc=0.50, W=0.0", 0.50, 0.0),
        ("Figure 6(b): response time, Loc=0.50, W=0.5", 0.50, 0.5),
    ];
    for (title, loc, pw) in cases {
        // One flat batch per figure over the worker pool.
        let cfgs = CACHING_ALGORITHMS
            .iter()
            .flat_map(|&alg| {
                CLIENT_SWEEP
                    .iter()
                    .map(move |&clients| experiments::caching_verification(alg, clients, loc, pw))
            })
            .collect();
        let mut runs = ctl.run_many(cfgs).into_iter();
        let mut resp_series = Vec::new();
        let mut tput_series = Vec::new();
        for alg in CACHING_ALGORITHMS {
            let mut resp = Vec::new();
            let mut tput = Vec::new();
            for r in runs.by_ref().take(CLIENT_SWEEP.len()) {
                resp.push((r.n_clients as f64, r.resp_time_mean));
                tput.push((r.n_clients as f64, r.throughput));
            }
            resp_series.push(Series {
                label: alg.label().to_string(),
                points: resp,
            });
            tput_series.push(Series {
                label: alg.label().to_string(),
                points: tput,
            });
        }
        print_figure(title, "clients", "mean response time (s)", &resp_series);
        if loc == 0.50 {
            // Figures 7(a)/(b): throughput for the Figure 6 cases.
            let tput_title = if pw == 0.0 {
                "Figure 7(a): throughput, Loc=0.50, W=0.0"
            } else {
                "Figure 7(b): throughput, Loc=0.50, W=0.5"
            };
            print_figure(
                tput_title,
                "clients",
                "transactions per second",
                &tput_series,
            );
        }
    }
}
