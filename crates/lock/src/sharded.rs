//! A sharded lock table behind the [`LockManager`] API.
//!
//! Pages are hash-partitioned across `N` independent [`LockManager`]
//! shards by a deterministic, seed-free hash, so lock-table state — and
//! therefore per-shard wait/deadlock/callback statistics — decomposes by
//! shard. Each shard sits behind its own [`RefCell`], so the facade takes
//! `&self` everywhere: mutating one shard never requires exclusive access
//! to the whole table, and callers (the simulated server, which hands out
//! shared references to itself) never need a table-wide `&mut`. Borrows
//! are statement-scoped — every shard method returns owned data — so a
//! cross-shard walk (deadlock detection, stats) can immutably visit all
//! shards right after mutating one. Two things cannot be per-shard and
//! are handled by the facade:
//!
//! * **Deadlock detection** runs over the *union* of the shards' wait-for
//!   edges, so cross-shard cycles are found and the victim (the requester,
//!   exactly as in the single-table manager) is identical for every shard
//!   count.
//! * **Release ordering**: a committing transaction's pages are gathered
//!   across shards and released in *global* page order, so the grants
//!   (wakes) a release produces — and therefore simulation event order —
//!   are byte-identical to the single-table manager.
//!
//! With `shards = 1` every call delegates to one `LockManager` in the
//! exact same sequence of internal steps as the unsharded code path.

use ccdb_model::FxHashSet as HashSet;
use std::cell::RefCell;

use ccdb_model::PageId;

use crate::manager::{
    ClientId, EnqueueOutcome, LockManager, LockStats, Mode, RequestOutcome, RetainPolicy, TxnId,
    Wake,
};

/// SplitMix64 finalizer over the page's (class, atom) key: deterministic,
/// seed-free, and well-mixed so shards stay balanced.
fn page_hash(page: PageId) -> u64 {
    let key = ((page.class.0 as u64) << 32) | page.atom as u64;
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard `page` maps to among `shards` hash partitions.
///
/// This is the repo-wide page→shard discipline: every sharded structure
/// keyed by page (the lock table here, the real server's sharded page
/// stores) uses the same deterministic, seed-free mapping, so "same
/// page, same shard" holds across subsystems and shard assignments can
/// be recomputed anywhere (e.g. by `ccdb replay` when checking a
/// sharded wire trace).
pub fn page_shard(page: PageId, shards: u32) -> u32 {
    assert!(shards > 0, "page_shard needs at least one shard");
    (page_hash(page) % shards as u64) as u32
}

/// `N` hash-partitioned [`LockManager`] shards presenting the single-table
/// API. See the module docs for the equivalence argument.
#[derive(Debug)]
pub struct ShardedLockManager {
    shards: Vec<RefCell<LockManager>>,
}

impl Default for ShardedLockManager {
    fn default() -> Self {
        ShardedLockManager::new(1)
    }
}

impl ShardedLockManager {
    /// A lock manager with `shards` hash partitions (at least one).
    pub fn new(shards: u32) -> Self {
        assert!(shards > 0, "lock manager needs at least one shard");
        ShardedLockManager {
            shards: (0..shards)
                .map(|_| RefCell::new(LockManager::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The shard `page` is partitioned to.
    pub fn shard_of(&self, page: PageId) -> u32 {
        page_shard(page, self.shards.len() as u32)
    }

    /// Summed statistics across shards (the single-table view).
    pub fn stats(&self) -> LockStats {
        let mut total = LockStats::default();
        for s in &self.shards {
            let st = s.borrow().stats();
            total.requests += st.requests;
            total.blocks += st.blocks;
            total.deadlocks += st.deadlocks;
            total.callbacks += st.callbacks;
        }
        total
    }

    /// Per-shard statistics, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<LockStats> {
        self.shards.iter().map(|s| s.borrow().stats()).collect()
    }

    /// Mode held by `txn` on `page`, if any.
    pub fn holds(&self, txn: TxnId, page: PageId) -> Option<Mode> {
        self.shard(page).borrow().holds(txn, page)
    }

    /// Mode of the lock `client` retains on `page`, if any.
    pub fn retained_mode(&self, client: ClientId, page: PageId) -> Option<Mode> {
        self.shard(page).borrow().retained_mode(client, page)
    }

    /// True if `client` retains a read lock on `page`.
    pub fn has_retained(&self, client: ClientId, page: PageId) -> bool {
        self.shard(page).borrow().has_retained(client, page)
    }

    /// Number of pages with any lock state, summed across shards.
    pub fn table_len(&self) -> usize {
        self.shards.iter().map(|s| s.borrow().table_len()).sum()
    }

    /// Distinct transactions blocked on at least one lock (a transaction
    /// queued in two shards counts once).
    pub fn blocked_txn_count(&self) -> usize {
        let mut txns: HashSet<TxnId> = HashSet::default();
        for s in &self.shards {
            txns.extend(s.borrow().blocked_txns());
        }
        txns.len()
    }

    /// Pages retained by a client, in page order across shards.
    pub fn retained_pages(&self, client: ClientId) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .shards
            .iter()
            .flat_map(|s| s.borrow().retained_pages(client))
            .collect();
        pages.sort();
        pages
    }

    /// Retained holders of a page.
    pub fn retained_holders(&self, page: PageId) -> Vec<ClientId> {
        self.shard(page).borrow().retained_holders(page)
    }

    /// Request `mode` on `page` for transaction `txn` of `client`. Same
    /// contract as [`LockManager::request`]; the deadlock check runs over
    /// the union of every shard's wait-for edges.
    pub fn request(
        &self,
        txn: TxnId,
        client: ClientId,
        page: PageId,
        mode: Mode,
    ) -> RequestOutcome {
        let k = self.shard_of(page) as usize;
        // The enqueue borrow ends before the cycle walk visits every shard.
        let outcome = self.shards[k]
            .borrow_mut()
            .enqueue_request(txn, client, page, mode);
        match outcome {
            EnqueueOutcome::Granted => RequestOutcome::Granted,
            EnqueueOutcome::Queued { upgrade } => {
                if self.wait_cycle_through(txn) {
                    self.shards[k]
                        .borrow_mut()
                        .withdraw_just_queued(txn, page, upgrade);
                    return RequestOutcome::Deadlock;
                }
                RequestOutcome::Blocked {
                    callbacks: self.shards[k]
                        .borrow_mut()
                        .blocked_callbacks(page, client, mode),
                }
            }
        }
    }

    /// Release every lock of `txn`, optionally retaining them as client
    /// read locks. Same contract as [`LockManager::release_all`].
    pub fn release_all(
        &self,
        txn: TxnId,
        retain_for: Option<ClientId>,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let policy = match retain_for {
            Some(c) => RetainPolicy::Read(c),
            None => RetainPolicy::Drop,
        };
        self.release_all_policy(txn, policy)
    }

    /// [`ShardedLockManager::release_all`] with an explicit retention
    /// policy. Pages are released in global page order so the grant
    /// sequence matches the single-table manager exactly.
    pub fn release_all_policy(
        &self,
        txn: TxnId,
        policy: RetainPolicy,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let mut pages: Vec<(PageId, usize)> = Vec::new();
        for (k, s) in self.shards.iter().enumerate() {
            pages.extend(s.borrow_mut().take_held(txn).into_iter().map(|p| (p, k)));
        }
        pages.sort_by_key(|&(p, _)| p);
        if !pages.is_empty() {
            // The single-table manager clears deferred edges pointing at a
            // terminating lock-holding txn over its whole table; mirror
            // that across every shard, not just the ones holding pages.
            for s in &self.shards {
                s.borrow_mut().clear_deferred_of(txn);
            }
        }
        let mut wakes = Vec::new();
        let mut callbacks = Vec::new();
        for (page, k) in pages {
            let (w, cb) = self.shards[k]
                .borrow_mut()
                .release_one_page(txn, page, policy);
            wakes.extend(w);
            callbacks.extend(cb);
        }
        for s in &self.shards {
            s.borrow_mut().finish_txn(txn);
        }
        (wakes, callbacks)
    }

    /// Abort `txn`: drop held locks (no retention) and queued requests.
    pub fn abort(&self, txn: TxnId) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        for s in &self.shards {
            s.borrow_mut().withdraw_queued_requests(txn);
        }
        self.release_all(txn, None)
    }

    /// A client released a retained read lock. Same contract as
    /// [`LockManager::release_retained`].
    pub fn release_retained(
        &self,
        client: ClientId,
        page: PageId,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let k = self.shard_of(page) as usize;
        self.shards[k].borrow_mut().release_retained(client, page)
    }

    /// A client answered a callback with "in use by my current transaction
    /// `blocker`". Same contract as [`LockManager::callback_deferred`];
    /// the cycle check spans every shard.
    pub fn callback_deferred(
        &self,
        page: PageId,
        client: ClientId,
        blocker: TxnId,
    ) -> Option<TxnId> {
        let k = self.shard_of(page) as usize;
        self.shards[k]
            .borrow_mut()
            .insert_deferred(page, client, blocker);
        let waiters = self.shards[k].borrow().page_waiters(page);
        waiters.into_iter().find(|&w| self.wait_cycle_through(w))
    }

    /// True if `start` is on a wait-for cycle in the global graph (the
    /// union of every shard's edges).
    fn wait_cycle_through(&self, start: TxnId) -> bool {
        let mut stack = self.wait_targets(start);
        let mut visited: HashSet<TxnId> = HashSet::default();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if visited.insert(t) {
                stack.extend(self.wait_targets(t));
            }
        }
        false
    }

    fn wait_targets(&self, txn: TxnId) -> Vec<TxnId> {
        self.shards
            .iter()
            .flat_map(|s| s.borrow().wait_targets(txn))
            .collect()
    }

    /// Assert that `txn` holds no locks and has no queued requests in any
    /// shard.
    pub fn assert_txn_gone(&self, txn: TxnId) {
        for s in &self.shards {
            s.borrow().assert_txn_gone(txn);
        }
    }

    /// Consistency check across every shard.
    pub fn assert_consistent(&self) {
        for s in &self.shards {
            s.borrow().assert_consistent();
        }
    }

    /// Human-readable dump of one page's lock entry (diagnostics).
    pub fn debug_entry(&self, page: PageId) -> String {
        self.shard(page).borrow().debug_entry(page)
    }

    fn shard(&self, page: PageId) -> &RefCell<LockManager> {
        &self.shards[self.shard_of(page) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::ClassId;

    fn page(n: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom: n,
        }
    }

    #[test]
    fn sharding_is_deterministic_and_covers_all_shards() {
        let lm = ShardedLockManager::new(4);
        let lm2 = ShardedLockManager::new(4);
        let mut seen = HashSet::default();
        for n in 0..256 {
            let k = lm.shard_of(page(n));
            assert!(k < 4);
            assert_eq!(k, lm2.shard_of(page(n)), "hash must be seed-free");
            seen.insert(k);
        }
        assert_eq!(seen.len(), 4, "256 pages must touch every shard");
    }

    #[test]
    fn cross_shard_deadlock_is_detected() {
        // Find two pages in different shards, build the classic 2-txn
        // cycle across them.
        let lm = ShardedLockManager::new(4);
        let a = page(0);
        let b = (1..64)
            .map(page)
            .find(|&p| lm.shard_of(p) != lm.shard_of(a))
            .expect("some page lands in another shard");
        assert_eq!(
            lm.request(TxnId(1), ClientId(1), a, Mode::X),
            RequestOutcome::Granted
        );
        assert_eq!(
            lm.request(TxnId(2), ClientId(2), b, Mode::X),
            RequestOutcome::Granted
        );
        assert!(matches!(
            lm.request(TxnId(1), ClientId(1), b, Mode::X),
            RequestOutcome::Blocked { .. }
        ));
        // Txn 2 → a → txn 1 → b → txn 2: a cycle spanning two shards.
        assert_eq!(
            lm.request(TxnId(2), ClientId(2), a, Mode::X),
            RequestOutcome::Deadlock
        );
        // The victim (requester) aborts; txn 1's wait resolves.
        let (wakes, _) = lm.abort(TxnId(2));
        assert_eq!(
            wakes,
            vec![Wake {
                txn: TxnId(1),
                page: b
            }]
        );
        lm.assert_consistent();
    }

    #[test]
    fn release_wakes_follow_global_page_order() {
        // One txn holds X on many pages spread over shards; one waiter per
        // page. Wakes must come back in page order, not shard order.
        let lm = ShardedLockManager::new(4);
        let pages: Vec<PageId> = (0..8).map(page).collect();
        for &p in &pages {
            assert_eq!(
                lm.request(TxnId(1), ClientId(1), p, Mode::X),
                RequestOutcome::Granted
            );
        }
        for (i, &p) in pages.iter().enumerate() {
            let t = TxnId(10 + i as u64);
            assert!(matches!(
                lm.request(t, ClientId(10 + i as u32), p, Mode::S),
                RequestOutcome::Blocked { .. }
            ));
        }
        let (wakes, _) = lm.release_all(TxnId(1), None);
        let woken: Vec<PageId> = wakes.iter().map(|w| w.page).collect();
        assert_eq!(woken, pages, "wakes must be in global page order");
    }

    #[test]
    fn stats_sum_and_split_by_shard() {
        let lm = ShardedLockManager::new(2);
        for n in 0..16 {
            lm.request(TxnId(n as u64), ClientId(n), page(n), Mode::X);
        }
        let total = lm.stats();
        assert_eq!(total.requests, 16);
        let per: Vec<LockStats> = lm.per_shard_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per.iter().map(|s| s.requests).sum::<u64>(), 16);
        assert!(per.iter().all(|s| s.requests > 0), "both shards used");
    }

    #[test]
    fn shared_reference_suffices_for_mutation() {
        // The facade's whole point: a `&ShardedLockManager` can request
        // and release without a table-wide exclusive borrow.
        let lm = ShardedLockManager::new(2);
        let alias: &ShardedLockManager = &lm;
        assert_eq!(
            alias.request(TxnId(1), ClientId(1), page(0), Mode::X),
            RequestOutcome::Granted
        );
        let (wakes, _) = alias.release_all(TxnId(1), None);
        assert!(wakes.is_empty());
        alias.assert_consistent();
    }
}
