//! Lock table, wait queues, retained locks, and deadlock detection.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ccdb_model::{FxHashMap as HashMap, FxHashSet as HashSet};

use ccdb_model::PageId;

/// Global transaction identifier (unique across clients and restarts).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u64);

/// Client workstation identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ClientId(pub u32);

/// Lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Shared (read) lock.
    S,
    /// Exclusive (write) lock.
    X,
}

impl Mode {
    fn compatible(self, other: Mode) -> bool {
        matches!((self, other), (Mode::S, Mode::S))
    }
}

/// Who holds a granted lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Owner {
    /// An active transaction (released at transaction end).
    Txn(TxnId),
    /// A client-retained read lock (callback locking; survives commits).
    Retained(ClientId),
}

#[derive(Clone, Debug)]
struct Holder {
    owner: Owner,
    mode: Mode,
}

#[derive(Clone, Debug)]
struct WaitReq {
    txn: TxnId,
    client: ClientId,
    mode: Mode,
    /// Upgrade from an S lock this transaction already holds.
    upgrade: bool,
}

#[derive(Default, Debug)]
struct Entry {
    holders: Vec<Holder>,
    queue: VecDeque<WaitReq>,
    /// Retained holders that have been sent a callback and have not yet
    /// released.
    callbacks_outstanding: HashSet<ClientId>,
}

impl Entry {
    fn is_empty(&self) -> bool {
        self.holders.is_empty() && self.queue.is_empty() && self.callbacks_outstanding.is_empty()
    }

    fn txn_mode(&self, txn: TxnId) -> Option<Mode> {
        self.holders.iter().find_map(|h| match h.owner {
            Owner::Txn(t) if t == txn => Some(h.mode),
            _ => None,
        })
    }

    fn has_retained(&self, client: ClientId) -> bool {
        self.holders
            .iter()
            .any(|h| h.owner == Owner::Retained(client))
    }

    fn retained_clients(&self) -> Vec<ClientId> {
        self.holders
            .iter()
            .filter_map(|h| match h.owner {
                Owner::Retained(c) => Some(c),
                _ => None,
            })
            .collect()
    }
}

/// Outcome of a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The lock is held; proceed.
    Granted,
    /// The request is queued. `callbacks` lists clients whose retained
    /// locks conflict and must be asked to release (callback locking);
    /// empty for ordinary transaction-lock conflicts.
    Blocked {
        /// Clients to send callback messages to.
        callbacks: Vec<ClientId>,
    },
    /// Granting would close a wait-for cycle: the requester must abort.
    Deadlock,
}

/// Outcome of [`LockManager::enqueue_request`]: the first phase of a
/// request, before any deadlock check has run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EnqueueOutcome {
    /// Granted immediately.
    Granted,
    /// Queued; `upgrade` records where in the queue it sits (front).
    Queued {
        /// The queued request is an upgrade from a held S lock.
        upgrade: bool,
    },
}

/// A grant produced by a release: transaction `txn` now holds its requested
/// lock on `page` and its parked handler should resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wake {
    /// The granted transaction.
    pub txn: TxnId,
    /// The page it was waiting on.
    pub page: PageId,
}

/// What happens to a committing transaction's locks (callback locking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetainPolicy {
    /// Drop everything (two-phase / no-wait locking, and every abort).
    Drop,
    /// Retain all locks as client read locks (the paper's callback
    /// locking: write locks are demoted to read locks).
    Read(ClientId),
    /// Retain read locks as read locks and write locks as write locks
    /// (the variant §2.3 considers and declines).
    ReadWrite(ClientId),
}

/// Counters for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total lock requests (including re-requests after restart).
    pub requests: u64,
    /// Requests that blocked.
    pub blocks: u64,
    /// Requests refused because of deadlock.
    pub deadlocks: u64,
    /// Callback messages requested.
    pub callbacks: u64,
}

/// The lock manager. See the crate docs for the protocol.
///
/// ```
/// use ccdb_lock::{LockManager, Mode, RequestOutcome, TxnId, ClientId};
/// use ccdb_model::{ClassId, PageId};
///
/// let mut lm = LockManager::new();
/// let page = PageId { class: ClassId(0), atom: 7 };
///
/// // Reader and writer conflict; the writer queues FCFS.
/// assert_eq!(lm.request(TxnId(1), ClientId(0), page, Mode::S), RequestOutcome::Granted);
/// assert!(matches!(
///     lm.request(TxnId(2), ClientId(1), page, Mode::X),
///     RequestOutcome::Blocked { .. }
/// ));
///
/// // Committing the reader with retention (callback locking) leaves a
/// // client-owned read lock, so the writer now needs a callback.
/// let (wakes, callbacks) = lm.release_all(TxnId(1), Some(ClientId(0)));
/// assert!(wakes.is_empty());
/// assert_eq!(callbacks, vec![(ClientId(0), page)]);
///
/// // The client honours the callback; the writer is granted.
/// let (wakes, _) = lm.release_retained(ClientId(0), page);
/// assert_eq!(wakes[0].txn, TxnId(2));
/// ```
#[derive(Default, Debug)]
pub struct LockManager {
    table: HashMap<PageId, Entry>,
    /// Pages on which each transaction holds a granted lock. Ordered so
    /// release order — and therefore simulation event order — is
    /// deterministic.
    held: HashMap<TxnId, BTreeSet<PageId>>,
    /// Queued requests of each transaction, as a page -> count multiset: a
    /// no-wait transaction can have an S and an X request queued on the
    /// same page simultaneously. (Ordered for deterministic iteration.)
    waiting: HashMap<TxnId, BTreeMap<PageId, u32>>,
    /// Pages each client retains read locks on.
    retained_by: HashMap<ClientId, BTreeSet<PageId>>,
    /// Deferred callback promises: (page, client) will release when `TxnId`
    /// (the client's current transaction) terminates.
    deferred: HashMap<(PageId, ClientId), TxnId>,
    /// Owning client of each active transaction (victim bookkeeping).
    txn_client: HashMap<TxnId, ClientId>,
    stats: LockStats,
}

impl LockManager {
    /// An empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics counters.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Mode held by `txn` on `page`, if any.
    pub fn holds(&self, txn: TxnId, page: PageId) -> Option<Mode> {
        self.table.get(&page).and_then(|e| e.txn_mode(txn))
    }

    /// Mode of the lock `client` retains on `page`, if any.
    pub fn retained_mode(&self, client: ClientId, page: PageId) -> Option<Mode> {
        self.table.get(&page).and_then(|e| {
            e.holders.iter().find_map(|h| match h.owner {
                Owner::Retained(c) if c == client => Some(h.mode),
                _ => None,
            })
        })
    }

    /// True if `client` retains a read lock on `page`.
    pub fn has_retained(&self, client: ClientId, page: PageId) -> bool {
        self.table
            .get(&page)
            .map(|e| e.has_retained(client))
            .unwrap_or(false)
    }

    /// Number of pages with any lock state (table size).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Transactions currently blocked on at least one lock (sampling
    /// gauge: the paper's blocked-transaction count).
    pub fn blocked_txn_count(&self) -> usize {
        self.waiting.len()
    }

    /// The blocked transactions themselves (the sharded facade dedups
    /// these across shards).
    pub(crate) fn blocked_txns(&self) -> Vec<TxnId> {
        self.waiting.keys().copied().collect()
    }

    /// Pages retained by a client (for tests / reports).
    pub fn retained_pages(&self, client: ClientId) -> Vec<PageId> {
        self.retained_by
            .get(&client)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Request `mode` on `page` for transaction `txn` of `client`.
    ///
    /// A transaction's own client's retained read lock never conflicts with
    /// it and is *absorbed* (replaced by the transaction lock) on grant.
    /// Re-requesting a mode already held (or requesting S while holding X)
    /// is granted immediately.
    pub fn request(
        &mut self,
        txn: TxnId,
        client: ClientId,
        page: PageId,
        mode: Mode,
    ) -> RequestOutcome {
        match self.enqueue_request(txn, client, page, mode) {
            EnqueueOutcome::Granted => RequestOutcome::Granted,
            EnqueueOutcome::Queued { upgrade } => {
                if self.wait_cycle_through(txn) {
                    self.withdraw_just_queued(txn, page, upgrade);
                    return RequestOutcome::Deadlock;
                }
                RequestOutcome::Blocked {
                    callbacks: self.blocked_callbacks(page, client, mode),
                }
            }
        }
    }

    /// First phase of [`LockManager::request`]: grant immediately if
    /// possible, otherwise enqueue the wait request. The deadlock check is
    /// left to the caller so a sharded facade can run it over the *global*
    /// wait-for graph.
    pub(crate) fn enqueue_request(
        &mut self,
        txn: TxnId,
        client: ClientId,
        page: PageId,
        mode: Mode,
    ) -> EnqueueOutcome {
        self.stats.requests += 1;
        self.txn_client.insert(txn, client);
        let entry = self.table.entry(page).or_default();

        // Already held strongly enough?
        match entry.txn_mode(txn) {
            Some(Mode::X) => return EnqueueOutcome::Granted,
            Some(Mode::S) if mode == Mode::S => return EnqueueOutcome::Granted,
            _ => {}
        }
        let upgrade = entry.txn_mode(txn) == Some(Mode::S) && mode == Mode::X;

        if Self::grantable(entry, txn, client, mode, upgrade) && (upgrade || entry.queue.is_empty())
        {
            Self::install(entry, txn, client, mode, upgrade);
            self.held.entry(txn).or_default().insert(page);
            self.absorb_retained(page, client);
            return EnqueueOutcome::Granted;
        }

        // Must wait: queue the request (upgrades go to the front).
        let req = WaitReq {
            txn,
            client,
            mode,
            upgrade,
        };
        let entry = self.table.get_mut(&page).expect("entry exists");
        if upgrade {
            entry.queue.push_front(req);
        } else {
            entry.queue.push_back(req);
        }
        *self
            .waiting
            .entry(txn)
            .or_default()
            .entry(page)
            .or_insert(0) += 1;
        EnqueueOutcome::Queued { upgrade }
    }

    /// Withdraw exactly the request just queued (front for an upgrade,
    /// back otherwise) because granting it would deadlock; the caller
    /// aborts the transaction.
    pub(crate) fn withdraw_just_queued(&mut self, txn: TxnId, page: PageId, upgrade: bool) {
        let entry = self.table.get_mut(&page).expect("entry exists");
        if upgrade {
            entry.queue.pop_front();
        } else {
            entry.queue.pop_back();
        }
        self.note_dequeued(txn, page);
        self.stats.deadlocks += 1;
    }

    /// Final phase of a blocked request: issue callbacks for conflicting
    /// retained holders not yet asked. (With the paper's read-only
    /// retention this can only be an X request meeting retained S locks;
    /// with write retention an S request can also conflict with a retained
    /// X.)
    pub(crate) fn blocked_callbacks(
        &mut self,
        page: PageId,
        client: ClientId,
        mode: Mode,
    ) -> Vec<ClientId> {
        let entry = self.table.get_mut(&page).expect("entry exists");
        let mut callbacks = Vec::new();
        let conflicting: Vec<ClientId> = entry
            .holders
            .iter()
            .filter_map(|h| match h.owner {
                Owner::Retained(c) if c != client && !h.mode.compatible(mode) => Some(c),
                _ => None,
            })
            .collect();
        for c in conflicting {
            if !entry.callbacks_outstanding.contains(&c) {
                entry.callbacks_outstanding.insert(c);
                callbacks.push(c);
            }
        }
        self.stats.blocks += 1;
        self.stats.callbacks += callbacks.len() as u64;
        callbacks
    }

    /// Can (txn, mode) be granted given current holders? Ignores the queue.
    fn grantable(entry: &Entry, txn: TxnId, client: ClientId, mode: Mode, upgrade: bool) -> bool {
        entry.holders.iter().all(|h| match h.owner {
            Owner::Txn(t) => {
                if t == txn {
                    // Own S holder is compatible only in the upgrade path.
                    upgrade
                } else {
                    h.mode.compatible(mode)
                }
            }
            Owner::Retained(c) => c == client || h.mode.compatible(mode),
        })
    }

    fn install(entry: &mut Entry, txn: TxnId, _client: ClientId, mode: Mode, upgrade: bool) {
        if upgrade {
            for h in &mut entry.holders {
                if h.owner == Owner::Txn(txn) {
                    h.mode = Mode::X;
                    return;
                }
            }
            unreachable!("upgrade without S holder");
        }
        entry.holders.push(Holder {
            owner: Owner::Txn(txn),
            mode,
        });
    }

    /// Remove the client's own retained holder once its transaction holds a
    /// transaction lock on the page.
    fn absorb_retained(&mut self, page: PageId, client: ClientId) {
        if let Some(entry) = self.table.get_mut(&page) {
            let before = entry.holders.len();
            entry.holders.retain(|h| h.owner != Owner::Retained(client));
            if entry.holders.len() != before {
                if let Some(set) = self.retained_by.get_mut(&client) {
                    set.remove(&page);
                }
            }
        }
    }

    /// Release every lock of `txn`. If `retain_for` is given (callback
    /// locking), the transaction's locks are demoted to retained read locks
    /// of that client instead of vanishing. Returns the grants this
    /// enables, plus callbacks that newly-retained locks must now receive
    /// (an X waiter was queued behind the demoted lock).
    pub fn release_all(
        &mut self,
        txn: TxnId,
        retain_for: Option<ClientId>,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let policy = match retain_for {
            Some(c) => RetainPolicy::Read(c),
            None => RetainPolicy::Drop,
        };
        self.release_all_policy(txn, policy)
    }

    /// [`LockManager::release_all`] with an explicit retention policy.
    pub fn release_all_policy(
        &mut self,
        txn: TxnId,
        policy: RetainPolicy,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let pages = self.take_held(txn);
        let mut wakes = Vec::new();
        let mut callbacks = Vec::new();
        for page in pages {
            let (w, cb) = self.release_one_page(txn, page, policy);
            wakes.extend(w);
            callbacks.extend(cb);
        }
        self.finish_txn(txn);
        (wakes, callbacks)
    }

    /// Drain the set of pages `txn` holds granted locks on, in page order
    /// (the order releases — and therefore simulation events — happen in).
    pub(crate) fn take_held(&mut self, txn: TxnId) -> Vec<PageId> {
        self.held
            .remove(&txn)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }

    /// Release `txn`'s granted lock on one `page` (taken from
    /// [`LockManager::take_held`]) under `policy`, then grant whatever the
    /// release enables. A sharded facade drives this page by page so the
    /// grant order stays the global page order regardless of sharding.
    pub(crate) fn release_one_page(
        &mut self,
        txn: TxnId,
        page: PageId,
        policy: RetainPolicy,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let entry = self.table.get_mut(&page).expect("held page has entry");
        match policy {
            RetainPolicy::Read(client) | RetainPolicy::ReadWrite(client) => {
                let keep_mode = matches!(policy, RetainPolicy::ReadWrite(_));
                for h in &mut entry.holders {
                    if h.owner == Owner::Txn(txn) {
                        h.owner = Owner::Retained(client);
                        if !keep_mode {
                            h.mode = Mode::S;
                        }
                    }
                }
                // Collapse duplicate retained holders (txn lock absorbed
                // an earlier retained one and is now demoted back);
                // keep the stronger mode.
                entry.holders.sort_by_key(|h| match (h.owner, h.mode) {
                    (Owner::Retained(_), Mode::X) => 0u8,
                    _ => 1,
                });
                let mut seen = HashSet::default();
                entry.holders.retain(|h| match h.owner {
                    Owner::Retained(c) => seen.insert(c),
                    Owner::Txn(_) => true,
                });
                self.retained_by.entry(client).or_default().insert(page);
            }
            RetainPolicy::Drop => {
                entry.holders.retain(|h| h.owner != Owner::Txn(txn));
            }
        }
        self.clear_deferred_of(txn);
        self.try_grant(page)
    }

    /// Drop the wait-for edges of deferred callbacks promised "release when
    /// `txn` ends" — `txn` has ended. The actual lock release is performed
    /// by the *client* in the full protocol (a message round), so here we
    /// only keep the bookkeeping consistent; ccdb-core calls
    /// `release_retained` when the client's release message arrives.
    pub(crate) fn clear_deferred_of(&mut self, txn: TxnId) {
        self.deferred.retain(|_, t| *t != txn);
    }

    /// Forget the txn → client mapping once every lock is released.
    pub(crate) fn finish_txn(&mut self, txn: TxnId) {
        self.txn_client.remove(&txn);
    }

    /// Withdraw every queued request of `txn` (a page can carry several:
    /// an S and an X of the same no-wait transaction).
    pub(crate) fn withdraw_queued_requests(&mut self, txn: TxnId) {
        if let Some(pages) = self.waiting.remove(&txn) {
            for page in pages.keys() {
                if let Some(entry) = self.table.get_mut(page) {
                    entry.queue.retain(|r| r.txn != txn);
                }
            }
        }
    }

    /// Abort `txn`: drop held locks (no retention) and queued requests.
    /// Returns grants enabled by the release.
    pub fn abort(&mut self, txn: TxnId) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        self.withdraw_queued_requests(txn);
        self.release_all(txn, None)
    }

    /// A client released a retained read lock (callback honoured, or a
    /// clean cached page with a lock was evicted). Returns enabled grants
    /// and any further callbacks the new queue head needs.
    pub fn release_retained(
        &mut self,
        client: ClientId,
        page: PageId,
    ) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        if let Some(set) = self.retained_by.get_mut(&client) {
            set.remove(&page);
        }
        self.deferred.remove(&(page, client));
        let Some(entry) = self.table.get_mut(&page) else {
            return (Vec::new(), Vec::new());
        };
        entry.holders.retain(|h| h.owner != Owner::Retained(client));
        entry.callbacks_outstanding.remove(&client);
        let out = self.try_grant(page);
        if let Some(e) = self.table.get(&page) {
            if e.is_empty() {
                self.table.remove(&page);
            }
        }
        out
    }

    /// A client answered a callback with "in use by my current transaction
    /// `blocker`; will release when it ends". Inserts the wait-for edges;
    /// if that closes a cycle, returns a victim (a waiter on this page)
    /// that must be aborted to break the deadlock.
    pub fn callback_deferred(
        &mut self,
        page: PageId,
        client: ClientId,
        blocker: TxnId,
    ) -> Option<TxnId> {
        self.insert_deferred(page, client, blocker);
        // Any X waiter on this page now (transitively) waits for `blocker`.
        self.page_waiters(page)
            .into_iter()
            .find(|&w| self.wait_cycle_through(w))
    }

    /// Record the deferred-callback promise (page, client) → `blocker`
    /// without the cycle check (the sharded facade checks globally).
    pub(crate) fn insert_deferred(&mut self, page: PageId, client: ClientId, blocker: TxnId) {
        self.deferred.insert((page, client), blocker);
    }

    /// Transactions queued on `page`, in queue order.
    pub(crate) fn page_waiters(&self, page: PageId) -> Vec<TxnId> {
        self.table
            .get(&page)
            .map(|e| e.queue.iter().map(|r| r.txn).collect())
            .unwrap_or_default()
    }

    /// Retained holders of a page (tests / server directory cross-checks).
    pub fn retained_holders(&self, page: PageId) -> Vec<ClientId> {
        self.table
            .get(&page)
            .map(|e| e.retained_clients())
            .unwrap_or_default()
    }

    /// One queued request of `txn` on `page` left the queue: decrement the
    /// waiting multiset.
    fn note_dequeued(&mut self, txn: TxnId, page: PageId) {
        if let Some(set) = self.waiting.get_mut(&txn) {
            if let Some(count) = set.get_mut(&page) {
                *count -= 1;
                if *count == 0 {
                    set.remove(&page);
                }
            }
            if set.is_empty() {
                self.waiting.remove(&txn);
            }
        }
    }

    /// Grant queued requests that have become compatible, FCFS with shared
    /// batching. Returns grants plus callbacks required because the new
    /// queue head conflicts with retained locks.
    fn try_grant(&mut self, page: PageId) -> (Vec<Wake>, Vec<(ClientId, PageId)>) {
        let mut wakes = Vec::new();
        let mut callbacks = Vec::new();
        #[allow(clippy::while_let_loop)] // multiple break sites below
        loop {
            let Some(entry) = self.table.get_mut(&page) else {
                break;
            };
            let Some(head) = entry.queue.front().cloned() else {
                break;
            };
            // A queued X whose transaction has meanwhile been granted S on
            // this page (no-wait sends S then X asynchronously) is an
            // upgrade even though it was not one when it was queued.
            let upgrade =
                head.upgrade || (head.mode == Mode::X && entry.txn_mode(head.txn) == Some(Mode::S));
            if Self::grantable(entry, head.txn, head.client, head.mode, upgrade) {
                entry.queue.pop_front();
                Self::install(entry, head.txn, head.client, head.mode, upgrade);
                self.held.entry(head.txn).or_default().insert(page);
                self.note_dequeued(head.txn, page);
                self.absorb_retained(page, head.client);
                wakes.push(Wake {
                    txn: head.txn,
                    page,
                });
                continue;
            }
            // Head still blocked; if retained locks stand in the way and
            // no callback is outstanding yet, the caller must issue one
            // (this happens when a commit demotes locks to retained).
            let pending: Vec<ClientId> = entry
                .holders
                .iter()
                .filter_map(|h| match h.owner {
                    Owner::Retained(c)
                        if c != head.client
                            && !h.mode.compatible(head.mode)
                            && !entry.callbacks_outstanding.contains(&c) =>
                    {
                        Some(c)
                    }
                    _ => None,
                })
                .collect();
            for c in pending {
                entry.callbacks_outstanding.insert(c);
                self.stats.callbacks += 1;
                callbacks.push((c, page));
            }
            break;
        }
        if let Some(e) = self.table.get(&page) {
            if e.is_empty() {
                self.table.remove(&page);
            }
        }
        (wakes, callbacks)
    }

    // ---- Deadlock detection -------------------------------------------

    /// True if `start` is on a wait-for cycle in the graph derived from the
    /// lock table plus deferred-callback promises.
    fn wait_cycle_through(&self, start: TxnId) -> bool {
        // Iterative DFS from `start`; cycle iff we can reach `start` again.
        let mut stack: Vec<TxnId> = self.wait_targets(start);
        let mut visited: HashSet<TxnId> = HashSet::default();
        while let Some(t) = stack.pop() {
            if t == start {
                return true;
            }
            if visited.insert(t) {
                stack.extend(self.wait_targets(t));
            }
        }
        false
    }

    /// Transactions that `txn` directly waits for (one shard's edges; the
    /// sharded facade unions these across shards for global detection).
    pub(crate) fn wait_targets(&self, txn: TxnId) -> Vec<TxnId> {
        let mut out = Vec::new();
        let Some(pages) = self.waiting.get(&txn) else {
            return out;
        };
        for &page in pages.keys() {
            let Some(entry) = self.table.get(&page) else {
                continue;
            };
            // The transaction may have several requests queued on this
            // page (no-wait: S then X); each contributes edges.
            for (idx, me) in entry.queue.iter().enumerate() {
                if me.txn != txn {
                    continue;
                }
                // Conflicting current holders.
                for h in &entry.holders {
                    match h.owner {
                        Owner::Txn(t) if t != txn && !(h.mode.compatible(me.mode)) => out.push(t),
                        Owner::Retained(c) if c != me.client && !h.mode.compatible(me.mode) => {
                            // Only a deferred promise creates a real edge;
                            // an un-answered callback is a transient wait.
                            if let Some(&blocker) = self.deferred.get(&(page, c)) {
                                out.push(blocker);
                            }
                        }
                        _ => {}
                    }
                }
                // Conflicting waiters ahead in the queue (they will be
                // granted before us).
                for r in entry.queue.iter().take(idx) {
                    if r.txn != txn && !r.mode.compatible(me.mode) {
                        out.push(r.txn);
                    }
                }
            }
        }
        out
    }

    /// Assert that `txn` holds no locks and has no queued requests
    /// anywhere in the table (used by the simulator's oracle to catch lock
    /// leaks at transaction end).
    pub fn assert_txn_gone(&self, txn: TxnId) {
        for (page, entry) in &self.table {
            for h in &entry.holders {
                assert!(
                    h.owner != Owner::Txn(txn),
                    "lock leak: {txn:?} still holds {:?} on {page:?}",
                    h.mode
                );
            }
            for r in &entry.queue {
                assert!(r.txn != txn, "queue leak: {txn:?} still queued on {page:?}");
            }
        }
        assert!(!self.held.contains_key(&txn), "held-map leak for {txn:?}");
        assert!(
            !self.waiting.contains_key(&txn),
            "waiting-map leak for {txn:?}"
        );
    }

    /// Human-readable dump of one page's lock entry (diagnostics).
    pub fn debug_entry(&self, page: PageId) -> String {
        match self.table.get(&page) {
            None => "<no entry>".to_string(),
            Some(e) => format!(
                "holders={:?} queue={:?} callbacks_outstanding={:?}",
                e.holders
                    .iter()
                    .map(|h| format!("{:?}:{:?}", h.owner, h.mode))
                    .collect::<Vec<_>>(),
                e.queue
                    .iter()
                    .map(|r| format!(
                        "{:?}:{:?}{}",
                        r.txn,
                        r.mode,
                        if r.upgrade { "^" } else { "" }
                    ))
                    .collect::<Vec<_>>(),
                e.callbacks_outstanding
            ),
        }
    }

    /// Consistency check used by tests: no two incompatible granted locks
    /// coexist on any page (a client's retained S never conflicts with its
    /// own transaction's lock because it is absorbed on grant).
    pub fn assert_consistent(&self) {
        for (page, entry) in &self.table {
            for (i, a) in entry.holders.iter().enumerate() {
                for b in entry.holders.iter().skip(i + 1) {
                    let ok = a.mode.compatible(b.mode)
                        || match (a.owner, b.owner) {
                            (Owner::Retained(c1), Owner::Retained(c2)) => c1 == c2,
                            _ => false,
                        };
                    assert!(ok, "incompatible holders on {page:?}: {a:?} vs {b:?}");
                }
            }
        }
    }
}
