//! # ccdb-lock — page-granularity lock manager
//!
//! The server lock manager of the simulated DBMS (paper §3.3.4), extended
//! with the machinery callback locking needs (§2.3):
//!
//! * shared / exclusive locks at page granularity, FCFS wait queues with
//!   upgrade-to-front semantics;
//! * *retained* locks owned by a **client** rather than a transaction,
//!   surviving transaction commit;
//! * callback bookkeeping: an exclusive request that conflicts with
//!   retained locks reports which clients must be called back, and
//!   deferred callback replies insert wait-for edges against the client's
//!   current transaction;
//! * continuous deadlock detection over a wait-for graph derived from the
//!   lock table, with the requester as victim.
//!
//! The crate is pure logic: no simulated time, no I/O. The `ccdb-core`
//! crate turns [`RequestOutcome::Blocked`] into a parked simulation process
//! and fires it when [`LockManager::release_all`] (etc.) reports the grant.

#![warn(missing_docs)]

mod manager;
mod sharded;

pub use manager::{
    ClientId, LockManager, LockStats, Mode, Owner, RequestOutcome, RetainPolicy, TxnId, Wake,
};
pub use sharded::{page_shard, ShardedLockManager};
