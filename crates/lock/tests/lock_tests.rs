//! Behavioural tests of the lock manager, covering every protocol path the
//! algorithms rely on.

use ccdb_lock::{ClientId, LockManager, Mode, RequestOutcome, TxnId};
use ccdb_model::{ClassId, PageId};

fn page(n: u32) -> PageId {
    PageId {
        class: ClassId(0),
        atom: n,
    }
}

fn granted(o: &RequestOutcome) -> bool {
    matches!(o, RequestOutcome::Granted)
}

fn blocked(o: &RequestOutcome) -> bool {
    matches!(o, RequestOutcome::Blocked { .. })
}

#[test]
fn shared_locks_coexist() {
    let mut lm = LockManager::new();
    for i in 0..5 {
        let o = lm.request(TxnId(i), ClientId(i as u32), page(1), Mode::S);
        assert!(granted(&o));
    }
    lm.assert_consistent();
}

#[test]
fn exclusive_conflicts_with_shared() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    let o = lm.request(TxnId(2), ClientId(2), page(1), Mode::X);
    assert!(blocked(&o));
    lm.assert_consistent();
}

#[test]
fn release_grants_waiter_fcfs() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(3),
        ClientId(3),
        page(1),
        Mode::X
    )));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(2));
    let (wakes, _) = lm.release_all(TxnId(2), None);
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(3));
}

#[test]
fn shared_batch_granted_together() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    assert!(blocked(&lm.request(
        TxnId(3),
        ClientId(3),
        page(1),
        Mode::S
    )));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    let woken: Vec<TxnId> = wakes.iter().map(|w| w.txn).collect();
    assert_eq!(woken, vec![TxnId(2), TxnId(3)]);
    lm.assert_consistent();
}

#[test]
fn no_barging_past_x_waiter() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::X
    )));
    // A new S request must queue behind the X waiter even though it is
    // compatible with the current holder.
    assert!(blocked(&lm.request(
        TxnId(3),
        ClientId(3),
        page(1),
        Mode::S
    )));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    assert_eq!(wakes[0].txn, TxnId(2));
}

#[test]
fn reentrant_requests_are_granted() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
    // S after X is covered by X.
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
}

#[test]
fn upgrade_when_sole_holder() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert_eq!(lm.holds(TxnId(1), page(1)), Some(Mode::X));
}

#[test]
fn upgrade_waits_for_other_readers_and_jumps_queue() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    // Another writer queues first.
    assert!(blocked(&lm.request(
        TxnId(3),
        ClientId(3),
        page(1),
        Mode::X
    )));
    // Upgrader goes to the front of the queue.
    assert!(blocked(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    let (wakes, _) = lm.release_all(TxnId(2), None);
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(1), "upgrader granted before writer");
    assert_eq!(lm.holds(TxnId(1), page(1)), Some(Mode::X));
}

#[test]
fn upgrade_deadlock_detected() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    assert!(blocked(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    // Second upgrader closes the cycle.
    let o = lm.request(TxnId(2), ClientId(2), page(1), Mode::X);
    assert_eq!(o, RequestOutcome::Deadlock);
    assert_eq!(lm.stats().deadlocks, 1);
}

#[test]
fn two_page_deadlock_detected() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(2),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
    let o = lm.request(TxnId(2), ClientId(2), page(1), Mode::X);
    assert_eq!(o, RequestOutcome::Deadlock);
    // Victim aborts; waiter 1 gets page 2.
    let (wakes, _) = lm.abort(TxnId(2));
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(1));
}

#[test]
fn three_txn_cycle_detected() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(2),
        Mode::X
    )));
    assert!(granted(&lm.request(
        TxnId(3),
        ClientId(3),
        page(3),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(3),
        Mode::X
    )));
    let o = lm.request(TxnId(3), ClientId(3), page(1), Mode::X);
    assert_eq!(o, RequestOutcome::Deadlock);
}

#[test]
fn abort_withdraws_queued_request() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(3),
        ClientId(3),
        page(1),
        Mode::X
    )));
    lm.abort(TxnId(2));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(3));
}

#[test]
fn commit_retains_read_locks() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
    let (wakes, callbacks) = lm.release_all(TxnId(1), Some(ClientId(1)));
    assert!(wakes.is_empty() && callbacks.is_empty());
    assert!(lm.has_retained(ClientId(1), page(1)));
    // X lock demoted to retained S.
    assert!(lm.has_retained(ClientId(1), page(2)));
    assert_eq!(lm.holds(TxnId(1), page(1)), None);
    lm.assert_consistent();
}

#[test]
fn retained_lock_does_not_block_own_client() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    // Next transaction of the same client writes the page: granted, and
    // the retained lock is absorbed.
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(!lm.has_retained(ClientId(1), page(1)));
    lm.assert_consistent();
}

#[test]
fn retained_lock_blocks_other_writer_with_callback() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    let o = lm.request(TxnId(2), ClientId(2), page(1), Mode::X);
    match o {
        RequestOutcome::Blocked { callbacks } => assert_eq!(callbacks, vec![ClientId(1)]),
        other => panic!("expected blocked-with-callback, got {other:?}"),
    }
    // Client 1 releases (idle, so immediately): writer granted.
    let (wakes, _) = lm.release_retained(ClientId(1), page(1));
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(2));
}

#[test]
fn retained_lock_allows_other_readers() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    lm.assert_consistent();
}

#[test]
fn callback_sent_once_per_client() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    match lm.request(TxnId(2), ClientId(2), page(1), Mode::X) {
        RequestOutcome::Blocked { callbacks } => assert_eq!(callbacks.len(), 1),
        o => panic!("unexpected {o:?}"),
    }
    // A second writer queues; no duplicate callback.
    match lm.request(TxnId(3), ClientId(3), page(1), Mode::X) {
        RequestOutcome::Blocked { callbacks } => assert!(callbacks.is_empty()),
        o => panic!("unexpected {o:?}"),
    }
    assert_eq!(lm.stats().callbacks, 1);
}

#[test]
fn demotion_behind_waiter_triggers_callback() {
    let mut lm = LockManager::new();
    // Txn 1 (client 1) holds X; txn 2 queues for X.
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::X
    )));
    // Txn 1 commits retaining its lock as a read lock: txn 2 still blocked,
    // and client 1 must now be called back.
    let (wakes, callbacks) = lm.release_all(TxnId(1), Some(ClientId(1)));
    assert!(wakes.is_empty());
    assert_eq!(callbacks, vec![(ClientId(1), page(1))]);
    let (wakes, _) = lm.release_retained(ClientId(1), page(1));
    assert_eq!(wakes.len(), 1);
    assert_eq!(wakes[0].txn, TxnId(2));
}

#[test]
fn deferred_callback_creates_deadlock_edge() {
    let mut lm = LockManager::new();
    // Client 1 retains p1; client 2 retains p2.
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(2),
        Mode::S
    )));
    lm.release_all(TxnId(2), Some(ClientId(2)));
    // Current txns: T11 on client 1, T12 on client 2.
    // T12 wants X on p1 (retained by client 1); T11 wants X on p2.
    assert!(blocked(&lm.request(
        TxnId(12),
        ClientId(2),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(11),
        ClientId(1),
        page(2),
        Mode::X
    )));
    // Client 1's current txn T11 uses p1 -> deferred; no cycle yet
    // (T12 -> T11, T11 waits on p2 retained by client 2, not yet deferred).
    assert_eq!(lm.callback_deferred(page(1), ClientId(1), TxnId(11)), None);
    // Client 2's current txn T12 uses p2 -> deferred; now T11 -> T12 -> T11.
    let victim = lm.callback_deferred(page(2), ClientId(2), TxnId(12));
    assert!(victim == Some(TxnId(11)) || victim == Some(TxnId(12)));
}

#[test]
fn eviction_release_of_retained_lock() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    assert!(lm.has_retained(ClientId(1), page(1)));
    let (wakes, _) = lm.release_retained(ClientId(1), page(1));
    assert!(wakes.is_empty());
    assert!(!lm.has_retained(ClientId(1), page(1)));
    assert_eq!(lm.table_len(), 0, "empty entries are garbage-collected");
}

#[test]
fn retained_pages_listing() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    let mut pages = lm.retained_pages(ClientId(1));
    pages.sort_by_key(|p| p.atom);
    assert_eq!(pages, vec![page(1), page(2)]);
    assert_eq!(lm.retained_holders(page(1)), vec![ClientId(1)]);
}

#[test]
fn multiple_clients_retain_same_page() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::S
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    lm.release_all(TxnId(1), Some(ClientId(1)));
    lm.release_all(TxnId(2), Some(ClientId(2)));
    let mut holders = lm.retained_holders(page(1));
    holders.sort();
    assert_eq!(holders, vec![ClientId(1), ClientId(2)]);
    // A writer must call back both.
    match lm.request(TxnId(3), ClientId(3), page(1), Mode::X) {
        RequestOutcome::Blocked { callbacks } => {
            let mut cb = callbacks;
            cb.sort();
            assert_eq!(cb, vec![ClientId(1), ClientId(2)]);
        }
        o => panic!("unexpected {o:?}"),
    }
    // Both must release before the grant.
    let (w, _) = lm.release_retained(ClientId(1), page(1));
    assert!(w.is_empty());
    let (w, _) = lm.release_retained(ClientId(2), page(1));
    assert_eq!(w.len(), 1);
}

#[test]
fn stats_count_requests_blocks_deadlocks() {
    let mut lm = LockManager::new();
    lm.request(TxnId(1), ClientId(1), page(1), Mode::X);
    lm.request(TxnId(2), ClientId(2), page(1), Mode::X);
    let s = lm.stats();
    assert_eq!(s.requests, 2);
    assert_eq!(s.blocks, 1);
    assert_eq!(s.deadlocks, 0);
}

#[test]
fn release_all_without_locks_is_noop() {
    let mut lm = LockManager::new();
    let (wakes, callbacks) = lm.release_all(TxnId(99), None);
    assert!(wakes.is_empty() && callbacks.is_empty());
    let (wakes, _) = lm.abort(TxnId(98));
    assert!(wakes.is_empty());
}

#[test]
fn deadlock_request_leaves_no_residue() {
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(granted(&lm.request(
        TxnId(2),
        ClientId(2),
        page(2),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(1),
        ClientId(1),
        page(2),
        Mode::X
    )));
    assert_eq!(
        lm.request(TxnId(2), ClientId(2), page(1), Mode::X),
        RequestOutcome::Deadlock
    );
    // The refused request is fully withdrawn: releasing txn 1's locks must
    // not wake txn 2 on page 1.
    let (wakes, _) = lm.abort(TxnId(2));
    assert_eq!(wakes.len(), 1, "txn1 was waiting on page 2");
    assert_eq!(wakes[0].txn, TxnId(1));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    assert!(wakes.is_empty());
    assert_eq!(lm.table_len(), 0);
}

#[test]
fn queued_s_then_x_of_same_txn_becomes_upgrade() {
    // No-wait locking sends S and X for the same page asynchronously; both
    // can be queued behind a conflicting holder. Once the S is granted the
    // queued X must be treated as an upgrade, not self-blocked.
    let mut lm = LockManager::new();
    assert!(granted(&lm.request(
        TxnId(1),
        ClientId(1),
        page(1),
        Mode::X
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::S
    )));
    assert!(blocked(&lm.request(
        TxnId(2),
        ClientId(2),
        page(1),
        Mode::X
    )));
    let (wakes, _) = lm.release_all(TxnId(1), None);
    // Both of txn 2's requests resolve: S granted, then X as an upgrade.
    assert_eq!(wakes.len(), 2);
    assert!(wakes.iter().all(|w| w.txn == TxnId(2)));
    assert_eq!(lm.holds(TxnId(2), page(1)), Some(Mode::X));
    lm.assert_consistent();
}

mod write_retention {
    use super::*;
    use ccdb_lock::RetainPolicy;

    #[test]
    fn read_write_policy_keeps_exclusive_mode() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.request(
            TxnId(1),
            ClientId(1),
            page(1),
            Mode::X
        )));
        assert!(granted(&lm.request(
            TxnId(1),
            ClientId(1),
            page(2),
            Mode::S
        )));
        lm.release_all_policy(TxnId(1), RetainPolicy::ReadWrite(ClientId(1)));
        assert_eq!(lm.retained_mode(ClientId(1), page(1)), Some(Mode::X));
        assert_eq!(lm.retained_mode(ClientId(1), page(2)), Some(Mode::S));
        lm.assert_consistent();
    }

    #[test]
    fn retained_x_blocks_readers_with_callback() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.request(
            TxnId(1),
            ClientId(1),
            page(1),
            Mode::X
        )));
        lm.release_all_policy(TxnId(1), RetainPolicy::ReadWrite(ClientId(1)));
        // Another client's *read* now conflicts and triggers a callback.
        match lm.request(TxnId(2), ClientId(2), page(1), Mode::S) {
            RequestOutcome::Blocked { callbacks } => {
                assert_eq!(callbacks, vec![ClientId(1)]);
            }
            o => panic!("expected blocked-with-callback, got {o:?}"),
        }
        let (wakes, _) = lm.release_retained(ClientId(1), page(1));
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].txn, TxnId(2));
    }

    #[test]
    fn retained_x_does_not_block_own_client() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.request(
            TxnId(1),
            ClientId(1),
            page(1),
            Mode::X
        )));
        lm.release_all_policy(TxnId(1), RetainPolicy::ReadWrite(ClientId(1)));
        // The owning client's next transaction absorbs its retained X.
        assert!(granted(&lm.request(
            TxnId(2),
            ClientId(1),
            page(1),
            Mode::X
        )));
        assert_eq!(lm.retained_mode(ClientId(1), page(1)), None);
        lm.assert_consistent();
    }

    #[test]
    fn demotion_to_read_under_default_policy() {
        let mut lm = LockManager::new();
        assert!(granted(&lm.request(
            TxnId(1),
            ClientId(1),
            page(1),
            Mode::X
        )));
        lm.release_all_policy(TxnId(1), RetainPolicy::Read(ClientId(1)));
        assert_eq!(lm.retained_mode(ClientId(1), page(1)), Some(Mode::S));
        // Readers from other clients are now fine.
        assert!(granted(&lm.request(
            TxnId(2),
            ClientId(2),
            page(1),
            Mode::S
        )));
    }
}
