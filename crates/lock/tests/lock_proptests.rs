//! Property-based tests: the lock manager must maintain its invariants
//! under arbitrary interleavings of requests, releases, aborts, retention,
//! and callback resolution.

use std::collections::{HashMap, HashSet};

use ccdb_lock::{ClientId, LockManager, Mode, RequestOutcome, ShardedLockManager, TxnId, Wake};
use ccdb_model::{ClassId, PageId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Request { txn: u8, page: u8, x: bool },
    Commit { txn: u8, retain: bool },
    Abort { txn: u8 },
    ReleaseRetained { client: u8, page: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..8u8, 0..6u8, any::<bool>()).prop_map(|(txn, page, x)| Op::Request { txn, page, x }),
        (0..8u8, any::<bool>()).prop_map(|(txn, retain)| Op::Commit { txn, retain }),
        (0..8u8).prop_map(|txn| Op::Abort { txn }),
        (0..8u8, 0..6u8).prop_map(|(client, page)| Op::ReleaseRetained { client, page }),
    ]
}

fn page(n: u8) -> PageId {
    PageId {
        class: ClassId(0),
        atom: n as u32,
    }
}

/// Client of txn t: txn ids 0..8 map to clients 0..4 (two txns per client
/// would be illegal concurrently, so use one client per txn id here).
fn client_of(txn: u8) -> ClientId {
    ClientId(txn as u32)
}

/// A model-tracking harness: drives the real lock manager, tracks which
/// requests are outstanding, and checks invariants after every step.
struct Harness {
    lm: LockManager,
    /// (txn, page) pairs with an outstanding blocked request.
    pending: HashSet<(u8, u8)>,
    /// Granted (txn -> pages, mode).
    granted: HashMap<u8, HashMap<u8, Mode>>,
    /// Live transactions (requested at least once, not yet ended).
    live: HashSet<u8>,
}

impl Harness {
    fn new() -> Self {
        Harness {
            lm: LockManager::new(),
            pending: HashSet::new(),
            granted: HashMap::new(),
            live: HashSet::new(),
        }
    }

    fn apply_wakes(&mut self, wakes: &[Wake]) {
        for w in wakes {
            let t = w.txn.0 as u8;
            let p = w.page.atom as u8;
            assert!(
                self.pending.remove(&(t, p)),
                "grant for a request that was not pending: txn {t} page {p}"
            );
            let mode = self.lm.holds(w.txn, w.page).expect("woken txn holds lock");
            self.granted.entry(t).or_default().insert(p, mode);
        }
    }

    fn step(&mut self, op: &Op) {
        match *op {
            Op::Request { txn, page: p, x } => {
                // One outstanding request per (txn, page); skip if already
                // waiting there (mirrors the simulator: a handler parks).
                if self.pending.iter().any(|&(t, pg)| t == txn && pg == p) {
                    return;
                }
                self.live.insert(txn);
                let mode = if x { Mode::X } else { Mode::S };
                match self
                    .lm
                    .request(TxnId(txn as u64), client_of(txn), page(p), mode)
                {
                    RequestOutcome::Granted => {
                        self.granted.entry(txn).or_default().insert(p, mode);
                    }
                    RequestOutcome::Blocked { .. } => {
                        self.pending.insert((txn, p));
                    }
                    RequestOutcome::Deadlock => {
                        // Requester aborts: all its locks and waits vanish.
                        let (wakes, _) = self.lm.abort(TxnId(txn as u64));
                        self.granted.remove(&txn);
                        self.pending.retain(|&(t, _)| t != txn);
                        self.live.remove(&txn);
                        self.apply_wakes(&wakes);
                    }
                }
            }
            Op::Commit { txn, retain } => {
                if !self.live.contains(&txn) {
                    return;
                }
                // A transaction with a pending request cannot commit.
                if self.pending.iter().any(|&(t, _)| t == txn) {
                    return;
                }
                let retain_for = retain.then(|| client_of(txn));
                let (wakes, _cb) = self.lm.release_all(TxnId(txn as u64), retain_for);
                self.granted.remove(&txn);
                self.live.remove(&txn);
                self.apply_wakes(&wakes);
            }
            Op::Abort { txn } => {
                if !self.live.contains(&txn) {
                    return;
                }
                let (wakes, _cb) = self.lm.abort(TxnId(txn as u64));
                self.granted.remove(&txn);
                self.pending.retain(|&(t, _)| t != txn);
                self.live.remove(&txn);
                self.apply_wakes(&wakes);
            }
            Op::ReleaseRetained { client, page: p } => {
                let (wakes, _cb) = self.lm.release_retained(ClientId(client as u32), page(p));
                self.apply_wakes(&wakes);
            }
        }
        self.check();
    }

    fn check(&self) {
        // 1. The lock table never holds incompatible granted locks.
        self.lm.assert_consistent();
        // 2. Our mirror of granted locks agrees with the manager.
        for (&txn, pages) in &self.granted {
            for (&p, &mode) in pages {
                let held = self.lm.holds(TxnId(txn as u64), page(p));
                assert!(
                    held.is_some(),
                    "mirror says txn {txn} holds page {p}, manager disagrees"
                );
                if mode == Mode::X {
                    assert_eq!(held, Some(Mode::X));
                }
            }
        }
        // 3. No writer coexists with another lock on the same page.
        let mut writers: HashMap<u8, u8> = HashMap::new();
        for (&txn, pages) in &self.granted {
            for (&p, &mode) in pages {
                if mode == Mode::X {
                    if let Some(prev) = writers.insert(p, txn) {
                        panic!("two writers on page {p}: {prev} and {txn}");
                    }
                }
            }
        }
        for (&p, &w) in &writers {
            for (&txn, pages) in &self.granted {
                if txn != w && pages.contains_key(&p) {
                    panic!("reader {txn} coexists with writer {w} on page {p}");
                }
            }
        }
    }

    /// Drain: end every live transaction and honour every retained lock
    /// release; afterwards nothing must remain pending.
    fn drain(&mut self) {
        let live: Vec<u8> = self.live.iter().copied().collect();
        for txn in live {
            // Abort releases both held locks and queued requests, so it
            // always makes progress regardless of wait states.
            self.step(&Op::Abort { txn });
        }
        for client in 0..8u8 {
            for p in 0..6u8 {
                self.step(&Op::ReleaseRetained { client, page: p });
            }
        }
        assert!(
            self.pending.is_empty(),
            "requests left pending after drain: {:?}",
            self.pending
        );
        assert_eq!(self.lm.table_len(), 0, "lock table not empty after drain");
    }
}

/// Drive a 1-shard and an `n`-shard manager through the same operation
/// trace and demand identical observable behaviour: request outcomes
/// (including callback lists), wakes, release callbacks, deadlock
/// victims, and the summed statistics.
fn assert_shard_equivalent(ops: &[Op], shards: u32) {
    let one = ShardedLockManager::new(1);
    let many = ShardedLockManager::new(shards);
    // Track live txns / pending requests on the 1-shard manager only (the
    // equivalence assertions keep `many` in lockstep).
    let mut live: HashSet<u8> = HashSet::new();
    let mut pending: HashSet<(u8, u8)> = HashSet::new();
    for op in ops {
        match *op {
            Op::Request { txn, page: p, x } => {
                if pending.iter().any(|&(t, pg)| t == txn && pg == p) {
                    continue;
                }
                live.insert(txn);
                let mode = if x { Mode::X } else { Mode::S };
                let a = one.request(TxnId(txn as u64), client_of(txn), page(p), mode);
                let b = many.request(TxnId(txn as u64), client_of(txn), page(p), mode);
                prop_assert_eq!(&a, &b, "request({}, {}, {:?}) diverged", txn, p, mode);
                match a {
                    RequestOutcome::Granted => {}
                    RequestOutcome::Blocked { .. } => {
                        pending.insert((txn, p));
                    }
                    RequestOutcome::Deadlock => {
                        let (wa, ca) = one.abort(TxnId(txn as u64));
                        let (wb, cb) = many.abort(TxnId(txn as u64));
                        prop_assert_eq!(&wa, &wb);
                        prop_assert_eq!(&ca, &cb);
                        for w in &wa {
                            pending.remove(&(w.txn.0 as u8, w.page.atom as u8));
                        }
                        pending.retain(|&(t, _)| t != txn);
                        live.remove(&txn);
                    }
                }
            }
            Op::Commit { txn, retain } => {
                if !live.contains(&txn) || pending.iter().any(|&(t, _)| t == txn) {
                    continue;
                }
                let retain_for = retain.then(|| client_of(txn));
                let (wa, ca) = one.release_all(TxnId(txn as u64), retain_for);
                let (wb, cb) = many.release_all(TxnId(txn as u64), retain_for);
                prop_assert_eq!(&wa, &wb, "commit wakes diverged");
                prop_assert_eq!(&ca, &cb, "commit callbacks diverged");
                for w in &wa {
                    pending.remove(&(w.txn.0 as u8, w.page.atom as u8));
                }
                live.remove(&txn);
            }
            Op::Abort { txn } => {
                if !live.contains(&txn) {
                    continue;
                }
                let (wa, ca) = one.abort(TxnId(txn as u64));
                let (wb, cb) = many.abort(TxnId(txn as u64));
                prop_assert_eq!(&wa, &wb, "abort wakes diverged");
                prop_assert_eq!(&ca, &cb, "abort callbacks diverged");
                for w in &wa {
                    pending.remove(&(w.txn.0 as u8, w.page.atom as u8));
                }
                pending.retain(|&(t, _)| t != txn);
                live.remove(&txn);
            }
            Op::ReleaseRetained { client, page: p } => {
                let (wa, ca) = one.release_retained(ClientId(client as u32), page(p));
                let (wb, cb) = many.release_retained(ClientId(client as u32), page(p));
                prop_assert_eq!(&wa, &wb, "retained-release wakes diverged");
                prop_assert_eq!(&ca, &cb, "retained-release callbacks diverged");
                for w in &wa {
                    pending.remove(&(w.txn.0 as u8, w.page.atom as u8));
                }
            }
        }
        one.assert_consistent();
        many.assert_consistent();
        prop_assert_eq!(one.table_len(), many.table_len());
        prop_assert_eq!(one.blocked_txn_count(), many.blocked_txn_count());
    }
    prop_assert_eq!(one.stats(), many.stats(), "summed stats diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any operation sequence maintains lock compatibility, mirrors agree,
    /// and full drain leaves an empty table (no leaked entries, no lost
    /// waiters).
    #[test]
    fn lock_manager_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut h = Harness::new();
        for op in &ops {
            h.step(op);
        }
        h.drain();
    }

    /// Without retention, pure reader workloads never block.
    #[test]
    fn readers_never_block(pages in proptest::collection::vec(0..6u8, 1..40)) {
        let mut lm = LockManager::new();
        for (i, &p) in pages.iter().enumerate() {
            let o = lm.request(TxnId(i as u64 % 8), client_of(i as u8 % 8), page(p), Mode::S);
            prop_assert_eq!(o, RequestOutcome::Granted);
        }
    }

    /// Sharding is transparent: any shard count grants, upgrades, blocks,
    /// and picks deadlock victims identically to the single-table manager
    /// over randomized request traces.
    #[test]
    fn sharded_manager_matches_single_table(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        shards in 2..7u32,
    ) {
        assert_shard_equivalent(&ops, shards);
    }

    /// Deferred-callback victim selection is also shard-transparent: the
    /// cycle check spans shards, so the victim (or its absence) matches.
    #[test]
    fn sharded_deferred_callback_victims_match(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        defer in proptest::collection::vec((0..8u8, 0..6u8, 0..8u8), 1..12),
        shards in 2..5u32,
    ) {
        let one = ShardedLockManager::new(1);
        let many = ShardedLockManager::new(shards);
        for op in &ops {
            // Only requests here: keep both tables populated identically
            // without tracking liveness (outcomes already proven equal by
            // sharded_manager_matches_single_table).
            if let Op::Request { txn, page: p, x } = *op {
                let mode = if x { Mode::X } else { Mode::S };
                let a = one.request(TxnId(txn as u64), client_of(txn), page(p), mode);
                let b = many.request(TxnId(txn as u64), client_of(txn), page(p), mode);
                prop_assert_eq!(&a, &b);
                if a == RequestOutcome::Deadlock {
                    prop_assert_eq!(one.abort(TxnId(txn as u64)), many.abort(TxnId(txn as u64)));
                }
            }
        }
        for &(client, p, blocker) in &defer {
            let va = one.callback_deferred(page(p), ClientId(client as u32), TxnId(blocker as u64));
            let vb = many.callback_deferred(page(p), ClientId(client as u32), TxnId(blocker as u64));
            prop_assert_eq!(va, vb, "deferred-callback victim diverged");
        }
    }

    /// A single transaction can never deadlock with itself.
    #[test]
    fn single_txn_never_deadlocks(ops in proptest::collection::vec((0..6u8, any::<bool>()), 1..40)) {
        let mut lm = LockManager::new();
        for &(p, x) in &ops {
            let mode = if x { Mode::X } else { Mode::S };
            let o = lm.request(TxnId(1), ClientId(1), page(p), mode);
            prop_assert_eq!(o, RequestOutcome::Granted);
        }
        let (wakes, _) = lm.release_all(TxnId(1), None);
        prop_assert!(wakes.is_empty());
        prop_assert_eq!(lm.table_len(), 0);
    }
}
