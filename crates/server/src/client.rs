//! A TCP load driver over the sans-io [`ClientCore`].
//!
//! One thread + connection per simulated workstation, each running the
//! repository's own workload generator ([`Workload`]) against a live
//! `ccdb serve` process. The protocol logic is *exactly* the DES
//! client's — same [`ClientCore`], same [`ClientCache`] — only the
//! transport (a socket instead of the simulated network) and the pacing
//! (no think times, a small real-time restart back-off) differ.
//!
//! After finishing its transactions a client stays connected, answering
//! callbacks and consuming notifications, until *every* client is done —
//! a retained read lock must remain callable-back for as long as anyone
//! might request the page — and only then says `Bye`.
//!
//! Page payloads are real: every `PageData` reply and `Update` install
//! is verified byte-for-byte against the deterministic
//! [`page_image`] for its (page, version), and commits ship the actual
//! images of their dirty pages. [`LoadSummary::pages_verified`] counts
//! the checks; any mismatch fails the run.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use ccdb_des::Pcg32;
use ccdb_lock::ClientId;
use ccdb_model::{table5_database, PageId, SystemParams, TxnParams, TxnSpec, Workload};
use ccdb_proto::{
    AbortKind, Action, Algorithm, ClientCore, CommitAction, OpId, ReplyKind, ServerCore, Tuning,
    C2S, S2C,
};
use ccdb_storage::{page_image, verify_page_image, ClientCache};

use crate::codec::{
    encode_frame_with_payload, read_frame, read_frame_with_payload, write_frame, Frame,
};

/// Configuration for [`load`].
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent client workstations.
    pub clients: u32,
    /// Committed transactions per client.
    pub txns: u32,
    /// Workload seed (stream-split per client, like the simulator).
    pub seed: u64,
}

/// What a load run produced.
#[derive(Clone, Debug, Default)]
pub struct LoadSummary {
    /// Algorithm label the server reported in its `HelloAck`.
    pub alg: String,
    /// Transactions committed (= clients × txns on success).
    pub commits: u64,
    /// Aborted attempts across all clients.
    pub aborts: u64,
    /// Page images verified byte-for-byte against their expected
    /// content (`PageData` replies and `Update` installs).
    pub pages_verified: u64,
}

struct Conn {
    writer: BufWriter<TcpStream>,
    rx: mpsc::Receiver<(S2C, Vec<u8>)>,
    page_size: u32,
}

impl Conn {
    fn send(&mut self, msg: C2S) -> io::Result<()> {
        // Commits carry their dirty pages' real images at the commit
        // version; every other client message is payload-free.
        let frame = if let C2S::Commit { txn, dirty, .. } = &msg {
            let version = ServerCore::commit_version(*txn);
            let mut payload = Vec::with_capacity(dirty.len() * self.page_size as usize);
            for p in dirty {
                payload.extend_from_slice(&page_image(*p, version, self.page_size as usize));
            }
            encode_frame_with_payload(&Frame::C2S(msg), self.page_size, &payload)
                .expect("commit payload sized to payload_bytes")
        } else {
            encode_frame_with_payload(&Frame::C2S(msg), self.page_size, &[])
                .expect("non-commit client messages are payload-free")
        };
        self.writer.write_all(&frame)?;
        self.writer.flush()
    }

    fn send_all(&mut self, msgs: Vec<C2S>) -> io::Result<()> {
        for m in msgs {
            self.send(m)?;
        }
        Ok(())
    }
}

fn payload_error(what: &str, page: PageId, version: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "{what} payload for page ({},{}) v{version} does not match its image",
            page.class.0, page.atom
        ),
    )
}

struct LoadClient {
    core: ClientCore,
    cache: ClientCache,
    conn: Conn,
    rng: Pcg32,
    aborts: u64,
    verified: u64,
}

impl LoadClient {
    /// Service an asynchronous server message and send whatever the core
    /// wants sent back (callback replies, retained-lock releases).
    /// `Update` broadcasts carry their pages' images; verify each one.
    fn handle_async(&mut self, msg: S2C, payload: &[u8]) -> io::Result<()> {
        if let S2C::Update { pages, version } = &msg {
            let ps = self.conn.page_size as usize;
            for (i, page) in pages.iter().enumerate() {
                let img = payload.get(i * ps..(i + 1) * ps).unwrap_or(&[]);
                if !verify_page_image(*page, *version, img) {
                    return Err(payload_error("Update", *page, *version));
                }
                self.verified += 1;
            }
        }
        let out = self.core.handle_async(&mut self.cache, msg);
        self.conn.send_all(out.sends)
    }

    /// Block until the reply for `op` arrives, servicing asynchronous
    /// messages that land in between. Returns the reply's payload too,
    /// so callers can verify shipped page images.
    fn await_reply(&mut self, op: OpId) -> io::Result<(ReplyKind, Vec<u8>)> {
        loop {
            let (msg, payload) =
                self.conn
                    .rx
                    .recv_timeout(Duration::from_secs(30))
                    .map_err(|_| {
                        io::Error::new(io::ErrorKind::TimedOut, "no reply from server (30s)")
                    })?;
            match msg {
                S2C::Reply { op: o, kind } if o == op => return Ok((kind, payload)),
                other => self.handle_async(other, &payload)?,
            }
        }
    }

    /// Check a `PageData` reply's payload against the page's image.
    fn verify_ship(&mut self, page: PageId, kind: &ReplyKind, payload: &[u8]) -> io::Result<()> {
        if let ReplyKind::PageData { version } = kind {
            if !verify_page_image(page, *version, payload) {
                return Err(payload_error("PageData", page, *version));
            }
            self.verified += 1;
        }
        Ok(())
    }

    /// Drain already-arrived messages, then surface a pending restart
    /// order (no-wait locking polls this before every step).
    fn check_abort(&mut self) -> io::Result<Result<(), AbortKind>> {
        while let Ok((msg, payload)) = self.conn.rx.try_recv() {
            self.handle_async(msg, &payload)?;
        }
        Ok(self.core.abort_pending())
    }

    fn read_page(&mut self, page: PageId) -> io::Result<Result<(), AbortKind>> {
        if matches!(self.core.algorithm(), Algorithm::NoWait { .. }) {
            if let Err(k) = self.check_abort()? {
                return Ok(Err(k));
            }
        }
        match self.core.read_step(&mut self.cache, page) {
            Action::Local { .. } => Ok(Ok(())),
            Action::Async(msg) => {
                self.conn.send(msg)?;
                Ok(Ok(()))
            }
            Action::Sync(sop) => {
                self.conn.send(sop.msg.clone())?;
                let (kind, payload) = self.await_reply(sop.op)?;
                self.verify_ship(page, &kind, &payload)?;
                match self
                    .core
                    .apply_read_reply(&mut self.cache, sop.kind, page, kind)
                {
                    Ok(sends) => {
                        self.conn.send_all(sends)?;
                        Ok(Ok(()))
                    }
                    Err(k) => Ok(Err(k)),
                }
            }
        }
    }

    fn write_page(&mut self, page: PageId) -> io::Result<Result<(), AbortKind>> {
        if matches!(self.core.algorithm(), Algorithm::NoWait { .. }) {
            if let Err(k) = self.check_abort()? {
                return Ok(Err(k));
            }
        }
        match self.core.write_step(&mut self.cache, page) {
            Action::Local { .. } => Ok(Ok(())),
            Action::Async(msg) => {
                self.conn.send(msg)?;
                Ok(Ok(()))
            }
            Action::Sync(sop) => {
                self.conn.send(sop.msg.clone())?;
                let (kind, payload) = self.await_reply(sop.op)?;
                self.verify_ship(page, &kind, &payload)?;
                match self.core.apply_write_reply(&mut self.cache, page, kind) {
                    Ok(sends) => {
                        self.conn.send_all(sends)?;
                        Ok(Ok(()))
                    }
                    Err(k) => Ok(Err(k)),
                }
            }
        }
    }

    fn commit(&mut self) -> io::Result<Result<(), AbortKind>> {
        if matches!(self.core.algorithm(), Algorithm::NoWait { .. }) {
            if let Err(k) = self.check_abort()? {
                return Ok(Err(k));
            }
        }
        match self.core.commit_step(&self.cache) {
            CommitAction::Local => Ok(Ok(())),
            CommitAction::Send { op, dirty, msg } => {
                self.conn.send(msg)?;
                let (kind, _payload) = self.await_reply(op)?;
                match self.core.apply_commit_reply(&mut self.cache, &dirty, kind) {
                    Ok(_version) => Ok(Ok(())),
                    Err(k) => Ok(Err(k)),
                }
            }
        }
    }

    /// One attempt of the paper's Figure-3 transaction shape: per object,
    /// read its pages, then update the written subset, then commit.
    fn execute(&mut self, spec: &TxnSpec) -> io::Result<Result<(), AbortKind>> {
        for op in &spec.ops {
            for &page in &op.pages {
                if let Err(k) = self.read_page(page)? {
                    return Ok(Err(k));
                }
            }
            let write_pages: Vec<PageId> = op
                .pages
                .iter()
                .zip(&op.writes)
                .filter(|(_, w)| **w)
                .map(|(p, _)| *p)
                .collect();
            for &page in &write_pages {
                if let Err(k) = self.write_page(page)? {
                    return Ok(Err(k));
                }
            }
        }
        self.commit()
    }

    fn run_txn(&mut self, spec: &TxnSpec) -> io::Result<()> {
        loop {
            self.core.begin_attempt();
            match self.execute(spec)? {
                Ok(()) => {
                    let sends = self.core.finish_commit(&mut self.cache);
                    self.conn.send_all(sends)?;
                    return Ok(());
                }
                Err(_kind) => {
                    self.aborts += 1;
                    let sends = self.core.abort_cleanup(&mut self.cache);
                    self.conn.send_all(sends)?;
                    // Real-time stand-in for the simulator's exponential
                    // restart delay: enough jitter to break livelock.
                    let ms = 1 + (self.rng.next_u32() % 8) as u64;
                    thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }
}

fn run_client(id: u32, opts: &LoadOptions, done: &AtomicU32) -> io::Result<(String, u64, u64)> {
    let sock = TcpStream::connect(&opts.addr)?;
    sock.set_nodelay(true).ok();
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut writer = BufWriter::new(sock.try_clone()?);
    write_frame(&mut writer, &Frame::Hello { client: id }, 0)?;
    writer.flush()?;
    let (alg_label, page_size) = match read_frame(&mut reader, 0)? {
        Some(Frame::HelloAck { alg, page_size }) => (alg, page_size),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected HelloAck",
            ))
        }
    };
    let algorithm: Algorithm = alg_label
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;

    // The reader thread turns the socket into a channel so protocol code
    // can poll without owning socket timeouts. Payload bytes ride along
    // for image verification.
    let (tx, rx) = mpsc::channel::<(S2C, Vec<u8>)>();
    let reader_thread = thread::spawn(move || {
        while let Ok(Some((Frame::S2C(msg), payload))) =
            read_frame_with_payload(&mut reader, page_size)
        {
            if tx.send((msg, payload)).is_err() {
                break;
            }
        }
    });

    let sys = SystemParams::table5();
    // The same seeding discipline as the simulation runner: one stream
    // per client, disjoint from every other client's.
    let workload_rng = Pcg32::new(opts.seed, 10_000 + id as u64);
    let mut workload = Workload::new(table5_database(), TxnParams::short_batch(), workload_rng);
    let mut c = LoadClient {
        core: ClientCore::new(ClientId(id), algorithm, Tuning::default()),
        cache: ClientCache::new(sys.cache_size),
        conn: Conn {
            writer,
            rx,
            page_size,
        },
        rng: Pcg32::new(opts.seed, 20_000 + id as u64),
        aborts: 0,
        verified: 0,
    };

    for _ in 0..opts.txns {
        let spec = workload.next_txn();
        c.run_txn(&spec)?;
        workload.note_commit(&spec);
    }

    // Done, but stay responsive until everyone is: retained locks must
    // answer callbacks or the other clients would block forever.
    done.fetch_add(1, Ordering::SeqCst);
    while done.load(Ordering::SeqCst) < opts.clients {
        match c.conn.rx.recv_timeout(Duration::from_millis(20)) {
            Ok((msg, payload)) => c.handle_async(msg, &payload)?,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    let (aborts, verified) = (c.aborts, c.verified);
    write_frame(&mut c.conn.writer, &Frame::Bye, page_size)?;
    c.conn.writer.flush()?;
    drop(c);
    let _ = reader_thread.join();
    Ok((alg_label, aborts, verified))
}

/// Run `clients` workstations against a live server; blocks until every
/// client committed its quota.
pub fn load(opts: &LoadOptions) -> io::Result<LoadSummary> {
    assert!(opts.clients >= 1, "need at least one client");
    let done = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for id in 0..opts.clients {
        let opts = opts.clone();
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || run_client(id, &opts, &done)));
    }
    let mut summary = LoadSummary::default();
    let mut failure: Option<io::Error> = None;
    for h in handles {
        match h.join() {
            Ok(Ok((alg, aborts, verified))) => {
                summary.alg = alg;
                summary.commits += opts.txns as u64;
                summary.aborts += aborts;
                summary.pages_verified += verified;
            }
            Ok(Err(e)) => failure = Some(e),
            Err(_) => {
                failure = Some(io::Error::other("client thread panicked"));
            }
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(summary),
    }
}
