//! A real TCP page-server and load driver over the sans-io protocol
//! cores, with wire tracing and DES-oracle replay.
//!
//! The discrete-event simulator (`ccdb-core`) and this crate are two
//! drivers over the same protocol state machines (`ccdb-proto`):
//!
//! - [`codec`] — length-prefixed binary frames for the shared `C2S`/`S2C`
//!   enums; payload bytes come from the same `payload_bytes` definition
//!   the simulated network charges, so wire size and simulated data
//!   volume cannot drift apart.
//! - [`engine`] — the sans-io session engine: `ServerCore` plus MPL
//!   admission, parked lock continuations, and pending commits. A pure
//!   function of the message sequence.
//! - [`shard`] — the page-hash–sharded engine: decisions run serially
//!   under one short control lock (preserving the DES-oracle lineage),
//!   while page-image materialization, frame encoding, and trace
//!   rendering parallelize across per-shard stores.
//! - [`reactor`] — the default server: a nonblocking readiness loop with
//!   per-connection read/write buffers, render workers, bounded queues
//!   for backpressure, and `ccdb.wire_trace/v2` (shard-tagged) traces.
//! - [`server`] — serve entry points; the legacy threaded `std::net`
//!   server (`--threaded`) keeps writing `ccdb.wire_trace/v1`.
//! - [`client`] — a load driver running the repository's workload
//!   generator through `ClientCore` against a live server; it verifies
//!   every shipped page image byte-for-byte.
//! - [`trace`] — trace writer/reader and [`trace::replay`]: rebuilds a
//!   fresh engine from the header, re-applies the recorded messages, and
//!   diffs every protocol decision (grants, blocks, callbacks, aborts,
//!   commit outcomes), every outgoing message, and — for v2 — every
//!   shard tag and cross-shard commit-order stamp. Zero diffs means the
//!   live run did exactly what the simulator-validated core would do.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod engine;
pub mod reactor;
pub mod server;
pub mod shard;
pub mod trace;

pub use client::{load, LoadOptions, LoadSummary};
pub use codec::{
    decode_frame, decode_frame_with_payload, encode_frame, encode_frame_with_payload, read_frame,
    read_frame_with_payload, write_frame, CodecError, Frame, FrameReader, FrameWriter, MAX_FRAME,
};
pub use engine::{Decision, Effects, Engine};
pub use server::{serve, ServeOptions};
pub use shard::{shard_of_msg, ShardedEngine};
pub use trace::{replay, ReplayReport, TraceHeader, TraceWriter, SCHEMA, SCHEMA_V2};
