//! A real TCP page-server and load driver over the sans-io protocol
//! cores, with wire tracing and DES-oracle replay.
//!
//! The discrete-event simulator (`ccdb-core`) and this crate are two
//! drivers over the same protocol state machines (`ccdb-proto`):
//!
//! - [`codec`] — length-prefixed binary frames for the shared `C2S`/`S2C`
//!   enums; payload bytes come from the same `payload_bytes` definition
//!   the simulated network charges, so wire size and simulated data
//!   volume cannot drift apart.
//! - [`engine`] — the sans-io session engine: `ServerCore` plus MPL
//!   admission, parked lock continuations, and pending commits. A pure
//!   function of the message sequence.
//! - [`server`] — a threaded `std::net` TCP server; a mutex pins the
//!   total message order and every message is recorded to a versioned
//!   `ccdb.wire_trace/v1` JSONL trace.
//! - [`client`] — a load driver running the repository's workload
//!   generator through `ClientCore` against a live server.
//! - [`trace`] — trace writer/reader and [`trace::replay`]: rebuilds a
//!   fresh engine from the header, re-applies the recorded messages, and
//!   diffs every protocol decision (grants, blocks, callbacks, aborts,
//!   commit outcomes) and every outgoing message. Zero diffs means the
//!   live run did exactly what the simulator-validated core would do.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod engine;
pub mod server;
pub mod trace;

pub use client::{load, LoadOptions, LoadSummary};
pub use codec::{
    decode_frame, encode_frame, read_frame, write_frame, CodecError, Frame, MAX_FRAME,
};
pub use engine::{Decision, Effects, Engine};
pub use server::{serve, ServeOptions};
pub use trace::{replay, ReplayReport, TraceHeader, TraceWriter, SCHEMA};
