//! The sans-io TCP session engine.
//!
//! [`Engine`] wraps [`ServerCore`] with the state a *live* page-server
//! needs but the DES driver keeps in coroutine stacks: MPL admission
//! queues, parked lock continuations, and pending commits waiting on
//! in-flight operations. It is a pure function of the message sequence —
//! no clock, no randomness, no I/O — which is what makes oracle replay
//! possible: feed the same messages in the same order and the engine
//! reproduces every decision and every outgoing message exactly.
//!
//! The TCP server serialises all connections through one engine (a
//! mutex pins the total message order); the recorded order replays
//! deterministically even though the sockets raced.

use std::collections::VecDeque;

use ccdb_model::{FxHashMap as HashMap, FxHashSet as HashSet};
use std::fmt;

use ccdb_lock::{ClientId, Mode, RequestOutcome, TxnId, Wake};
use ccdb_model::{DatabaseSpec, PageId};
use ccdb_proto::{
    AbortKind, Algorithm, GrantDecision, OpId, ReplyKind, ServerCore, Tuning, C2S, S2C,
};

/// A protocol decision the engine took while processing one message.
/// Rendered into the wire trace and diffed on replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Transaction admitted under the MPL.
    Admit {
        /// The admitted transaction.
        txn: TxnId,
    },
    /// Transaction queued behind the MPL; its messages queue with it.
    Queue {
        /// The queued transaction.
        txn: TxnId,
    },
    /// Lock request granted immediately.
    LockGranted {
        /// Requester.
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Requested mode.
        mode: Mode,
    },
    /// Lock request blocked; the continuation parked.
    LockBlocked {
        /// Requester.
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Requested mode.
        mode: Mode,
    },
    /// Lock request closed a waits-for cycle; requester chosen as victim.
    LockDeadlock {
        /// Requester (and victim).
        txn: TxnId,
        /// Target page.
        page: PageId,
        /// Requested mode.
        mode: Mode,
    },
    /// A parked lock request resumed after a release.
    WakeGrant {
        /// The resumed transaction.
        txn: TxnId,
        /// The page it was waiting on.
        page: PageId,
    },
    /// Client's cached copy validated as current; no data shipped.
    UseCached {
        /// Requester.
        txn: TxnId,
        /// The validated page.
        page: PageId,
    },
    /// Page contents shipped to the requester.
    Ship {
        /// Requester.
        txn: TxnId,
        /// The shipped page.
        page: PageId,
        /// The version shipped.
        version: u64,
    },
    /// Callback sent to a client holding a retained lock.
    Callback {
        /// The client called back.
        client: ClientId,
        /// The contested page.
        page: PageId,
    },
    /// Transaction aborted.
    Abort {
        /// The victim.
        txn: TxnId,
        /// Why.
        kind: AbortKind,
        /// The stale page, for no-wait stale-read aborts.
        stale_page: Option<PageId>,
    },
    /// Commit validated and installed.
    Committed {
        /// The committer.
        txn: TxnId,
        /// Version now carried by its written pages.
        version: u64,
    },
    /// Commit rejected (certification failed or transaction doomed).
    CommitRejected {
        /// The rejected transaction.
        txn: TxnId,
    },
    /// A client disconnected; its live work was aborted.
    Disconnect {
        /// The departed client.
        client: ClientId,
    },
}

fn fmt_txn(f: &mut fmt::Formatter<'_>, t: TxnId) -> fmt::Result {
    write!(f, "{}.{}", t.0 >> 32, t.0 & 0xFFFF_FFFF)
}

fn fmt_page(f: &mut fmt::Formatter<'_>, p: PageId) -> fmt::Result {
    write!(f, "{}:{}", p.class.0, p.atom)
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Admit { txn } => {
                write!(f, "admit t=")?;
                fmt_txn(f, *txn)
            }
            Decision::Queue { txn } => {
                write!(f, "queue t=")?;
                fmt_txn(f, *txn)
            }
            Decision::LockGranted { txn, page, mode }
            | Decision::LockBlocked { txn, page, mode }
            | Decision::LockDeadlock { txn, page, mode } => {
                let outcome = match self {
                    Decision::LockGranted { .. } => "granted",
                    Decision::LockBlocked { .. } => "blocked",
                    _ => "deadlock",
                };
                write!(f, "lock t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " p=")?;
                fmt_page(f, *page)?;
                write!(f, " {mode:?} -> {outcome}")
            }
            Decision::WakeGrant { txn, page } => {
                write!(f, "wake t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " p=")?;
                fmt_page(f, *page)
            }
            Decision::UseCached { txn, page } => {
                write!(f, "use-cached t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " p=")?;
                fmt_page(f, *page)
            }
            Decision::Ship { txn, page, version } => {
                write!(f, "ship t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " p=")?;
                fmt_page(f, *page)?;
                write!(f, " v={version}")
            }
            Decision::Callback { client, page } => {
                write!(f, "callback c={} p=", client.0)?;
                fmt_page(f, *page)
            }
            Decision::Abort {
                txn,
                kind,
                stale_page,
            } => {
                write!(f, "abort t=")?;
                fmt_txn(f, *txn)?;
                let k = match kind {
                    AbortKind::Deadlock => "deadlock",
                    AbortKind::StaleRead => "stale",
                    AbortKind::Validation => "validation",
                };
                write!(f, " kind={k} stale=")?;
                match stale_page {
                    Some(p) => fmt_page(f, *p),
                    None => write!(f, "-"),
                }
            }
            Decision::Committed { txn, version } => {
                write!(f, "commit t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " -> v{version}")
            }
            Decision::CommitRejected { txn } => {
                write!(f, "commit t=")?;
                fmt_txn(f, *txn)?;
                write!(f, " -> rejected")
            }
            Decision::Disconnect { client } => write!(f, "bye c={}", client.0),
        }
    }
}

/// Everything one message produced: outgoing messages (in send order)
/// and the protocol decisions taken.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Effects {
    /// Messages to deliver, in order.
    pub sends: Vec<(ClientId, S2C)>,
    /// Decisions, in the order they were taken.
    pub decisions: Vec<Decision>,
    /// For each send, the page whose image the message ships, if any —
    /// aligned with `sends`. A `PageData` reply does not name its page
    /// on the wire, so the payload-rendering path (which materializes
    /// real page images) learns it here; every other message is `None`
    /// (`Update` already carries its page list).
    pub send_pages: Vec<Option<PageId>>,
}

/// A blocked synchronous lock request, waiting for a grant.
struct ParkedLock {
    from: ClientId,
    cached_version: Option<u64>,
    wait: bool,
    op: OpId,
}

/// A commit waiting for the transaction's in-flight ops to resolve.
struct PendingCommit {
    from: ClientId,
    read_set: Vec<(PageId, u64)>,
    dirty: Vec<PageId>,
    ops_sent: u32,
    op: OpId,
}

/// The live server's protocol engine (see the module docs).
pub struct Engine {
    core: ServerCore,
    mpl: u32,
    admitted: HashSet<TxnId>,
    admit_queue: VecDeque<TxnId>,
    queued: HashMap<TxnId, Vec<(ClientId, C2S)>>,
    parked: HashMap<(TxnId, PageId), VecDeque<ParkedLock>>,
    pending_commits: HashMap<TxnId, PendingCommit>,
    /// Transactions committed so far.
    pub commits: u64,
    /// Transactions aborted so far (including rejected certifications).
    pub aborts: u64,
}

impl Engine {
    /// Build an engine for `algorithm` over a fresh database.
    pub fn new(
        algorithm: Algorithm,
        tuning: Tuning,
        n_clients: u32,
        mpl: u32,
        lock_shards: u32,
        oracle: bool,
        db: DatabaseSpec,
    ) -> Engine {
        Engine {
            core: ServerCore::new(algorithm, tuning, oracle, n_clients, lock_shards, db),
            mpl: mpl.max(1),
            admitted: HashSet::default(),
            admit_queue: VecDeque::new(),
            queued: HashMap::default(),
            parked: HashMap::default(),
            pending_commits: HashMap::default(),
            commits: 0,
            aborts: 0,
        }
    }

    /// The protocol core (stats, algorithm, debug).
    pub fn core(&self) -> &ServerCore {
        &self.core
    }

    /// Process one client message; returns what to send and what was
    /// decided.
    pub fn apply(&mut self, from: ClientId, msg: C2S) -> Effects {
        let mut eff = Effects::default();
        self.apply_inner(from, msg, &mut eff);
        eff
    }

    /// A client's connection ended: abort its live transactions and drop
    /// its retained locks.
    pub fn disconnect(&mut self, client: ClientId) -> Effects {
        let mut eff = Effects::default();
        eff.decisions.push(Decision::Disconnect { client });
        for txn in self.core.txns_of_client(client) {
            self.do_abort(txn, AbortKind::Deadlock, None, &mut eff);
        }
        for page in self.core.retained_pages(client) {
            let (wakes, cbs) = self.core.release_retained(client, page);
            self.process_wakes(wakes, cbs, &mut eff);
        }
        eff
    }

    fn apply_inner(&mut self, from: ClientId, msg: C2S, eff: &mut Effects) {
        let Some(txn) = msg.txn() else {
            return self.dispatch(from, msg, eff);
        };
        if self.core.is_aborted(txn) {
            return self.reply_dead(from, &msg, eff);
        }
        if self.admitted.contains(&txn) {
            return self.dispatch(from, msg, eff);
        }
        if self.core.txn_known(txn) {
            // Queued behind the MPL; replay its messages on admission.
            self.queued.entry(txn).or_default().push((from, msg));
            return;
        }
        self.core.register_txn(txn, from);
        if (self.admitted.len() as u32) < self.mpl {
            self.admitted.insert(txn);
            eff.decisions.push(Decision::Admit { txn });
            self.dispatch(from, msg, eff);
        } else {
            eff.decisions.push(Decision::Queue { txn });
            self.admit_queue.push_back(txn);
            self.queued.entry(txn).or_default().push((from, msg));
        }
    }

    /// Answer a synchronous message for a dead transaction so its client
    /// does not hang; asynchronous ones are dropped.
    fn reply_dead(&mut self, from: ClientId, msg: &C2S, eff: &mut Effects) {
        let op = match msg {
            C2S::LockFetch { wait: true, op, .. }
            | C2S::Fetch { op, .. }
            | C2S::CheckVersion { op, .. }
            | C2S::Commit { op, .. } => *op,
            _ => return,
        };
        self.send(
            eff,
            from,
            S2C::Reply {
                op,
                kind: ReplyKind::Aborted,
            },
        );
    }

    fn dispatch(&mut self, from: ClientId, msg: C2S, eff: &mut Effects) {
        match msg {
            C2S::LockFetch {
                txn,
                page,
                mode,
                cached_version,
                wait,
                op,
            } => match self.core.request_lock(txn, from, page, mode) {
                RequestOutcome::Granted => {
                    eff.decisions
                        .push(Decision::LockGranted { txn, page, mode });
                    self.grant_continue(txn, from, page, cached_version, wait, op, eff);
                }
                RequestOutcome::Blocked { callbacks } => {
                    eff.decisions
                        .push(Decision::LockBlocked { txn, page, mode });
                    for c in callbacks {
                        eff.decisions.push(Decision::Callback { client: c, page });
                        self.send(eff, c, S2C::Callback { page });
                    }
                    self.core.park(txn, page);
                    self.parked
                        .entry((txn, page))
                        .or_default()
                        .push_back(ParkedLock {
                            from,
                            cached_version,
                            wait,
                            op,
                        });
                }
                RequestOutcome::Deadlock => {
                    eff.decisions
                        .push(Decision::LockDeadlock { txn, page, mode });
                    self.do_abort(txn, AbortKind::Deadlock, None, eff);
                    if wait {
                        self.send(
                            eff,
                            from,
                            S2C::Reply {
                                op,
                                kind: ReplyKind::Aborted,
                            },
                        );
                    }
                }
            },
            C2S::Fetch { txn, page, op } => {
                let version = self.core.note_shipped(from, page);
                eff.decisions.push(Decision::Ship { txn, page, version });
                self.send_page(
                    eff,
                    from,
                    page,
                    S2C::Reply {
                        op,
                        kind: ReplyKind::PageData { version },
                    },
                );
                self.resolved(txn, eff);
            }
            C2S::CheckVersion {
                txn,
                page,
                version,
                op,
            } => {
                if self.core.version_of(page) == version {
                    eff.decisions.push(Decision::UseCached { txn, page });
                    self.send(
                        eff,
                        from,
                        S2C::Reply {
                            op,
                            kind: ReplyKind::Valid,
                        },
                    );
                } else {
                    let shipped = self.core.note_shipped(from, page);
                    eff.decisions.push(Decision::Ship {
                        txn,
                        page,
                        version: shipped,
                    });
                    self.send_page(
                        eff,
                        from,
                        page,
                        S2C::Reply {
                            op,
                            kind: ReplyKind::PageData { version: shipped },
                        },
                    );
                }
                self.resolved(txn, eff);
            }
            C2S::Commit {
                txn,
                read_set,
                dirty,
                ops_sent,
                op,
            } => {
                let pc = PendingCommit {
                    from,
                    read_set,
                    dirty,
                    ops_sent,
                    op,
                };
                if self.core.commit_ready(txn, ops_sent) {
                    self.do_commit(txn, pc, eff);
                } else {
                    self.pending_commits.insert(txn, pc);
                }
            }
            C2S::CallbackReply {
                page,
                released,
                blocker,
            } => {
                if released {
                    let (wakes, cbs) = self.core.release_retained(from, page);
                    self.process_wakes(wakes, cbs, eff);
                } else if let Some(blocker) = blocker {
                    if let Some(victim) = self.core.callback_deferred(page, from, blocker) {
                        self.do_abort(victim, AbortKind::Deadlock, None, eff);
                    }
                }
            }
            C2S::ReleaseRetained { page } => {
                let (wakes, cbs) = self.core.release_retained(from, page);
                self.process_wakes(wakes, cbs, eff);
            }
        }
    }

    /// A lock was just granted (immediately or after a wait): decide
    /// between validating the cached copy, shipping, and stale-abort.
    #[allow(clippy::too_many_arguments)]
    fn grant_continue(
        &mut self,
        txn: TxnId,
        from: ClientId,
        page: PageId,
        cached_version: Option<u64>,
        wait: bool,
        op: OpId,
        eff: &mut Effects,
    ) {
        match self.core.after_grant(page, cached_version, wait) {
            GrantDecision::UseCached => {
                eff.decisions.push(Decision::UseCached { txn, page });
                if wait {
                    self.send(
                        eff,
                        from,
                        S2C::Reply {
                            op,
                            kind: ReplyKind::Valid,
                        },
                    );
                }
                self.resolved(txn, eff);
            }
            GrantDecision::Ship => {
                let version = self.core.note_shipped(from, page);
                eff.decisions.push(Decision::Ship { txn, page, version });
                if wait {
                    self.send_page(
                        eff,
                        from,
                        page,
                        S2C::Reply {
                            op,
                            kind: ReplyKind::PageData { version },
                        },
                    );
                }
                self.resolved(txn, eff);
            }
            GrantDecision::StaleAbort => {
                self.do_abort(txn, AbortKind::StaleRead, Some(page), eff);
            }
        }
    }

    /// One op resolved; fire the transaction's pending commit if it was
    /// the last one outstanding.
    fn resolved(&mut self, txn: TxnId, eff: &mut Effects) {
        if !self.core.resolve_op(txn) {
            return;
        }
        let ready = match self.pending_commits.get(&txn) {
            Some(pc) => self.core.commit_ready(txn, pc.ops_sent),
            None => false,
        };
        if ready {
            let pc = self.pending_commits.remove(&txn).expect("checked above");
            self.do_commit(txn, pc, eff);
        }
    }

    fn do_commit(&mut self, txn: TxnId, pc: PendingCommit, eff: &mut Effects) {
        if self.core.commit_doomed(txn) {
            eff.decisions.push(Decision::CommitRejected { txn });
            self.cleanup(txn, eff);
            self.send(
                eff,
                pc.from,
                S2C::Reply {
                    op: pc.op,
                    kind: ReplyKind::Aborted,
                },
            );
            return;
        }
        if !self.core.validate_commit(txn, &pc.read_set, &pc.dirty) {
            self.aborts += 1;
            eff.decisions.push(Decision::CommitRejected { txn });
            self.cleanup(txn, eff);
            self.send(
                eff,
                pc.from,
                S2C::Reply {
                    op: pc.op,
                    kind: ReplyKind::Aborted,
                },
            );
            return;
        }
        let version = ServerCore::commit_version(txn);
        self.core.publish_versions(txn, &pc.dirty);
        let (wakes, cbs) = self.core.release_commit_locks(txn, pc.from);
        if self.core.should_push_updates(&pc.dirty) {
            let invalidate = self.core.notify_invalidate();
            for (c, pages) in self.core.notification_plan(pc.from, &pc.dirty) {
                let note = if invalidate {
                    S2C::Invalidate { pages }
                } else {
                    S2C::Update { pages, version }
                };
                self.send(eff, c, note);
            }
        }
        self.commits += 1;
        eff.decisions.push(Decision::Committed { txn, version });
        self.process_wakes(wakes, cbs, eff);
        self.cleanup(txn, eff);
        self.send(
            eff,
            pc.from,
            S2C::Reply {
                op: pc.op,
                kind: ReplyKind::Committed {
                    new_version: version,
                },
            },
        );
    }

    fn do_abort(
        &mut self,
        txn: TxnId,
        kind: AbortKind,
        stale_page: Option<PageId>,
        eff: &mut Effects,
    ) {
        let Some(out) = self.core.abort_txn(txn) else {
            return;
        };
        self.aborts += 1;
        eff.decisions.push(Decision::Abort {
            txn,
            kind,
            stale_page,
        });
        self.send(
            eff,
            out.client,
            S2C::Restart {
                txn,
                kind,
                stale_page,
            },
        );
        // Fail the victim's own parked lock requests (ascending page
        // order, fixed by the core).
        for page in out.parked {
            if let Some(q) = self.parked.remove(&(txn, page)) {
                for pl in q {
                    if pl.wait {
                        self.send(
                            eff,
                            pl.from,
                            S2C::Reply {
                                op: pl.op,
                                kind: ReplyKind::Aborted,
                            },
                        );
                    }
                }
            }
        }
        // A commit waiting on in-flight ops dies with the transaction.
        if let Some(pc) = self.pending_commits.remove(&txn) {
            self.send(
                eff,
                pc.from,
                S2C::Reply {
                    op: pc.op,
                    kind: ReplyKind::Aborted,
                },
            );
        }
        // If it was still queued behind the MPL (disconnect), answer its
        // queued synchronous messages and drop the rest.
        self.admit_queue.retain(|t| *t != txn);
        if let Some(msgs) = self.queued.remove(&txn) {
            for (from, m) in msgs {
                self.reply_dead(from, &m, eff);
            }
        }
        self.process_wakes(out.wakes, out.callbacks, eff);
        self.cleanup(txn, eff);
    }

    fn process_wakes(
        &mut self,
        wakes: Vec<Wake>,
        callbacks: Vec<(ClientId, PageId)>,
        eff: &mut Effects,
    ) {
        for (c, page) in callbacks {
            eff.decisions.push(Decision::Callback { client: c, page });
            self.send(eff, c, S2C::Callback { page });
        }
        for w in wakes {
            let key = (w.txn, w.page);
            let Some(q) = self.parked.get_mut(&key) else {
                continue;
            };
            let Some(pl) = q.pop_front() else {
                continue;
            };
            if q.is_empty() {
                self.parked.remove(&key);
            }
            self.core.unpark(w.txn, w.page);
            eff.decisions.push(Decision::WakeGrant {
                txn: w.txn,
                page: w.page,
            });
            self.grant_continue(
                w.txn,
                pl.from,
                w.page,
                pl.cached_version,
                pl.wait,
                pl.op,
                eff,
            );
        }
    }

    /// Drop a finished transaction and, if it held an MPL slot, admit the
    /// next queued transaction and replay its queued messages.
    fn cleanup(&mut self, txn: TxnId, eff: &mut Effects) {
        self.core.forget_txn(txn);
        self.pending_commits.remove(&txn);
        if self.admitted.remove(&txn) {
            self.admit_next(eff);
        }
    }

    fn admit_next(&mut self, eff: &mut Effects) {
        while let Some(next) = self.admit_queue.pop_front() {
            if self.core.is_aborted(next) || !self.core.txn_known(next) {
                self.queued.remove(&next);
                continue;
            }
            self.admitted.insert(next);
            eff.decisions.push(Decision::Admit { txn: next });
            for (from, m) in self.queued.remove(&next).unwrap_or_default() {
                // Re-enter through admission: the drain itself may abort
                // `next`, and later messages must then see it dead.
                self.apply_inner(from, m, eff);
            }
            break;
        }
    }

    fn send(&mut self, eff: &mut Effects, to: ClientId, msg: S2C) {
        eff.sends.push((to, msg));
        eff.send_pages.push(None);
    }

    /// Send a `PageData` reply, noting which page's image it ships (the
    /// message itself only carries the version).
    fn send_page(&mut self, eff: &mut Effects, to: ClientId, page: PageId, msg: S2C) {
        eff.sends.push((to, msg));
        eff.send_pages.push(Some(page));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_model::{table5_database, ClassId};

    fn page(atom: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom,
        }
    }

    fn engine(alg: Algorithm) -> Engine {
        Engine::new(alg, Tuning::default(), 4, 50, 1, true, table5_database())
    }

    fn txn(client: u32, serial: u64) -> TxnId {
        TxnId(((client as u64) << 32) | serial)
    }

    #[test]
    fn cold_read_ships_and_commit_publishes() {
        let mut e = engine(Algorithm::TwoPhase { inter: false });
        let t = txn(0, 1);
        let eff = e.apply(
            ClientId(0),
            C2S::LockFetch {
                txn: t,
                page: page(3),
                mode: Mode::S,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        assert!(matches!(eff.decisions[0], Decision::Admit { .. }));
        assert!(matches!(
            eff.decisions[2],
            Decision::Ship { version: 0, .. }
        ));
        assert_eq!(eff.sends.len(), 1);
        let eff = e.apply(
            ClientId(0),
            C2S::Commit {
                txn: t,
                read_set: vec![(page(3), 0)],
                dirty: vec![],
                ops_sent: 1,
                op: 2,
            },
        );
        assert!(matches!(eff.decisions[0], Decision::Committed { .. }));
        assert_eq!(e.commits, 1);
        assert_eq!(e.core().live_txn_count(), 0);
    }

    #[test]
    fn conflicting_write_parks_until_release() {
        let mut e = engine(Algorithm::TwoPhase { inter: false });
        let (a, b) = (txn(0, 1), txn(1, 1));
        e.apply(
            ClientId(0),
            C2S::LockFetch {
                txn: a,
                page: page(5),
                mode: Mode::X,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        let eff = e.apply(
            ClientId(1),
            C2S::LockFetch {
                txn: b,
                page: page(5),
                mode: Mode::S,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        assert!(eff
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::LockBlocked { .. })));
        assert!(eff.sends.is_empty());
        // A commits; B's parked read resumes and is answered.
        let eff = e.apply(
            ClientId(0),
            C2S::Commit {
                txn: a,
                read_set: vec![],
                dirty: vec![page(5)],
                ops_sent: 1,
                op: 2,
            },
        );
        assert!(eff
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::WakeGrant { .. })));
        let to_b: Vec<_> = eff
            .sends
            .iter()
            .filter(|(c, _)| *c == ClientId(1))
            .collect();
        assert_eq!(to_b.len(), 1, "B gets exactly its page reply: {eff:?}");
    }

    #[test]
    fn certification_rejects_stale_read_set() {
        let mut e = engine(Algorithm::Certification { inter: false });
        let (a, b) = (txn(0, 1), txn(1, 1));
        e.apply(
            ClientId(0),
            C2S::Fetch {
                txn: a,
                page: page(2),
                op: 1,
            },
        );
        e.apply(
            ClientId(1),
            C2S::Fetch {
                txn: b,
                page: page(2),
                op: 1,
            },
        );
        // A commits a write to the page both read.
        let eff = e.apply(
            ClientId(0),
            C2S::Commit {
                txn: a,
                read_set: vec![(page(2), 0)],
                dirty: vec![page(2)],
                ops_sent: 1,
                op: 2,
            },
        );
        assert!(matches!(
            eff.decisions.last().unwrap(),
            Decision::Committed { .. }
        ));
        // B's read of version 0 no longer validates.
        let eff = e.apply(
            ClientId(1),
            C2S::Commit {
                txn: b,
                read_set: vec![(page(2), 0)],
                dirty: vec![page(2)],
                ops_sent: 1,
                op: 2,
            },
        );
        assert!(eff
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::CommitRejected { .. })));
        assert_eq!(e.aborts, 1);
    }

    #[test]
    fn disconnect_aborts_live_work() {
        let mut e = engine(Algorithm::TwoPhase { inter: false });
        let t = txn(2, 9);
        e.apply(
            ClientId(2),
            C2S::LockFetch {
                txn: t,
                page: page(1),
                mode: Mode::X,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        let eff = e.disconnect(ClientId(2));
        assert!(eff
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::Abort { .. })));
        assert_eq!(e.core().live_txn_count(), 0);
        assert_eq!(e.core().lock_table_len(), 0);
    }

    #[test]
    fn mpl_gates_admission() {
        let mut e = Engine::new(
            Algorithm::TwoPhase { inter: false },
            Tuning::default(),
            4,
            1,
            1,
            true,
            table5_database(),
        );
        let (a, b) = (txn(0, 1), txn(1, 1));
        e.apply(
            ClientId(0),
            C2S::LockFetch {
                txn: a,
                page: page(1),
                mode: Mode::S,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        let eff = e.apply(
            ClientId(1),
            C2S::LockFetch {
                txn: b,
                page: page(2),
                mode: Mode::S,
                cached_version: None,
                wait: true,
                op: 1,
            },
        );
        assert!(matches!(eff.decisions[0], Decision::Queue { .. }));
        assert!(eff.sends.is_empty());
        // A commits; B is admitted and its queued read is served.
        let eff = e.apply(
            ClientId(0),
            C2S::Commit {
                txn: a,
                read_set: vec![(page(1), 0)],
                dirty: vec![],
                ops_sent: 1,
                op: 2,
            },
        );
        assert!(eff
            .decisions
            .iter()
            .any(|d| matches!(d, Decision::Admit { txn } if *txn == b)));
        assert!(eff
            .sends
            .iter()
            .any(|(c, m)| *c == ClientId(1) && matches!(m, S2C::Reply { .. })));
    }
}
