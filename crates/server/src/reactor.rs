//! The default page-server: a nonblocking readiness loop over plain
//! `std::net`, with render work fanned out across engine shards.
//!
//! One reactor thread owns every socket. Each sweep it accepts new
//! connections, reads whatever bytes are available into per-connection
//! [`FrameReader`]s (tolerating arbitrarily fragmented frames), runs
//! each complete message through the [`ShardedEngine`]'s short control
//! section *inline* — decisions are cheap and serializing them is what
//! makes the trace replayable — and hands the resulting [`Step`] to a
//! render worker. The workers (one per engine shard plus one for wide
//! messages) do the heavy part in parallel: materializing real page
//! images, encoding frames, rendering trace lines.
//!
//! Order is restored at the edges. Outgoing frames carry per-client
//! send sequence numbers assigned under control; the reactor holds them
//! in per-client reorder buffers and releases only the contiguous
//! prefix into each connection's [`FrameWriter`], which absorbs short
//! writes. Trace lines carry the global `seq` and drain through a
//! reorder buffer into the `ccdb.wire_trace/v2` file in exactly the
//! decision order.
//!
//! Backpressure is explicit instead of unbounded channels: a
//! connection stops being read while its writer backlog is above a
//! high-water mark, and the whole reactor stops reading while too many
//! render jobs are in flight.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use ccdb_lock::ClientId;
use ccdb_model::{table5_database, SystemParams};

use crate::codec::{encode_frame, Frame, FrameReader, FrameWriter};
use crate::server::{write_port_file, ServeOptions};
use crate::shard::{OutFrame, ShardedEngine, Step};
use crate::trace::{TraceHeader, TraceWriter};

/// Stop reading a connection while its writer backlog exceeds this.
const WRITER_HIGH: usize = 1 << 20;
/// Stop reading everything while this many render jobs are in flight.
const JOBS_CAP: usize = 1024;
/// Per-connection read budget per sweep (fairness, not correctness).
const READS_PER_SWEEP: usize = 4;

struct Conn {
    sock: TcpStream,
    reader: FrameReader,
    writer: FrameWriter,
    /// Client slot, set once `Hello` arrives.
    slot: Option<u32>,
    /// No more reads; draining queued writes before removal.
    closing: bool,
    /// Socket is unusable; remove without draining.
    broken: bool,
    /// The engine has been told this client left.
    disconnected: bool,
    /// Snapshot of the client's total send count at disconnect; the
    /// connection lingers until the egress stream catches up to it.
    final_send: Option<u64>,
}

impl Conn {
    fn new(sock: TcpStream) -> Conn {
        Conn {
            sock,
            reader: FrameReader::new(),
            writer: FrameWriter::new(),
            slot: None,
            closing: false,
            broken: false,
            disconnected: false,
            final_send: None,
        }
    }
}

struct WorkerState {
    jobs: VecDeque<Step>,
    shutdown: bool,
}

struct WorkerQueue {
    state: Mutex<WorkerState>,
    cv: Condvar,
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            state: Mutex::new(WorkerState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }
}

struct Done {
    seq: u64,
    line: Option<String>,
    outs: Vec<OutFrame>,
    payload_ok: bool,
}

fn worker_loop(
    engine: Arc<ShardedEngine>,
    queue: Arc<WorkerQueue>,
    done: Arc<Mutex<VecDeque<Done>>>,
) {
    loop {
        let step = {
            let mut st = queue.state.lock().expect("worker queue poisoned");
            loop {
                if let Some(s) = st.jobs.pop_front() {
                    break Some(s);
                }
                if st.shutdown {
                    break None;
                }
                st = queue.cv.wait(st).expect("worker queue poisoned");
            }
        };
        let Some(step) = step else { return };
        let r = engine.render(&step);
        done.lock().expect("done queue poisoned").push_back(Done {
            seq: step.seq,
            line: r.line,
            outs: r.outs,
            payload_ok: r.payload_ok,
        });
    }
}

fn dispatch(queues: &[Arc<WorkerQueue>], shards: u32, jobs_in_flight: &mut usize, step: Step) {
    *jobs_in_flight += 1;
    let w = step.shard.map_or(shards as usize, |s| s as usize);
    let mut st = queues[w].state.lock().expect("worker queue poisoned");
    st.jobs.push_back(step);
    queues[w].cv.notify_one();
}

/// Run the reactor page-server until interrupted (or, with `once`,
/// until the last client leaves and every in-flight render drains).
/// Returns the number of commits processed.
pub fn serve_reactor(opts: &ServeOptions) -> io::Result<u64> {
    let sys = SystemParams::table5();
    let page_size = sys.page_size;
    let shards = opts.engine_shards.max(1);
    let engine = Arc::new(ShardedEngine::new(
        opts.algorithm,
        opts.tuning,
        opts.clients,
        opts.mpl,
        opts.lock_shards,
        shards,
        page_size,
        opts.trace.is_some(),
        table5_database(),
    ));
    let mut trace = match &opts.trace {
        Some(path) => {
            let header = TraceHeader {
                algorithm: opts.algorithm,
                clients: opts.clients,
                mpl: opts.mpl,
                lock_shards: opts.lock_shards,
                page_size,
                engine_shards: Some(shards),
            };
            Some(TraceWriter::new(
                BufWriter::new(File::create(path)?),
                &header,
                true,
            )?)
        }
        None => None,
    };

    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    if let Some(pf) = &opts.port_file {
        write_port_file(pf, addr.port())?;
    }
    println!("ccdb-server: {} on {addr}", opts.algorithm.label());
    io::stdout().flush().ok();

    // One render worker per shard plus one for wide messages.
    let done: Arc<Mutex<VecDeque<Done>>> = Arc::new(Mutex::new(VecDeque::new()));
    let queues: Vec<Arc<WorkerQueue>> =
        (0..=shards).map(|_| Arc::new(WorkerQueue::new())).collect();
    let workers: Vec<_> = queues
        .iter()
        .map(|q| {
            let engine = Arc::clone(&engine);
            let q = Arc::clone(q);
            let done = Arc::clone(&done);
            thread::spawn(move || worker_loop(engine, q, done))
        })
        .collect();

    let mut conns: Vec<Conn> = Vec::new();
    let mut slot_of: HashMap<u32, usize> = HashMap::new();
    let mut next_send: Vec<u64> = vec![0; opts.clients as usize];
    let mut pending_out: Vec<BTreeMap<u64, Vec<u8>>> =
        (0..opts.clients).map(|_| BTreeMap::new()).collect();
    let mut trace_buf: BTreeMap<u64, String> = BTreeMap::new();
    let mut trace_next: u64 = 1;
    let mut jobs_in_flight: usize = 0;
    let mut payload_bad: u64 = 0;
    let mut ever_connected = false;
    let mut idle: u32 = 0;
    let mut buf = [0u8; 16 * 1024];

    let result: io::Result<()> = 'outer: loop {
        let mut did_work = false;

        // Accept.
        loop {
            match listener.accept() {
                Ok((sock, _peer)) => {
                    sock.set_nonblocking(true)?;
                    sock.set_nodelay(true).ok();
                    ever_connected = true;
                    did_work = true;
                    conns.push(Conn::new(sock));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => break 'outer Err(e),
            }
        }

        // Read and parse, unless backpressure says otherwise.
        if jobs_in_flight < JOBS_CAP {
            for (i, c) in conns.iter_mut().enumerate() {
                if c.closing || c.broken || c.writer.pending() > WRITER_HIGH {
                    continue;
                }
                let mut eof = false;
                let mut protocol_err = false;
                for _ in 0..READS_PER_SWEEP {
                    match c.sock.read(&mut buf) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => {
                            c.reader.push(&buf[..n]);
                            did_work = true;
                            if n < buf.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            eof = true;
                            break;
                        }
                    }
                }
                loop {
                    match c.reader.next_frame(page_size) {
                        Ok(Some((frame, payload))) => {
                            did_work = true;
                            match (c.slot, frame) {
                                (None, Frame::Hello { client }) => {
                                    if client >= opts.clients || slot_of.contains_key(&client) {
                                        protocol_err = true;
                                        break;
                                    }
                                    c.slot = Some(client);
                                    slot_of.insert(client, i);
                                    // Queued straight into the writer, so the
                                    // ack precedes any engine send (the first
                                    // of which can only follow a later C2S).
                                    let ack = encode_frame(
                                        &Frame::HelloAck {
                                            alg: opts.algorithm.label().to_string(),
                                            page_size,
                                        },
                                        page_size,
                                    );
                                    c.writer.queue(&ack);
                                }
                                (None, _) => {
                                    protocol_err = true;
                                    break;
                                }
                                (Some(slot), Frame::C2S(msg)) => {
                                    let step = engine.step(ClientId(slot), Some(msg), payload);
                                    dispatch(&queues, shards, &mut jobs_in_flight, step);
                                }
                                (Some(_), Frame::Bye) => {
                                    eof = true;
                                    break;
                                }
                                (Some(_), _) => {
                                    protocol_err = true;
                                    break;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            protocol_err = true;
                            break;
                        }
                    }
                }
                if eof || protocol_err {
                    if let Some(slot) = c.slot {
                        if !c.disconnected {
                            c.disconnected = true;
                            let step = engine.step(ClientId(slot), None, Vec::new());
                            c.final_send = Some(step.sends_to_from);
                            dispatch(&queues, shards, &mut jobs_in_flight, step);
                        }
                        c.closing = true;
                    } else {
                        c.broken = true;
                    }
                }
            }
        }

        // Collect finished renders.
        let batch = {
            let mut dq = done.lock().expect("done queue poisoned");
            std::mem::take(&mut *dq)
        };
        for d in batch {
            jobs_in_flight -= 1;
            did_work = true;
            if !d.payload_ok {
                payload_bad += 1;
                eprintln!(
                    "ccdb-server: commit payload image mismatch at seq {}",
                    d.seq
                );
            }
            if let Some(line) = d.line {
                trace_buf.insert(d.seq, line);
            }
            for o in d.outs {
                pending_out[o.to as usize].insert(o.send_seq, o.bytes);
            }
        }

        // Release each client's contiguous egress prefix. Frames for
        // departed (or never-connected) slots are discarded, but their
        // sequence numbers still advance so drains terminate.
        for slot in 0..opts.clients as usize {
            while let Some(bytes) = pending_out[slot].remove(&next_send[slot]) {
                next_send[slot] += 1;
                did_work = true;
                if let Some(&ci) = slot_of.get(&(slot as u32)) {
                    let c = &mut conns[ci];
                    if !c.closing && !c.broken {
                        c.writer.queue(&bytes);
                    }
                }
            }
        }

        // Trace lines drain in global decision order.
        if let Some(tw) = trace.as_mut() {
            while let Some(line) = trace_buf.remove(&trace_next) {
                if let Err(e) = tw.record_line(&line) {
                    break 'outer Err(e);
                }
                trace_next += 1;
                did_work = true;
            }
        }

        // Flush writers; a dead socket turns into a disconnect.
        for c in conns.iter_mut() {
            if c.broken || c.writer.pending() == 0 {
                continue;
            }
            match c.writer.flush_to(&mut c.sock) {
                Ok(n) => {
                    if n > 0 {
                        did_work = true;
                    }
                }
                Err(_) => {
                    c.broken = true;
                    if let Some(slot) = c.slot {
                        if !c.disconnected {
                            c.disconnected = true;
                            let step = engine.step(ClientId(slot), None, Vec::new());
                            c.final_send = Some(step.sends_to_from);
                            dispatch(&queues, shards, &mut jobs_in_flight, step);
                        }
                    }
                }
            }
        }

        // Retire connections that are fully drained (or dead).
        let mut removed = false;
        let mut i = 0;
        while i < conns.len() {
            let c = &conns[i];
            let drained = c.closing
                && c.disconnected
                && c.writer.pending() == 0
                && c.final_send
                    .zip(c.slot)
                    .is_some_and(|(f, s)| next_send[s as usize] >= f);
            let dead = c.broken && (c.disconnected || c.slot.is_none());
            if drained || dead {
                conns.swap_remove(i);
                removed = true;
                did_work = true;
            } else {
                i += 1;
            }
        }
        if removed {
            slot_of.clear();
            for (i, c) in conns.iter().enumerate() {
                if let Some(s) = c.slot {
                    slot_of.insert(s, i);
                }
            }
        }

        if opts.once && ever_connected && conns.is_empty() && jobs_in_flight == 0 {
            break Ok(());
        }

        // Adaptive idle backoff: yield first, then sleep up to ~2ms.
        if did_work {
            idle = 0;
        } else {
            idle += 1;
            if idle < 4 {
                thread::yield_now();
            } else {
                let us = 100u64 << (idle - 4).min(5);
                thread::sleep(Duration::from_micros(us.min(2000)));
            }
        }
    };

    // Shut down render workers.
    for q in &queues {
        let mut st = q.state.lock().expect("worker queue poisoned");
        st.shutdown = true;
        q.cv.notify_all();
    }
    for w in workers {
        let _ = w.join();
    }
    result?;

    let (messages, commits, aborts) = engine.totals();
    if let Some(tw) = &mut trace {
        tw.finish(messages, commits, aborts)?;
    }
    if payload_bad > 0 {
        eprintln!("ccdb-server: {payload_bad} commit payload image mismatches");
    }
    println!("ccdb-server: done — {messages} messages, {commits} commits, {aborts} aborts");
    Ok(commits)
}
