//! Serve entry points, plus the legacy threaded TCP page-server.
//!
//! [`serve`] dispatches to the nonblocking reactor
//! ([`crate::reactor`]) by default; `ServeOptions::threaded` selects
//! the original server kept here: one listener, one thread per
//! connection, and a single mutex around the engine + trace writer +
//! connection registry. The mutex pins a *total order* over all
//! inbound messages, and the `ccdb.wire_trace/v1` trace records
//! exactly that order — which is what makes the recorded run
//! replayable through a fresh engine with zero diffs even though the
//! client sockets raced.
//!
//! Session lifecycle: `Hello{client}` → `HelloAck{alg, page_size}` →
//! any number of `C2S` frames → `Bye` (or EOF), which aborts the
//! client's live transactions and releases its retained locks.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use ccdb_lock::ClientId;
use ccdb_model::{table5_database, SystemParams};
use ccdb_proto::{Algorithm, Tuning, C2S};
use ccdb_storage::PageStore;

use crate::codec::{read_frame, read_frame_with_payload, write_frame, Frame};
use crate::engine::{Effects, Engine};
use crate::shard::{encode_send, verify_install_commit};
use crate::trace::{TraceHeader, TraceWriter};

/// Configuration for [`serve`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Modelling variants (defaults match the paper).
    pub tuning: Tuning,
    /// Client slots (sizes the notification broadcast set).
    pub clients: u32,
    /// Multiprogramming level; transactions beyond it queue.
    pub mpl: u32,
    /// Lock table shards.
    pub lock_shards: u32,
    /// Port to bind on loopback; 0 picks an ephemeral port.
    pub port: u16,
    /// Record a `ccdb.wire_trace/v1` JSONL trace here.
    pub trace: Option<PathBuf>,
    /// Exit once every connected client has disconnected.
    pub once: bool,
    /// Write the bound port (decimal, newline) here once listening.
    /// Written atomically (temp file + rename), so a reader never sees
    /// a partially written port.
    pub port_file: Option<PathBuf>,
    /// Engine shards for the reactor server (min 1). Ignored by the
    /// threaded server, which is inherently single-sharded.
    pub engine_shards: u32,
    /// Run the legacy threaded server (v1 traces) instead of the
    /// default nonblocking reactor (v2 traces).
    pub threaded: bool,
}

impl ServeOptions {
    /// Defaults mirroring the paper's Table 5 workstation count.
    pub fn new(algorithm: Algorithm) -> ServeOptions {
        ServeOptions {
            algorithm,
            tuning: Tuning::default(),
            clients: SystemParams::table5().n_clients,
            mpl: SystemParams::table5().mpl,
            lock_shards: SystemParams::table5().lock_shards,
            port: 0,
            trace: None,
            once: false,
            port_file: None,
            engine_shards: 1,
            threaded: false,
        }
    }
}

/// Atomically publish the bound port: write a temp file next to the
/// target, then rename it into place. Readers polling for the file can
/// never observe a partial write.
pub(crate) fn write_port_file(path: &std::path::Path, port: u16) -> io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let mut tmp = dir.map_or_else(PathBuf::new, |d| d.to_path_buf());
    let name = path.file_name().unwrap_or_else(|| "port".as_ref());
    tmp.push(format!(".{}.tmp-{port}", name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        writeln!(f, "{port}")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

struct Inner {
    engine: Engine,
    trace: Option<TraceWriter<BufWriter<File>>>,
    conns: HashMap<u32, mpsc::Sender<Vec<u8>>>,
    seq: u64,
    store: PageStore,
    page_size: u32,
}

impl Inner {
    /// Process one inbound message (or a disconnect) under the lock:
    /// advance the engine, verify/install commit images, record the
    /// trace line, encode the sends with real page payloads, and route
    /// the encoded frames.
    fn step(&mut self, from: ClientId, msg: Option<C2S>, payload: &[u8]) -> io::Result<()> {
        self.seq += 1;
        let eff: Effects = match &msg {
            Some(m) => self.engine.apply(from, m.clone()),
            None => self.engine.disconnect(from),
        };
        let store = &mut self.store;
        let ps = self.page_size;
        let payload_ok = verify_install_commit(
            msg.as_ref(),
            &eff,
            payload,
            ps,
            &mut |page, version, img| {
                store.install(page, version, img.into());
            },
        );
        if !payload_ok {
            eprintln!(
                "ccdb-server: commit payload image mismatch at seq {}",
                self.seq
            );
        }
        if let Some(trace) = &mut self.trace {
            trace.record(self.seq, from, msg.as_ref(), &eff)?;
        }
        for (i, (to, s2c)) in eff.sends.iter().enumerate() {
            let bytes = encode_send(s2c, eff.send_pages[i], ps, &mut |page, version| {
                store.read(page, version, ps as usize)
            });
            if let Some(tx) = self.conns.get(&to.0) {
                // A send to a client that disconnected mid-flight is
                // dropped, exactly as a real server would.
                let _ = tx.send(bytes);
            }
        }
        Ok(())
    }
}

/// Run the page-server until interrupted (or, with `once`, until the
/// last client leaves). Returns the number of commits processed.
///
/// Dispatches to the nonblocking reactor (`ccdb.wire_trace/v2`, sharded
/// engine) by default, or the legacy threaded server (`/v1`) when
/// `opts.threaded` is set.
pub fn serve(opts: &ServeOptions) -> io::Result<u64> {
    if opts.threaded {
        serve_threaded(opts)
    } else {
        crate::reactor::serve_reactor(opts)
    }
}

/// The original one-thread-per-connection server. Kept as the v1
/// baseline the shard smoke compares the reactor against.
fn serve_threaded(opts: &ServeOptions) -> io::Result<u64> {
    let sys = SystemParams::table5();
    let page_size = sys.page_size;
    let engine = Engine::new(
        opts.algorithm,
        opts.tuning,
        opts.clients,
        opts.mpl,
        opts.lock_shards,
        true,
        table5_database(),
    );
    let trace = match &opts.trace {
        Some(path) => {
            let header = TraceHeader {
                algorithm: opts.algorithm,
                clients: opts.clients,
                mpl: opts.mpl,
                lock_shards: opts.lock_shards,
                page_size,
                engine_shards: None,
            };
            Some(TraceWriter::new(
                BufWriter::new(File::create(path)?),
                &header,
                true,
            )?)
        }
        None => None,
    };
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    if let Some(pf) = &opts.port_file {
        write_port_file(pf, addr.port())?;
    }
    println!("ccdb-server: {} on {addr}", opts.algorithm.label());
    io::stdout().flush().ok();

    let inner = Arc::new(Mutex::new(Inner {
        engine,
        trace,
        conns: HashMap::new(),
        seq: 0,
        store: PageStore::new(),
        page_size,
    }));
    let active = Arc::new(AtomicUsize::new(0));
    let ever_connected = Arc::new(AtomicBool::new(false));

    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    loop {
        match listener.accept() {
            Ok((sock, _peer)) => {
                ever_connected.store(true, Ordering::SeqCst);
                active.fetch_add(1, Ordering::SeqCst);
                let inner = Arc::clone(&inner);
                let active = Arc::clone(&active);
                let alg = opts.algorithm;
                workers.push(thread::spawn(move || {
                    let result = handle_conn(sock, &inner, alg, page_size);
                    if let Err(e) = result {
                        eprintln!("ccdb-server: connection error: {e}");
                    }
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if opts.once
                    && ever_connected.load(Ordering::SeqCst)
                    && active.load(Ordering::SeqCst) == 0
                {
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    let mut inner = inner.lock().expect("server state poisoned");
    let (messages, commits, aborts) = (inner.seq, inner.engine.commits, inner.engine.aborts);
    if let Some(trace) = &mut inner.trace {
        trace.finish(messages, commits, aborts)?;
    }
    println!("ccdb-server: done — {messages} messages, {commits} commits, {aborts} aborts");
    Ok(commits)
}

fn handle_conn(
    sock: TcpStream,
    inner: &Arc<Mutex<Inner>>,
    algorithm: Algorithm,
    page_size: u32,
) -> io::Result<()> {
    sock.set_nodelay(true).ok();
    let mut reader = BufReader::new(sock.try_clone()?);
    let client = match read_frame(&mut reader, page_size)? {
        Some(Frame::Hello { client }) => client,
        Some(_) | None => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected Hello as the first frame",
            ))
        }
    };
    let mut wsock = sock.try_clone()?;
    write_frame(
        &mut wsock,
        &Frame::HelloAck {
            alg: algorithm.label().to_string(),
            page_size,
        },
        page_size,
    )?;

    // Outbound frames go through a channel so the engine lock is never
    // held across a socket write; they arrive here already encoded
    // (with their page-image payloads) by [`Inner::step`].
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    inner
        .lock()
        .expect("server state poisoned")
        .conns
        .insert(client, tx);
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(&mut wsock);
        for bytes in rx {
            if w.write_all(&bytes).is_err() {
                break;
            }
            if w.flush().is_err() {
                break;
            }
        }
    });

    let from = ClientId(client);
    let result = loop {
        match read_frame_with_payload(&mut reader, page_size) {
            Ok(Some((Frame::C2S(msg), payload))) => {
                let mut inner = inner.lock().expect("server state poisoned");
                if let Err(e) = inner.step(from, Some(msg), &payload) {
                    break Err(e);
                }
            }
            Ok(Some((Frame::Bye, _))) | Ok(None) => break Ok(()),
            Ok(Some(_)) => {
                break Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected session frame mid-stream",
                ))
            }
            Err(e) => break Err(e),
        }
    };
    // Orderly or not, the departure aborts the client's live work.
    {
        let mut inner = inner.lock().expect("server state poisoned");
        inner.step(from, None, &[])?;
        inner.conns.remove(&client);
    }
    let _ = writer.join();
    result
}
