//! Length-prefixed binary framing for the wire protocol.
//!
//! Frame layout: a little-endian `u32` body length, then the body. The
//! body starts with a one-byte frame tag, followed by the tag's fixed
//! fields (little-endian integers, `Option` as a presence byte, vectors
//! as a `u32` count), followed by exactly
//! [`C2S::payload_bytes`] / [`S2C::payload_bytes`] filler bytes standing
//! in for page contents. Because the filler count comes from the same
//! function the simulated `Network` charges for packetisation, the
//! on-the-wire size of every message equals its simulated data volume by
//! construction.
//!
//! The codec is deliberately version-naive: the `Hello`/`HelloAck`
//! handshake pins both sides to the same build, and the replay tooling
//! (not the wire) is the compatibility surface.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use ccdb_lock::{Mode, TxnId};
use ccdb_model::{ClassId, PageId};
use ccdb_proto::{AbortKind, ReplyKind, C2S, S2C};

/// Hard upper bound on a frame body; anything larger is a protocol error,
/// not a real message (the largest legal frame is a commit shipping a
/// whole client cache of pages).
pub const MAX_FRAME: u32 = 64 << 20;

/// Session-layer frames exchanged over one connection.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// First frame from a client: identifies the workstation.
    Hello {
        /// The client's workstation id (also its lock-owner identity).
        client: u32,
    },
    /// Server's answer to `Hello`: pins algorithm and page size.
    HelloAck {
        /// Canonical label of the algorithm the server runs.
        alg: String,
        /// Page size in bytes (drives payload filler on both sides).
        page_size: u32,
    },
    /// Orderly goodbye; the server aborts the client's live work.
    Bye,
    /// A protocol request.
    C2S(C2S),
    /// A protocol response or notification.
    S2C(S2C),
}

/// Decoding failure, named so tests can assert the exact rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// Unknown frame or message tag.
    BadTag(u8),
    /// A field held an out-of-range discriminant.
    BadEnum {
        /// Which field.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// The payload filler did not match `payload_bytes`.
    PayloadMismatch {
        /// Filler bytes the message type requires.
        expected: u64,
        /// Filler bytes actually present.
        have: u64,
    },
    /// Declared body length exceeds [`MAX_FRAME`].
    Oversize {
        /// The declared length.
        len: u32,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            CodecError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            CodecError::BadEnum { what, value } => {
                write!(f, "bad {what} discriminant {value:#04x}")
            }
            CodecError::PayloadMismatch { expected, have } => {
                write!(
                    f,
                    "payload mismatch: expected {expected} filler bytes, have {have}"
                )
            }
            CodecError::Oversize { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl Error for CodecError {}

// Frame tags.
const TAG_HELLO: u8 = 1;
const TAG_HELLO_ACK: u8 = 2;
const TAG_BYE: u8 = 3;
const TAG_C2S: u8 = 4;
const TAG_S2C: u8 = 5;

// C2S tags.
const C_LOCK_FETCH: u8 = 1;
const C_FETCH: u8 = 2;
const C_CHECK: u8 = 3;
const C_COMMIT: u8 = 4;
const C_CALLBACK_REPLY: u8 = 5;
const C_RELEASE_RETAINED: u8 = 6;

// S2C tags.
const S_REPLY: u8 = 1;
const S_CALLBACK: u8 = 2;
const S_RESTART: u8 = 3;
const S_UPDATE: u8 = 4;
const S_INVALIDATE: u8 = 5;

// ReplyKind tags.
const R_PAGE_DATA: u8 = 1;
const R_VALID: u8 = 2;
const R_COMMITTED: u8 = 3;
const R_ABORTED: u8 = 4;

// AbortKind tags.
const A_DEADLOCK: u8 = 1;
const A_STALE: u8 = 2;
const A_VALIDATION: u8 = 3;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_page(out: &mut Vec<u8>, p: PageId) {
    put_u16(out, p.class.0);
    put_u32(out, p.atom);
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

fn put_pages(out: &mut Vec<u8>, pages: &[PageId]) {
    put_u32(out, pages.len() as u32);
    for p in pages {
        put_page(out, *p);
    }
}

/// Cursor over a frame body with typed, bounds-checked reads.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.b.len() - self.p < n {
            return Err(CodecError::Truncated {
                needed: n,
                have: self.b.len() - self.p,
            });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        let v = self.b[self.p];
        self.p += 1;
        Ok(v)
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        self.need(2)?;
        let v = u16::from_le_bytes(self.b[self.p..self.p + 2].try_into().unwrap());
        self.p += 2;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.b[self.p..self.p + 4].try_into().unwrap());
        self.p += 4;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        let v = u64::from_le_bytes(self.b[self.p..self.p + 8].try_into().unwrap());
        self.p += 8;
        Ok(v)
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::BadEnum { what, value: v }),
        }
    }

    fn page(&mut self) -> Result<PageId, CodecError> {
        let class = ClassId(self.u16()?);
        let atom = self.u32()?;
        Ok(PageId { class, atom })
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            v => Err(CodecError::BadEnum {
                what: "option",
                value: v,
            }),
        }
    }

    fn pages(&mut self) -> Result<Vec<PageId>, CodecError> {
        let n = self.u32()? as usize;
        // Bound before allocating: each page encodes to 6 bytes.
        self.need(n.saturating_mul(6))?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.page()?);
        }
        Ok(v)
    }

    fn remaining(&self) -> u64 {
        (self.b.len() - self.p) as u64
    }
}

fn encode_c2s(out: &mut Vec<u8>, m: &C2S) {
    match m {
        C2S::LockFetch {
            txn,
            page,
            mode,
            cached_version,
            wait,
            op,
        } => {
            out.push(C_LOCK_FETCH);
            put_u64(out, txn.0);
            put_page(out, *page);
            out.push(match mode {
                Mode::S => 1,
                Mode::X => 2,
            });
            put_opt_u64(out, *cached_version);
            out.push(u8::from(*wait));
            put_u64(out, *op);
        }
        C2S::Fetch { txn, page, op } => {
            out.push(C_FETCH);
            put_u64(out, txn.0);
            put_page(out, *page);
            put_u64(out, *op);
        }
        C2S::CheckVersion {
            txn,
            page,
            version,
            op,
        } => {
            out.push(C_CHECK);
            put_u64(out, txn.0);
            put_page(out, *page);
            put_u64(out, *version);
            put_u64(out, *op);
        }
        C2S::Commit {
            txn,
            read_set,
            dirty,
            ops_sent,
            op,
        } => {
            out.push(C_COMMIT);
            put_u64(out, txn.0);
            put_u32(out, read_set.len() as u32);
            for (p, v) in read_set {
                put_page(out, *p);
                put_u64(out, *v);
            }
            put_pages(out, dirty);
            put_u32(out, *ops_sent);
            put_u64(out, *op);
        }
        C2S::CallbackReply {
            page,
            released,
            blocker,
        } => {
            out.push(C_CALLBACK_REPLY);
            put_page(out, *page);
            out.push(u8::from(*released));
            put_opt_u64(out, blocker.map(|t| t.0));
        }
        C2S::ReleaseRetained { page } => {
            out.push(C_RELEASE_RETAINED);
            put_page(out, *page);
        }
    }
}

fn decode_c2s(c: &mut Cur<'_>) -> Result<C2S, CodecError> {
    match c.u8()? {
        C_LOCK_FETCH => {
            let txn = TxnId(c.u64()?);
            let page = c.page()?;
            let mode = match c.u8()? {
                1 => Mode::S,
                2 => Mode::X,
                v => {
                    return Err(CodecError::BadEnum {
                        what: "mode",
                        value: v,
                    })
                }
            };
            let cached_version = c.opt_u64()?;
            let wait = c.bool("wait")?;
            let op = c.u64()?;
            Ok(C2S::LockFetch {
                txn,
                page,
                mode,
                cached_version,
                wait,
                op,
            })
        }
        C_FETCH => Ok(C2S::Fetch {
            txn: TxnId(c.u64()?),
            page: c.page()?,
            op: c.u64()?,
        }),
        C_CHECK => Ok(C2S::CheckVersion {
            txn: TxnId(c.u64()?),
            page: c.page()?,
            version: c.u64()?,
            op: c.u64()?,
        }),
        C_COMMIT => {
            let txn = TxnId(c.u64()?);
            let n = c.u32()? as usize;
            c.need(n.saturating_mul(14))?;
            let mut read_set = Vec::with_capacity(n);
            for _ in 0..n {
                let p = c.page()?;
                let v = c.u64()?;
                read_set.push((p, v));
            }
            let dirty = c.pages()?;
            let ops_sent = c.u32()?;
            let op = c.u64()?;
            Ok(C2S::Commit {
                txn,
                read_set,
                dirty,
                ops_sent,
                op,
            })
        }
        C_CALLBACK_REPLY => Ok(C2S::CallbackReply {
            page: c.page()?,
            released: c.bool("released")?,
            blocker: c.opt_u64()?.map(TxnId),
        }),
        C_RELEASE_RETAINED => Ok(C2S::ReleaseRetained { page: c.page()? }),
        t => Err(CodecError::BadTag(t)),
    }
}

fn encode_s2c(out: &mut Vec<u8>, m: &S2C) {
    match m {
        S2C::Reply { op, kind } => {
            out.push(S_REPLY);
            put_u64(out, *op);
            match kind {
                ReplyKind::PageData { version } => {
                    out.push(R_PAGE_DATA);
                    put_u64(out, *version);
                }
                ReplyKind::Valid => out.push(R_VALID),
                ReplyKind::Committed { new_version } => {
                    out.push(R_COMMITTED);
                    put_u64(out, *new_version);
                }
                ReplyKind::Aborted => out.push(R_ABORTED),
            }
        }
        S2C::Callback { page } => {
            out.push(S_CALLBACK);
            put_page(out, *page);
        }
        S2C::Restart {
            txn,
            kind,
            stale_page,
        } => {
            out.push(S_RESTART);
            put_u64(out, txn.0);
            out.push(match kind {
                AbortKind::Deadlock => A_DEADLOCK,
                AbortKind::StaleRead => A_STALE,
                AbortKind::Validation => A_VALIDATION,
            });
            match stale_page {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    put_page(out, *p);
                }
            }
        }
        S2C::Update { pages, version } => {
            out.push(S_UPDATE);
            put_pages(out, pages);
            put_u64(out, *version);
        }
        S2C::Invalidate { pages } => {
            out.push(S_INVALIDATE);
            put_pages(out, pages);
        }
    }
}

fn decode_s2c(c: &mut Cur<'_>) -> Result<S2C, CodecError> {
    match c.u8()? {
        S_REPLY => {
            let op = c.u64()?;
            let kind = match c.u8()? {
                R_PAGE_DATA => ReplyKind::PageData { version: c.u64()? },
                R_VALID => ReplyKind::Valid,
                R_COMMITTED => ReplyKind::Committed {
                    new_version: c.u64()?,
                },
                R_ABORTED => ReplyKind::Aborted,
                v => {
                    return Err(CodecError::BadEnum {
                        what: "reply kind",
                        value: v,
                    })
                }
            };
            Ok(S2C::Reply { op, kind })
        }
        S_CALLBACK => Ok(S2C::Callback { page: c.page()? }),
        S_RESTART => {
            let txn = TxnId(c.u64()?);
            let kind = match c.u8()? {
                A_DEADLOCK => AbortKind::Deadlock,
                A_STALE => AbortKind::StaleRead,
                A_VALIDATION => AbortKind::Validation,
                v => {
                    return Err(CodecError::BadEnum {
                        what: "abort kind",
                        value: v,
                    })
                }
            };
            let stale_page = match c.u8()? {
                0 => None,
                1 => Some(c.page()?),
                v => {
                    return Err(CodecError::BadEnum {
                        what: "option",
                        value: v,
                    })
                }
            };
            Ok(S2C::Restart {
                txn,
                kind,
                stale_page,
            })
        }
        S_UPDATE => Ok(S2C::Update {
            pages: c.pages()?,
            version: c.u64()?,
        }),
        S_INVALIDATE => Ok(S2C::Invalidate { pages: c.pages()? }),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Filler bytes standing in for page contents: a fixed, verifiable
/// pattern so a corrupted stream fails loudly rather than silently.
fn fill_payload(out: &mut Vec<u8>, n: u64) {
    out.reserve(n as usize);
    for i in 0..n {
        out.push((i % 251) as u8);
    }
}

/// A frame's payload bytes: the page-content bytes a C2S/S2C message
/// carries after its structured fields (empty for everything else).
fn frame_payload_bytes(f: &Frame, page_size: u32) -> u64 {
    match f {
        Frame::C2S(m) => m.payload_bytes(page_size),
        Frame::S2C(m) => m.payload_bytes(page_size),
        _ => 0,
    }
}

/// Encode a frame's structured fields (everything but the payload).
fn encode_structured(f: &Frame) -> Vec<u8> {
    let mut body = Vec::new();
    match f {
        Frame::Hello { client } => {
            body.push(TAG_HELLO);
            put_u32(&mut body, *client);
        }
        Frame::HelloAck { alg, page_size: ps } => {
            body.push(TAG_HELLO_ACK);
            put_u32(&mut body, alg.len() as u32);
            body.extend_from_slice(alg.as_bytes());
            put_u32(&mut body, *ps);
        }
        Frame::Bye => body.push(TAG_BYE),
        Frame::C2S(m) => {
            body.push(TAG_C2S);
            encode_c2s(&mut body, m);
        }
        Frame::S2C(m) => {
            body.push(TAG_S2C);
            encode_s2c(&mut body, m);
        }
    }
    body
}

fn finish_frame(mut body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.append(&mut body);
    out
}

/// Encode a frame, including the length prefix, with filler payload
/// bytes (the fixed `i % 251` pattern) standing in for page contents.
pub fn encode_frame(f: &Frame, page_size: u32) -> Vec<u8> {
    let mut body = encode_structured(f);
    fill_payload(&mut body, frame_payload_bytes(f, page_size));
    finish_frame(body)
}

/// Encode a frame carrying `payload` as its page-content bytes.
///
/// The payload replaces the filler pattern [`encode_frame`] emits, so
/// its length must equal the message's `payload_bytes` exactly —
/// anything else is a [`CodecError::PayloadMismatch`]. This is the
/// encoder the real server and load driver use to ship actual page
/// images; the codec cannot derive the content itself because a
/// `PageData` reply does not name its page on the wire.
pub fn encode_frame_with_payload(
    f: &Frame,
    page_size: u32,
    payload: &[u8],
) -> Result<Vec<u8>, CodecError> {
    let expected = frame_payload_bytes(f, page_size);
    if payload.len() as u64 != expected {
        return Err(CodecError::PayloadMismatch {
            expected,
            have: payload.len() as u64,
        });
    }
    let mut body = encode_structured(f);
    body.extend_from_slice(payload);
    Ok(finish_frame(body))
}

/// Decode a frame body (everything after the length prefix). Returns the
/// frame and the byte offset where its payload starts (the payload is
/// `body[offset..]`, already length-validated against `payload_bytes`).
fn decode_body(body: &[u8], page_size: u32) -> Result<(Frame, usize), CodecError> {
    let mut c = Cur { b: body, p: 0 };
    let frame = match c.u8()? {
        TAG_HELLO => Frame::Hello { client: c.u32()? },
        TAG_HELLO_ACK => {
            let n = c.u32()? as usize;
            c.need(n)?;
            let s = std::str::from_utf8(&c.b[c.p..c.p + n]).map_err(|_| CodecError::BadUtf8)?;
            let alg = s.to_string();
            c.p += n;
            let ps = c.u32()?;
            Frame::HelloAck { alg, page_size: ps }
        }
        TAG_BYE => Frame::Bye,
        TAG_C2S => {
            let m = decode_c2s(&mut c)?;
            let expected = m.payload_bytes(page_size);
            if c.remaining() != expected {
                return Err(CodecError::PayloadMismatch {
                    expected,
                    have: c.remaining(),
                });
            }
            return Ok((Frame::C2S(m), c.p));
        }
        TAG_S2C => {
            let m = decode_s2c(&mut c)?;
            let expected = m.payload_bytes(page_size);
            if c.remaining() != expected {
                return Err(CodecError::PayloadMismatch {
                    expected,
                    have: c.remaining(),
                });
            }
            return Ok((Frame::S2C(m), c.p));
        }
        t => return Err(CodecError::BadTag(t)),
    };
    if c.p != body.len() {
        // Structured fields must fill the body exactly (no trailing junk).
        return Err(CodecError::PayloadMismatch {
            expected: 0,
            have: (body.len() - c.p) as u64,
        });
    }
    Ok((frame, body.len()))
}

/// Split the length prefix off the front of `buf`: `Ok((body, total))`
/// with `total` = prefix + body bytes, or a `Truncated`/`Oversize` error.
fn split_frame(buf: &[u8]) -> Result<(&[u8], usize), CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated {
            needed: 4,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(CodecError::Oversize { len });
    }
    let len = len as usize;
    if buf.len() - 4 < len {
        return Err(CodecError::Truncated {
            needed: len,
            have: buf.len() - 4,
        });
    }
    Ok((&buf[4..4 + len], 4 + len))
}

/// Decode one frame from the front of `buf`. Returns the frame and the
/// total bytes consumed (prefix + body). `buf` may extend past the frame.
pub fn decode_frame(buf: &[u8], page_size: u32) -> Result<(Frame, usize), CodecError> {
    let (body, total) = split_frame(buf)?;
    let (frame, _payload_at) = decode_body(body, page_size)?;
    Ok((frame, total))
}

/// [`decode_frame`], but also return the frame's payload bytes (page
/// contents). The payload is empty for frames that carry none.
pub fn decode_frame_with_payload(
    buf: &[u8],
    page_size: u32,
) -> Result<(Frame, Vec<u8>, usize), CodecError> {
    let (body, total) = split_frame(buf)?;
    let (frame, payload_at) = decode_body(body, page_size)?;
    Ok((frame, body[payload_at..].to_vec(), total))
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, f: &Frame, page_size: u32) -> io::Result<()> {
    w.write_all(&encode_frame(f, page_size))
}

/// Read one frame from a stream. `Ok(None)` means a clean EOF at a frame
/// boundary; EOF inside a frame or a malformed body is `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R, page_size: u32) -> io::Result<Option<Frame>> {
    Ok(read_frame_with_payload(r, page_size)?.map(|(f, _)| f))
}

/// [`read_frame`], but also return the frame's payload bytes (page
/// contents; empty for frames that carry none). The load driver's
/// reader thread uses this so every shipped page image can be verified.
pub fn read_frame_with_payload<R: Read>(
    r: &mut R,
    page_size: u32,
) -> io::Result<Option<(Frame, Vec<u8>)>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "eof inside a frame length prefix",
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            CodecError::Oversize { len }.to_string(),
        ));
    }
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&prefix);
    buf.resize(4 + len as usize, 0);
    r.read_exact(&mut buf[4..])?;
    let (frame, payload, used) = decode_frame_with_payload(&buf, page_size)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    debug_assert_eq!(used, buf.len());
    Ok(Some((frame, payload)))
}

/// Incremental frame parser for nonblocking reads.
///
/// The reactor reads whatever the socket has — possibly a single byte —
/// and [`FrameReader::push`]es it here; [`FrameReader::next_frame`]
/// yields each complete frame (with its payload bytes) as soon as the
/// buffer holds one. Partial frames simply wait for more bytes, so the
/// parse result is a pure function of the byte *stream*, independent of
/// how the stream was chunked — the property the byte-dribble proptest
/// pins.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Append freshly read bytes (any chunking, including one at a time).
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: once parsed-off bytes dominate the buffer, slide
        // the live tail down instead of growing without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Parse the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; a malformed frame is a hard
    /// [`CodecError`] (the connection is beyond recovery — framing is
    /// lost). Payload bytes ride along with each frame.
    pub fn next_frame(&mut self, page_size: u32) -> Result<Option<(Frame, Vec<u8>)>, CodecError> {
        match decode_frame_with_payload(&self.buf[self.start..], page_size) {
            Ok((frame, payload, used)) => {
                self.start += used;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some((frame, payload)))
            }
            Err(CodecError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Outbound byte queue tolerating short writes.
///
/// Encoded frames are appended whole; [`FrameWriter::flush_to`] writes
/// as much as the sink accepts and remembers its position, so a
/// `WouldBlock` (or a short write) mid-frame resumes exactly where it
/// left off. The reactor uses [`FrameWriter::pending`] as its
/// backpressure signal.
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
    start: usize,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> Self {
        FrameWriter::default()
    }

    /// Queue pre-encoded frame bytes for sending.
    pub fn queue(&mut self, bytes: &[u8]) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes queued but not yet accepted by the sink.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Write queued bytes until the sink blocks or the queue drains.
    ///
    /// Returns the bytes written this call; `WouldBlock` (and
    /// `Interrupted`) are not errors — they end the attempt with the
    /// unwritten tail still queued.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "sink accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(class: u16, atom: u32) -> PageId {
        PageId {
            class: ClassId(class),
            atom,
        }
    }

    fn roundtrip(f: Frame, page_size: u32) {
        let bytes = encode_frame(&f, page_size);
        let (back, used) = decode_frame(&bytes, page_size).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello { client: 7 }, 4096);
        roundtrip(
            Frame::HelloAck {
                alg: "NWN".into(),
                page_size: 4096,
            },
            4096,
        );
        roundtrip(Frame::Bye, 4096);
        roundtrip(
            Frame::C2S(C2S::LockFetch {
                txn: TxnId(0x0000_0003_0000_0001),
                page: page(2, 19),
                mode: Mode::X,
                cached_version: Some(42),
                wait: false,
                op: 9,
            }),
            4096,
        );
        roundtrip(
            Frame::C2S(C2S::Commit {
                txn: TxnId(1),
                read_set: vec![(page(0, 1), 3), (page(1, 2), 0)],
                dirty: vec![page(0, 1)],
                ops_sent: 5,
                op: 11,
            }),
            512,
        );
        roundtrip(
            Frame::S2C(S2C::Update {
                pages: vec![page(0, 1), page(3, 4)],
                version: 17,
            }),
            256,
        );
    }

    #[test]
    fn commit_payload_scales_with_dirty_pages() {
        let f = Frame::C2S(C2S::Commit {
            txn: TxnId(1),
            read_set: vec![],
            dirty: vec![page(0, 1), page(0, 2)],
            ops_sent: 0,
            op: 1,
        });
        let small = encode_frame(&f, 64).len();
        let big = encode_frame(&f, 4096).len();
        assert_eq!(big - small, 2 * (4096 - 64));
    }

    #[test]
    fn truncated_frames_are_named_errors() {
        let f = Frame::S2C(S2C::Reply {
            op: 3,
            kind: ReplyKind::PageData { version: 8 },
        });
        let bytes = encode_frame(&f, 128);
        for cut in [0, 3, 4, 10, bytes.len() - 1] {
            let err = decode_frame(&bytes[..cut], 128).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::PayloadMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn oversize_and_bad_tags_rejected() {
        let mut huge = Vec::new();
        put_u32(&mut huge, MAX_FRAME + 1);
        assert!(matches!(
            decode_frame(&huge, 4096).unwrap_err(),
            CodecError::Oversize { .. }
        ));
        let bytes = encode_frame(&Frame::Bye, 4096);
        let mut bad = bytes.clone();
        bad[4] = 0xEE;
        assert_eq!(
            decode_frame(&bad, 4096).unwrap_err(),
            CodecError::BadTag(0xEE)
        );
    }

    #[test]
    fn real_payload_roundtrips() {
        let f = Frame::S2C(S2C::Reply {
            op: 3,
            kind: ReplyKind::PageData { version: 8 },
        });
        let payload: Vec<u8> = (0..128u32).map(|i| (i * 7 % 256) as u8).collect();
        let bytes = encode_frame_with_payload(&f, 128, &payload).expect("encode");
        let (back, got, used) = decode_frame_with_payload(&bytes, 128).expect("decode");
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
        assert_eq!(got, payload);
        // Wrong payload length is a named error, not silent truncation.
        assert!(matches!(
            encode_frame_with_payload(&f, 128, &payload[..100]).unwrap_err(),
            CodecError::PayloadMismatch {
                expected: 128,
                have: 100
            }
        ));
        // Payload-free frames demand an empty payload.
        assert!(encode_frame_with_payload(&Frame::Bye, 128, &[]).is_ok());
        assert!(encode_frame_with_payload(&Frame::Bye, 128, &[1]).is_err());
    }

    #[test]
    fn frame_reader_handles_one_byte_dribble() {
        let frames = vec![
            Frame::Hello { client: 9 },
            Frame::C2S(C2S::Fetch {
                txn: TxnId(5),
                page: page(1, 2),
                op: 3,
            }),
            Frame::S2C(S2C::Reply {
                op: 3,
                kind: ReplyKind::PageData { version: 8 },
            }),
            Frame::Bye,
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f, 64));
        }
        let mut rd = FrameReader::new();
        let mut got = Vec::new();
        for b in &stream {
            rd.push(std::slice::from_ref(b));
            while let Some((f, _payload)) = rd.next_frame(64).expect("parse") {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(rd.buffered(), 0);
    }

    #[test]
    fn frame_writer_survives_short_writes() {
        /// Accepts one byte, then blocks; accepts the next byte on the
        /// following call — the worst-case nonblocking sink.
        struct OneByte {
            out: Vec<u8>,
            parity: bool,
        }
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.parity = !self.parity;
                if !self.parity {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
                }
                self.out.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let f = Frame::S2C(S2C::Update {
            pages: vec![page(0, 1)],
            version: 2,
        });
        let bytes = encode_frame(&f, 32);
        let mut wr = FrameWriter::new();
        wr.queue(&bytes);
        let mut sink = OneByte {
            out: Vec::new(),
            parity: false,
        };
        let mut spins = 0;
        while wr.pending() > 0 {
            wr.flush_to(&mut sink).expect("flush");
            spins += 1;
            assert!(spins < 10_000, "writer must make progress");
        }
        assert_eq!(sink.out, bytes);
    }
}
