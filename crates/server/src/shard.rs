//! The page-hash–sharded engine behind the reactor server.
//!
//! The design is *control-first*: every decision-relevant state change
//! runs under one short control lock wrapping the serial [`Engine`],
//! which assigns each message a dense global sequence number — the
//! server's linearization order. What the shards parallelize is
//! everything *after* the decision: materializing real page images,
//! encoding outgoing frames, and rendering the trace line, all of which
//! dwarf the decision work for payload-carrying traffic. Pages are
//! partitioned across per-shard [`PageStore`]s by the repo-wide
//! [`page_shard`] hash (the same discipline as the sharded lock table),
//! so payload work on independent pages never takes the same lock.
//!
//! This split is what keeps the oracle lineage intact: because the
//! decisions themselves are made by the unmodified serial engine in
//! sequence order, `ccdb replay` re-executes a sharded (v2) trace
//! through that same DES-validated engine — the per-shard streams merge
//! by global `seq`, and zero diffs mean the parallel server made
//! byte-for-byte the decisions the simulator would have made.

use std::sync::Mutex;

use ccdb_lock::{page_shard, ClientId};
use ccdb_model::{DatabaseSpec, PageId};
use ccdb_proto::{Algorithm, ReplyKind, ServerCore, Tuning, C2S, S2C};
use ccdb_storage::{page_image, PageStore};

use crate::codec::{encode_frame_with_payload, Frame};
use crate::engine::{Decision, Effects, Engine};
use crate::trace::line_json;

/// The shard a message is tagged with: single-page messages go to their
/// page's hash shard; commits, disconnects, and anything spanning pages
/// are *wide* (`None`, rendered as `"*"` in the trace).
///
/// This is the v2 trace's merge rule in executable form — `replay`
/// recomputes it from the header's shard count and checks every line's
/// tag against it.
pub fn shard_of_msg(msg: Option<&C2S>, shards: u32) -> Option<u32> {
    match msg? {
        C2S::LockFetch { page, .. }
        | C2S::Fetch { page, .. }
        | C2S::CheckVersion { page, .. }
        | C2S::CallbackReply { page, .. }
        | C2S::ReleaseRetained { page } => Some(page_shard(*page, shards)),
        C2S::Commit { .. } => None,
    }
}

/// Verify a commit's dirty-page images against their expected bytes and
/// hand each faithful image to `install` iff the commit actually
/// installed in this step. Returns false on any byte mismatch (the
/// message still took effect — the engine already decided — but the
/// server flags the corruption). Shared by the reactor's render workers
/// and the threaded server.
pub(crate) fn verify_install_commit(
    msg: Option<&C2S>,
    eff: &Effects,
    payload: &[u8],
    page_size: u32,
    install: &mut dyn FnMut(PageId, u64, Vec<u8>),
) -> bool {
    let Some(C2S::Commit { txn, dirty, .. }) = msg else {
        return true;
    };
    // The client ships each dirty page's image at the commit version
    // (txn ids double as versions). Deferred commits' images are not
    // installed here; their eventual ship synthesizes the same bytes.
    let version = ServerCore::commit_version(*txn);
    let installed = eff
        .decisions
        .iter()
        .any(|d| matches!(d, Decision::Committed { txn: t, .. } if t == txn));
    let ps = page_size as usize;
    let mut ok = true;
    for (i, page) in dirty.iter().enumerate() {
        let img = page_image(*page, version, ps);
        let got = payload.get(i * ps..(i + 1) * ps).unwrap_or(&[]);
        if got != img.as_slice() {
            ok = false;
        } else if installed {
            install(*page, version, img);
        }
    }
    ok
}

/// Encode one outgoing message, materializing page images through
/// `read` for payload-carrying sends. `page` is the message's page from
/// [`Effects::send_pages`] (`PageData` replies don't name it on the
/// wire). Shared by the reactor's render workers and the threaded
/// server.
pub(crate) fn encode_send(
    m: &S2C,
    page: Option<PageId>,
    page_size: u32,
    read: &mut dyn FnMut(PageId, u64) -> std::sync::Arc<[u8]>,
) -> Vec<u8> {
    match m {
        S2C::Reply {
            kind: ReplyKind::PageData { version },
            ..
        } => {
            let page = page.expect("PageData sends always carry their page");
            let img = read(page, *version);
            encode_frame_with_payload(&Frame::S2C(m.clone()), page_size, &img)
                .expect("image length is payload_bytes by construction")
        }
        S2C::Update { pages, version } => {
            let mut buf = Vec::with_capacity(pages.len() * page_size as usize);
            for p in pages {
                buf.extend_from_slice(&read(*p, *version));
            }
            encode_frame_with_payload(&Frame::S2C(m.clone()), page_size, &buf)
                .expect("image length is payload_bytes by construction")
        }
        _ => encode_frame_with_payload(&Frame::S2C(m.clone()), page_size, &[])
            .expect("payload-free messages take an empty payload"),
    }
}

/// Decision-relevant state, all under one short lock: the serial engine
/// plus the counters that define the linearization (global `seq`), the
/// cross-shard commit order (`corder`), and per-client send sequencing.
struct Control {
    engine: Engine,
    seq: u64,
    corder: u64,
    /// Next send sequence number per client slot. Sends are sequenced
    /// here, under control, so the egress side can restore per-client
    /// send order after shard workers render frames in parallel.
    send_seqs: Vec<u64>,
}

/// One message's trip through the control section: everything a shard
/// worker needs to render the trace line and outgoing frames without
/// touching the engine again.
pub struct Step {
    /// Global sequence number (dense, starts at 1).
    pub seq: u64,
    /// Shard tag (`None` = wide).
    pub shard: Option<u32>,
    /// Commit-order stamp of the first commit on this line, if any.
    pub corder: Option<u64>,
    /// Sender.
    pub from: ClientId,
    /// The message (`None` records a disconnect).
    pub msg: Option<C2S>,
    /// Inbound payload bytes that rode with the message (commit images).
    pub payload: Vec<u8>,
    /// What the engine decided and wants sent.
    pub eff: Effects,
    /// Per-client send sequence number for each send, aligned with
    /// `eff.sends`.
    pub send_seqs: Vec<u64>,
    /// Total sends ever addressed to `from`, including this step — the
    /// reactor uses it to know when a departing connection's outbound
    /// stream is fully drained.
    pub sends_to_from: u64,
}

/// One encoded outgoing frame, addressed by client slot and sequenced
/// for per-client reordering at egress.
pub struct OutFrame {
    /// Destination client slot.
    pub to: u32,
    /// Per-client send sequence number.
    pub send_seq: u64,
    /// The encoded frame, payload included.
    pub bytes: Vec<u8>,
}

/// What a shard worker produced for one step.
pub struct Rendered {
    /// The v2 trace line (rendered JSON), if tracing is on.
    pub line: Option<String>,
    /// Encoded outgoing frames.
    pub outs: Vec<OutFrame>,
    /// False if an inbound commit payload failed image verification.
    pub payload_ok: bool,
}

/// The sharded engine: serial control + per-shard page-image stores.
/// See the module docs for the linearization argument.
pub struct ShardedEngine {
    control: Mutex<Control>,
    stores: Vec<Mutex<PageStore>>,
    shards: u32,
    page_size: u32,
    trace: bool,
}

impl ShardedEngine {
    /// Build a sharded engine over a fresh database. `trace` controls
    /// whether [`ShardedEngine::render`] produces trace lines.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        algorithm: Algorithm,
        tuning: Tuning,
        n_clients: u32,
        mpl: u32,
        lock_shards: u32,
        shards: u32,
        page_size: u32,
        trace: bool,
        db: DatabaseSpec,
    ) -> ShardedEngine {
        let shards = shards.max(1);
        ShardedEngine {
            control: Mutex::new(Control {
                engine: Engine::new(algorithm, tuning, n_clients, mpl, lock_shards, true, db),
                seq: 0,
                corder: 0,
                send_seqs: vec![0; n_clients as usize],
            }),
            stores: (0..shards).map(|_| Mutex::new(PageStore::new())).collect(),
            shards,
            page_size,
            trace,
        }
    }

    /// Number of engine shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Run one message through the control section: assign its sequence
    /// number, apply it to the serial engine, stamp the commit order,
    /// and sequence its sends. Everything heavier happens in
    /// [`ShardedEngine::render`], outside the lock.
    pub fn step(&self, from: ClientId, msg: Option<C2S>, payload: Vec<u8>) -> Step {
        let mut c = self.control.lock().expect("control poisoned");
        c.seq += 1;
        let seq = c.seq;
        let eff = match &msg {
            Some(m) => c.engine.apply(from, m.clone()),
            None => c.engine.disconnect(from),
        };
        let committed = eff
            .decisions
            .iter()
            .filter(|d| matches!(d, Decision::Committed { .. }))
            .count() as u64;
        let corder = if committed > 0 {
            let first = c.corder + 1;
            c.corder += committed;
            Some(first)
        } else {
            None
        };
        let send_seqs = eff
            .sends
            .iter()
            .map(|(to, _)| {
                let slot = &mut c.send_seqs[to.0 as usize];
                let v = *slot;
                *slot += 1;
                v
            })
            .collect();
        let sends_to_from = c.send_seqs[from.0 as usize];
        Step {
            seq,
            shard: shard_of_msg(msg.as_ref(), self.shards),
            corder,
            from,
            msg,
            payload,
            eff,
            send_seqs,
            sends_to_from,
        }
    }

    /// Total sends ever addressed to `client` so far.
    pub fn sends_to(&self, client: u32) -> u64 {
        self.control.lock().expect("control poisoned").send_seqs[client as usize]
    }

    /// Totals for the trace footer: (messages, commits, aborts).
    pub fn totals(&self) -> (u64, u64, u64) {
        let c = self.control.lock().expect("control poisoned");
        (c.seq, c.engine.commits, c.engine.aborts)
    }

    fn store(&self, page: PageId) -> &Mutex<PageStore> {
        &self.stores[page_shard(page, self.shards) as usize]
    }

    /// Render one step outside the control lock: verify and install the
    /// inbound commit images, materialize real page images for every
    /// payload-carrying send, encode the frames, and render the trace
    /// line. Independent-page traffic takes independent store locks, so
    /// this — the expensive part — never serializes across shards.
    pub fn render(&self, step: &Step) -> Rendered {
        let ps = self.page_size;
        let payload_ok = verify_install_commit(
            step.msg.as_ref(),
            &step.eff,
            &step.payload,
            ps,
            &mut |page, version, img| {
                self.store(page)
                    .lock()
                    .expect("store poisoned")
                    .install(page, version, img.into());
            },
        );
        let mut outs = Vec::with_capacity(step.eff.sends.len());
        for (i, (to, m)) in step.eff.sends.iter().enumerate() {
            let bytes = encode_send(m, step.eff.send_pages[i], ps, &mut |page, version| {
                self.store(page)
                    .lock()
                    .expect("store poisoned")
                    .read(page, version, ps as usize)
            });
            outs.push(OutFrame {
                to: to.0,
                send_seq: step.send_seqs[i],
                bytes,
            });
        }
        let line = self.trace.then(|| {
            line_json(
                step.seq,
                true,
                step.shard,
                step.corder,
                step.from,
                step.msg.as_ref(),
                &step.eff,
            )
            .render()
        });
        Rendered {
            line,
            outs,
            payload_ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_lock::{Mode, TxnId};
    use ccdb_model::{table5_database, ClassId};
    use ccdb_storage::verify_page_image;

    fn page(atom: u32) -> PageId {
        PageId {
            class: ClassId(0),
            atom,
        }
    }

    fn sharded(shards: u32) -> ShardedEngine {
        ShardedEngine::new(
            Algorithm::TwoPhase { inter: false },
            Tuning::default(),
            4,
            50,
            1,
            shards,
            256,
            true,
            table5_database(),
        )
    }

    #[test]
    fn classification_matches_page_hash() {
        let m = C2S::Fetch {
            txn: TxnId(1),
            page: page(9),
            op: 1,
        };
        assert_eq!(shard_of_msg(Some(&m), 4), Some(page_shard(page(9), 4)));
        let c = C2S::Commit {
            txn: TxnId(1),
            read_set: vec![],
            dirty: vec![page(9)],
            ops_sent: 1,
            op: 2,
        };
        assert_eq!(shard_of_msg(Some(&c), 4), None, "commits are wide");
        assert_eq!(shard_of_msg(None, 4), None, "disconnects are wide");
    }

    #[test]
    fn step_sequences_and_stamps_commits() {
        let e = sharded(4);
        let t = TxnId(1);
        let s1 = e.step(
            ClientId(0),
            Some(C2S::LockFetch {
                txn: t,
                page: page(3),
                mode: Mode::X,
                cached_version: None,
                wait: true,
                op: 1,
            }),
            Vec::new(),
        );
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.shard, Some(page_shard(page(3), 4)));
        assert_eq!(s1.corder, None);
        let payload = page_image(page(3), t.0, 256);
        let s2 = e.step(
            ClientId(0),
            Some(C2S::Commit {
                txn: t,
                read_set: vec![(page(3), 0)],
                dirty: vec![page(3)],
                ops_sent: 1,
                op: 2,
            }),
            payload,
        );
        assert_eq!(s2.seq, 2);
        assert_eq!(s2.shard, None);
        assert_eq!(s2.corder, Some(1));
        let r = e.render(&s2);
        assert!(r.payload_ok, "a faithful commit image verifies");
        assert!(r.line.is_some());
        // Per-client send order is recoverable from the send seqs.
        assert_eq!(s2.send_seqs.len(), s2.eff.sends.len());
    }

    #[test]
    fn render_ships_verifiable_images() {
        let e = sharded(2);
        let s = e.step(
            ClientId(1),
            Some(C2S::Fetch {
                txn: TxnId(1 << 32),
                page: page(7),
                op: 1,
            }),
            Vec::new(),
        );
        let r = e.render(&s);
        let data: Vec<_> = r.outs.iter().filter(|o| o.bytes.len() > 256).collect();
        assert_eq!(data.len(), 1, "exactly one PageData frame");
        let (frame, payload, _) =
            crate::codec::decode_frame_with_payload(&data[0].bytes, 256).unwrap();
        assert!(matches!(
            frame,
            Frame::S2C(S2C::Reply {
                kind: ReplyKind::PageData { version: 0 },
                ..
            })
        ));
        assert!(verify_page_image(page(7), 0, &payload));
    }

    #[test]
    fn corrupt_commit_payload_is_flagged() {
        let e = sharded(2);
        let t = TxnId(2);
        e.step(
            ClientId(0),
            Some(C2S::LockFetch {
                txn: t,
                page: page(4),
                mode: Mode::X,
                cached_version: None,
                wait: true,
                op: 1,
            }),
            Vec::new(),
        );
        let mut payload = page_image(page(4), t.0, 256);
        payload[40] ^= 0xFF;
        let s = e.step(
            ClientId(0),
            Some(C2S::Commit {
                txn: t,
                read_set: vec![(page(4), 0)],
                dirty: vec![page(4)],
                ops_sent: 1,
                op: 2,
            }),
            payload,
        );
        assert!(!e.render(&s).payload_ok);
    }
}
