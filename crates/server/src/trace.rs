//! Versioned wire traces (`ccdb.wire_trace/v1`) and DES-oracle replay.
//!
//! A live server records every inbound message together with the
//! decisions it took and the messages it sent, one JSON object per line.
//! Because the [`Engine`] is a pure function of the
//! message sequence, `replay` can rebuild a fresh engine from the trace
//! header, feed the recorded messages back through the *same* sans-io
//! core the discrete-event simulator validated (with its oracle
//! assertions armed), and diff every protocol decision and outgoing
//! message. A zero-diff replay proves the live run made exactly the
//! decisions the simulated protocol would have made.
//!
//! Layout:
//!
//! ```text
//! {"schema":"ccdb.wire_trace/v1","alg":"CB","clients":4,...}   header
//! {"seq":1,"from":0,"c2s":{...},"decisions":[...],"sends":[...]}
//! ...
//! {"footer":true,"messages":812,"commits":40,"aborts":3}
//! ```

use std::io::{self, BufRead, Write};

use ccdb_lock::{ClientId, Mode, TxnId};
use ccdb_model::{table5_database, ClassId, PageId};
use ccdb_obs::Json;
use ccdb_proto::{AbortKind, Algorithm, ReplyKind, Tuning, C2S, S2C};

use crate::engine::{Effects, Engine};

/// Schema tag written in the header line (unsharded v1 traces).
pub const SCHEMA: &str = "ccdb.wire_trace/v1";

/// Schema tag for sharded traces: v1's line shape plus a per-line
/// `shard` tag, a `corder` commit-order stamp, and `engine_shards` in
/// the header. Replay additionally verifies dense sequence numbers,
/// attributes diffs per shard, and checks the cross-shard commit order.
pub const SCHEMA_V2: &str = "ccdb.wire_trace/v2";

/// The run parameters a replay needs to rebuild the engine.
#[derive(Clone, Debug)]
pub struct TraceHeader {
    /// Algorithm the server ran.
    pub algorithm: Algorithm,
    /// Number of client slots.
    pub clients: u32,
    /// Multiprogramming level.
    pub mpl: u32,
    /// Lock table shards.
    pub lock_shards: u32,
    /// Page size (payload accounting).
    pub page_size: u32,
    /// Engine shards of the recording server: `Some(n)` marks a v2
    /// trace (reactor server), `None` a v1 trace (threaded server).
    /// Replay always re-executes through the *serial* engine either
    /// way — the sharded server's global sequence order is its
    /// linearization, so the serial engine is the oracle for both.
    pub engine_shards: Option<u32>,
}

fn page_str(p: PageId) -> String {
    format!("{}:{}", p.class.0, p.atom)
}

fn parse_page(s: &str) -> Result<PageId, String> {
    let (c, a) = s.split_once(':').ok_or_else(|| format!("bad page {s:?}"))?;
    Ok(PageId {
        class: ClassId(c.parse().map_err(|_| format!("bad page {s:?}"))?),
        atom: a.parse().map_err(|_| format!("bad page {s:?}"))?,
    })
}

fn pages_json(pages: &[PageId]) -> Json {
    Json::Arr(pages.iter().map(|p| Json::Str(page_str(*p))).collect())
}

fn parse_pages(j: &Json) -> Result<Vec<PageId>, String> {
    j.items()
        .ok_or("pages not an array")?
        .iter()
        .map(|p| parse_page(p.as_str().ok_or("page not a string")?))
        .collect()
}

/// Encode a client request for the trace.
pub fn c2s_json(m: &C2S) -> Json {
    let mut o = Json::obj();
    match m {
        C2S::LockFetch {
            txn,
            page,
            mode,
            cached_version,
            wait,
            op,
        } => {
            o.set("t", "lock_fetch");
            o.set("txn", txn.0);
            o.set("page", page_str(*page));
            o.set("mode", if *mode == Mode::S { "S" } else { "X" });
            match cached_version {
                Some(v) => o.set("cv", *v),
                None => o.set("cv", Json::Null),
            };
            o.set("wait", *wait);
            o.set("op", *op);
        }
        C2S::Fetch { txn, page, op } => {
            o.set("t", "fetch");
            o.set("txn", txn.0);
            o.set("page", page_str(*page));
            o.set("op", *op);
        }
        C2S::CheckVersion {
            txn,
            page,
            version,
            op,
        } => {
            o.set("t", "check");
            o.set("txn", txn.0);
            o.set("page", page_str(*page));
            o.set("v", *version);
            o.set("op", *op);
        }
        C2S::Commit {
            txn,
            read_set,
            dirty,
            ops_sent,
            op,
        } => {
            o.set("t", "commit");
            o.set("txn", txn.0);
            o.set(
                "reads",
                Json::Arr(
                    read_set
                        .iter()
                        .map(|(p, v)| Json::Arr(vec![Json::Str(page_str(*p)), Json::UInt(*v)]))
                        .collect(),
                ),
            );
            o.set("dirty", pages_json(dirty));
            o.set("ops", *ops_sent);
            o.set("op", *op);
        }
        C2S::CallbackReply {
            page,
            released,
            blocker,
        } => {
            o.set("t", "callback_reply");
            o.set("page", page_str(*page));
            o.set("released", *released);
            match blocker {
                Some(b) => o.set("blocker", b.0),
                None => o.set("blocker", Json::Null),
            };
        }
        C2S::ReleaseRetained { page } => {
            o.set("t", "release_retained");
            o.set("page", page_str(*page));
        }
    }
    o
}

/// Decode a client request from a trace line.
pub fn c2s_from_json(j: &Json) -> Result<C2S, String> {
    let t = j.get("t").and_then(|v| v.as_str()).ok_or("missing t")?;
    let page = |k: &str| -> Result<PageId, String> {
        parse_page(j.get(k).and_then(|v| v.as_str()).ok_or("missing page")?)
    };
    let u64_of = |k: &str| -> Result<u64, String> {
        j.get(k)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("missing {k}"))
    };
    let bool_of = |k: &str| -> Result<bool, String> {
        match j.get(k) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("missing {k}")),
        }
    };
    match t {
        "lock_fetch" => Ok(C2S::LockFetch {
            txn: TxnId(u64_of("txn")?),
            page: page("page")?,
            mode: match j.get("mode").and_then(|v| v.as_str()) {
                Some("S") => Mode::S,
                Some("X") => Mode::X,
                _ => return Err("bad mode".into()),
            },
            cached_version: match j.get("cv") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_u64().ok_or("bad cv")?),
            },
            wait: bool_of("wait")?,
            op: u64_of("op")?,
        }),
        "fetch" => Ok(C2S::Fetch {
            txn: TxnId(u64_of("txn")?),
            page: page("page")?,
            op: u64_of("op")?,
        }),
        "check" => Ok(C2S::CheckVersion {
            txn: TxnId(u64_of("txn")?),
            page: page("page")?,
            version: u64_of("v")?,
            op: u64_of("op")?,
        }),
        "commit" => {
            let reads = j
                .get("reads")
                .and_then(|v| v.items())
                .ok_or("missing reads")?
                .iter()
                .map(|pair| {
                    let items = pair.items().ok_or("bad read pair")?;
                    if items.len() != 2 {
                        return Err("bad read pair".to_string());
                    }
                    Ok((
                        parse_page(items[0].as_str().ok_or("bad read page")?)?,
                        items[1].as_u64().ok_or("bad read version")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(C2S::Commit {
                txn: TxnId(u64_of("txn")?),
                read_set: reads,
                dirty: parse_pages(j.get("dirty").ok_or("missing dirty")?)?,
                ops_sent: u64_of("ops")? as u32,
                op: u64_of("op")?,
            })
        }
        "callback_reply" => Ok(C2S::CallbackReply {
            page: page("page")?,
            released: bool_of("released")?,
            blocker: match j.get("blocker") {
                Some(Json::Null) | None => None,
                Some(v) => Some(TxnId(v.as_u64().ok_or("bad blocker")?)),
            },
        }),
        "release_retained" => Ok(C2S::ReleaseRetained {
            page: page("page")?,
        }),
        other => Err(format!("unknown c2s kind {other:?}")),
    }
}

/// Encode a server message for the trace.
pub fn s2c_json(m: &S2C) -> Json {
    let mut o = Json::obj();
    match m {
        S2C::Reply { op, kind } => {
            o.set("t", "reply");
            o.set("op", *op);
            match kind {
                ReplyKind::PageData { version } => {
                    o.set("k", "page");
                    o.set("v", *version);
                }
                ReplyKind::Valid => {
                    o.set("k", "valid");
                }
                ReplyKind::Committed { new_version } => {
                    o.set("k", "committed");
                    o.set("v", *new_version);
                }
                ReplyKind::Aborted => {
                    o.set("k", "aborted");
                }
            }
        }
        S2C::Callback { page } => {
            o.set("t", "callback");
            o.set("page", page_str(*page));
        }
        S2C::Restart {
            txn,
            kind,
            stale_page,
        } => {
            o.set("t", "restart");
            o.set("txn", txn.0);
            o.set(
                "kind",
                match kind {
                    AbortKind::Deadlock => "deadlock",
                    AbortKind::StaleRead => "stale",
                    AbortKind::Validation => "validation",
                },
            );
            match stale_page {
                Some(p) => o.set("stale", page_str(*p)),
                None => o.set("stale", Json::Null),
            };
        }
        S2C::Update { pages, version } => {
            o.set("t", "update");
            o.set("pages", pages_json(pages));
            o.set("v", *version);
        }
        S2C::Invalidate { pages } => {
            o.set("t", "invalidate");
            o.set("pages", pages_json(pages));
        }
    }
    o
}

pub(crate) fn effects_json(eff: &Effects) -> (Json, Json) {
    let decisions = Json::Arr(
        eff.decisions
            .iter()
            .map(|d| Json::Str(d.to_string()))
            .collect(),
    );
    let sends = Json::Arr(
        eff.sends
            .iter()
            .map(|(to, m)| {
                let mut o = Json::obj();
                o.set("to", to.0);
                o.set("s2c", s2c_json(m));
                o
            })
            .collect(),
    );
    (decisions, sends)
}

/// Render one trace line. `shard` is `Some(k)` for a message handled on
/// engine shard `k`, `None` for wide (cross-shard) messages — rendered
/// as `"*"` — and omitted entirely from v1 lines (pass `v2 = false`).
/// `corder` stamps the commit-order counter value of the line's first
/// commit, when the line committed anything.
pub(crate) fn line_json(
    seq: u64,
    v2: bool,
    shard: Option<u32>,
    corder: Option<u64>,
    from: ClientId,
    msg: Option<&C2S>,
    eff: &Effects,
) -> Json {
    let mut o = Json::obj();
    o.set("seq", seq);
    if v2 {
        match shard {
            Some(k) => o.set("shard", k as u64),
            None => o.set("shard", "*"),
        };
        if let Some(c) = corder {
            o.set("corder", c);
        }
    }
    o.set("from", from.0);
    match msg {
        Some(m) => o.set("c2s", c2s_json(m)),
        None => {
            let mut bye = Json::obj();
            bye.set("t", "bye");
            o.set("c2s", bye)
        }
    };
    let (decisions, sends) = effects_json(eff);
    o.set("decisions", decisions);
    o.set("sends", sends);
    o
}

/// Streams a `ccdb.wire_trace/v1` or `/v2` document, one line per
/// message (v2 when the header carries `engine_shards`).
pub struct TraceWriter<W: Write> {
    out: W,
    v2: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Write the header line.
    pub fn new(mut out: W, h: &TraceHeader, oracle: bool) -> io::Result<TraceWriter<W>> {
        let mut o = Json::obj();
        o.set(
            "schema",
            if h.engine_shards.is_some() {
                SCHEMA_V2
            } else {
                SCHEMA
            },
        );
        o.set("alg", h.algorithm.label());
        o.set("clients", h.clients);
        o.set("mpl", h.mpl);
        o.set("lock_shards", h.lock_shards);
        if let Some(n) = h.engine_shards {
            o.set("engine_shards", n);
        }
        o.set("oracle", oracle);
        o.set("db", "table5");
        o.set("page_size", h.page_size);
        writeln!(out, "{}", o.render())?;
        Ok(TraceWriter {
            out,
            v2: h.engine_shards.is_some(),
        })
    }

    /// Record one processed message with everything it produced.
    /// `msg: None` records a disconnect ("bye").
    pub fn record(
        &mut self,
        seq: u64,
        from: ClientId,
        msg: Option<&C2S>,
        eff: &Effects,
    ) -> io::Result<()> {
        self.record_tagged(seq, None, None, from, msg, eff)
    }

    /// [`TraceWriter::record`] with the v2 shard tag and commit-order
    /// stamp (ignored when writing a v1 trace).
    pub fn record_tagged(
        &mut self,
        seq: u64,
        shard: Option<u32>,
        corder: Option<u64>,
        from: ClientId,
        msg: Option<&C2S>,
        eff: &Effects,
    ) -> io::Result<()> {
        let o = line_json(seq, self.v2, shard, corder, from, msg, eff);
        writeln!(self.out, "{}", o.render())
    }

    /// Write one pre-rendered trace line (the reactor's shard workers
    /// render lines off-thread; its ordering buffer feeds them here).
    pub(crate) fn record_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.out, "{line}")
    }

    /// Write the footer line and flush.
    pub fn finish(&mut self, messages: u64, commits: u64, aborts: u64) -> io::Result<()> {
        let mut o = Json::obj();
        o.set("footer", true);
        o.set("messages", messages);
        o.set("commits", commits);
        o.set("aborts", aborts);
        writeln!(self.out, "{}", o.render())?;
        self.out.flush()
    }
}

/// Outcome of replaying a trace against a fresh engine.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Messages replayed (excluding header/footer).
    pub messages: u64,
    /// Commits the replayed engine produced.
    pub commits: u64,
    /// Aborts the replayed engine produced.
    pub aborts: u64,
    /// Human-readable decision/send mismatches, in trace order.
    pub diffs: Vec<String>,
    /// v2 traces: diff count per shard tag (`"0"`, `"1"`, …, `"*"` for
    /// wide messages). Every shard key from the header is present even
    /// when its count is zero, so "zero decision diffs per shard" is an
    /// explicit per-shard verdict rather than an absence of evidence.
    pub shard_diffs: std::collections::BTreeMap<String, u64>,
}

impl ReplayReport {
    /// Did the live run match the protocol core exactly?
    pub fn ok(&self) -> bool {
        self.diffs.is_empty()
    }
}

fn parse_header(j: &Json) -> Result<TraceHeader, String> {
    let v2 = match j.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == SCHEMA => false,
        Some(s) if s == SCHEMA_V2 => true,
        other => return Err(format!("unsupported trace schema {other:?}")),
    };
    let alg = j.get("alg").and_then(|v| v.as_str()).ok_or("missing alg")?;
    let algorithm: Algorithm = alg.parse().map_err(|e| format!("{e}"))?;
    let num = |k: &str| -> Result<u32, String> {
        j.get(k)
            .and_then(|v| v.as_u64())
            .map(|v| v as u32)
            .ok_or_else(|| format!("missing {k}"))
    };
    Ok(TraceHeader {
        algorithm,
        clients: num("clients")?,
        mpl: num("mpl")?,
        lock_shards: num("lock_shards")?,
        page_size: num("page_size")?,
        engine_shards: if v2 {
            Some(num("engine_shards")?)
        } else {
            None
        },
    })
}

/// Replay a recorded trace through a fresh [`Engine`] (oracle armed) and
/// diff every decision and send against the recording.
///
/// Both schemas re-execute through the *serial* engine: a v2 trace's
/// global sequence numbers are the sharded server's linearization
/// order, so merging the per-shard streams is just "walk the lines in
/// `seq` order". On top of the v1 decision/send diffing, a v2 replay
/// verifies the merge rule itself:
///
/// * sequence numbers are dense (`1, 2, 3, …` — nothing dropped or
///   duplicated by the shard fan-out);
/// * every single-page message's `shard` tag equals the page-hash shard
///   recomputed from the header's `engine_shards` (wide messages carry
///   `"*"`);
/// * `corder` stamps are exactly `1, 2, 3, …` in seq order — the
///   cross-shard commit order is consistent with the linearization;
/// * diffs are attributed per shard in [`ReplayReport::shard_diffs`].
pub fn replay<R: BufRead>(input: R) -> Result<ReplayReport, String> {
    let mut lines = input.lines();
    let header_line = lines
        .next()
        .ok_or("empty trace")?
        .map_err(|e| e.to_string())?;
    let header = parse_header(&Json::parse(&header_line)?)?;
    let v2 = header.engine_shards.is_some();
    let mut engine = Engine::new(
        header.algorithm,
        Tuning::default(),
        header.clients,
        header.mpl,
        header.lock_shards,
        true,
        table5_database(),
    );
    let mut report = ReplayReport::default();
    if let Some(n) = header.engine_shards {
        for k in 0..n.max(1) {
            report.shard_diffs.insert(k.to_string(), 0);
        }
        report.shard_diffs.insert("*".to_string(), 0);
    }
    let mut saw_footer = false;
    let mut corder_ctr = 0u64;
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(&line)?;
        if matches!(j.get("footer"), Some(Json::Bool(true))) {
            saw_footer = true;
            let want = |k: &str| j.get(k).and_then(|v| v.as_u64());
            if want("commits") != Some(engine.commits) || want("aborts") != Some(engine.aborts) {
                report.diffs.push(format!(
                    "footer: recorded {:?} commits / {:?} aborts, replay produced {} / {}",
                    want("commits"),
                    want("aborts"),
                    engine.commits,
                    engine.aborts
                ));
            }
            continue;
        }
        let seq = j.get("seq").and_then(|v| v.as_u64()).ok_or("missing seq")?;
        let from = ClientId(
            j.get("from")
                .and_then(|v| v.as_u64())
                .ok_or("missing from")? as u32,
        );
        let c2s = j.get("c2s").ok_or("missing c2s")?;
        let mut line_diffs: u64 = 0;
        if v2 && seq != report.messages + 1 {
            report.diffs.push(format!(
                "seq {seq}: sequence not dense (expected {})",
                report.messages + 1
            ));
            line_diffs += 1;
        }
        let shard_key = if v2 {
            match j.get("shard") {
                Some(Json::Str(s)) if s == "*" => "*".to_string(),
                Some(v) => v
                    .as_u64()
                    .map(|k| k.to_string())
                    .ok_or(format!("seq {seq}: bad shard tag"))?,
                None => return Err(format!("seq {seq}: missing shard tag")),
            }
        } else {
            String::new()
        };
        let msg = if c2s.get("t").and_then(|v| v.as_str()) == Some("bye") {
            None
        } else {
            Some(c2s_from_json(c2s)?)
        };
        if v2 {
            // The merge rule: recompute the shard assignment from the
            // message itself and the header's shard count.
            let expect =
                match crate::shard::shard_of_msg(msg.as_ref(), header.engine_shards.unwrap_or(1)) {
                    Some(k) => k.to_string(),
                    None => "*".to_string(),
                };
            if expect != shard_key {
                report.diffs.push(format!(
                    "seq {seq}: shard tag {shard_key:?} but page-hash places it on {expect:?}"
                ));
                line_diffs += 1;
            }
        }
        let eff = match msg {
            None => engine.disconnect(from),
            Some(m) => engine.apply(from, m),
        };
        report.messages += 1;
        let (decisions, sends) = effects_json(&eff);
        let recorded_decisions = j.get("decisions").ok_or("missing decisions")?;
        let recorded_sends = j.get("sends").ok_or("missing sends")?;
        if recorded_decisions.render() != decisions.render() {
            report.diffs.push(format!(
                "seq {seq}: decisions diverge\n  recorded: {}\n  replayed: {}",
                recorded_decisions.render(),
                decisions.render()
            ));
            line_diffs += 1;
        }
        if recorded_sends.render() != sends.render() {
            report.diffs.push(format!(
                "seq {seq}: sends diverge\n  recorded: {}\n  replayed: {}",
                recorded_sends.render(),
                sends.render()
            ));
            line_diffs += 1;
        }
        if v2 {
            let committed = eff
                .decisions
                .iter()
                .filter(|d| matches!(d, crate::engine::Decision::Committed { .. }))
                .count() as u64;
            let recorded_corder = j.get("corder").and_then(|v| v.as_u64());
            match (committed > 0, recorded_corder) {
                (true, Some(c)) => {
                    if c != corder_ctr + 1 {
                        report.diffs.push(format!(
                            "seq {seq}: corder {c} but {} commits seen before this line",
                            corder_ctr
                        ));
                        line_diffs += 1;
                    }
                    corder_ctr += committed;
                }
                (true, None) => {
                    report.diffs.push(format!(
                        "seq {seq}: line commits but carries no corder stamp"
                    ));
                    line_diffs += 1;
                }
                (false, Some(c)) => {
                    report.diffs.push(format!(
                        "seq {seq}: corder {c} on a line that commits nothing"
                    ));
                    line_diffs += 1;
                }
                (false, None) => {}
            }
            if line_diffs > 0 {
                *report.shard_diffs.entry(shard_key).or_insert(0) += line_diffs;
            }
        }
    }
    if !saw_footer {
        report
            .diffs
            .push("trace has no footer (server did not shut down cleanly)".to_string());
    }
    report.commits = engine.commits;
    report.aborts = engine.aborts;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn run_trace(alg: Algorithm) -> Vec<u8> {
        let header = TraceHeader {
            algorithm: alg,
            clients: 2,
            mpl: 50,
            lock_shards: 1,
            page_size: 256,
            engine_shards: None,
        };
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, &header, true).unwrap();
        let mut e = Engine::new(alg, Tuning::default(), 2, 50, 1, true, table5_database());
        let t = TxnId(1);
        let msgs = [
            (
                ClientId(0),
                C2S::LockFetch {
                    txn: t,
                    page: PageId {
                        class: ClassId(0),
                        atom: 7,
                    },
                    mode: Mode::X,
                    cached_version: None,
                    wait: true,
                    op: 1,
                },
            ),
            (
                ClientId(0),
                C2S::Commit {
                    txn: t,
                    read_set: vec![(
                        PageId {
                            class: ClassId(0),
                            atom: 7,
                        },
                        0,
                    )],
                    dirty: vec![PageId {
                        class: ClassId(0),
                        atom: 7,
                    }],
                    ops_sent: 1,
                    op: 2,
                },
            ),
        ];
        let mut seq = 0;
        for (from, m) in msgs {
            seq += 1;
            let eff = e.apply(from, m.clone());
            w.record(seq, from, Some(&m), &eff).unwrap();
        }
        seq += 1;
        let eff = e.disconnect(ClientId(0));
        w.record(seq, ClientId(0), None, &eff).unwrap();
        w.finish(seq, e.commits, e.aborts).unwrap();
        buf
    }

    #[test]
    fn faithful_trace_replays_clean() {
        let buf = run_trace(Algorithm::TwoPhase { inter: false });
        let report = replay(BufReader::new(&buf[..])).unwrap();
        assert!(report.ok(), "diffs: {:?}", report.diffs);
        assert_eq!(report.messages, 3);
        assert_eq!(report.commits, 1);
    }

    #[test]
    fn tampered_trace_is_caught() {
        let buf = run_trace(Algorithm::TwoPhase { inter: false });
        let text = String::from_utf8(buf).unwrap();
        // Flip the recorded lock decision from granted to blocked.
        let bad = text.replace("-> granted", "-> blocked");
        assert_ne!(text, bad);
        let report = replay(BufReader::new(bad.as_bytes())).unwrap();
        assert!(!report.ok());
        assert!(report.diffs[0].contains("decisions diverge"));
    }

    #[test]
    fn c2s_json_roundtrips() {
        let m = C2S::Commit {
            txn: TxnId(0x0000_0002_0000_0009),
            read_set: vec![(
                PageId {
                    class: ClassId(3),
                    atom: 17,
                },
                4,
            )],
            dirty: vec![],
            ops_sent: 2,
            op: 5,
        };
        let j = c2s_json(&m);
        let back = c2s_from_json(&Json::parse(&j.render()).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
