//! The metrics registry: named, pull-based gauges and counters.
//!
//! Components expose their existing statistics by registering closures;
//! the registry never stores values itself, so registration is free at
//! simulation time and every read reflects the live state. Insertion
//! order is preserved everywhere (names, samples, JSON), which keeps
//! exports deterministic.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ccdb_des::Facility;

use crate::json::Json;

enum Metric {
    Gauge(Box<dyn Fn() -> f64>),
    Counter(Box<dyn Fn() -> u64>),
}

impl Metric {
    fn value(&self) -> f64 {
        match self {
            Metric::Gauge(f) => f(),
            Metric::Counter(f) => f() as f64,
        }
    }
}

/// A push-style counter handle for components without their own stats
/// struct. Cheap to clone; all clones share the count.
#[derive(Clone, Default)]
pub struct Counter {
    count: Rc<Cell<u64>>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.count.set(self.count.get() + n);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count.get()
    }
}

/// A shared, insertion-ordered collection of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Rc<RefCell<Vec<(String, Metric)>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a gauge: `read` is evaluated at every sample/report.
    ///
    /// Panics on a duplicate name — metric names are a flat namespace and
    /// a silent collision would corrupt exports.
    pub fn gauge(&self, name: impl Into<String>, read: impl Fn() -> f64 + 'static) {
        self.insert(name.into(), Metric::Gauge(Box::new(read)));
    }

    /// Register a counter backed by a closure over existing statistics.
    pub fn counter_fn(&self, name: impl Into<String>, read: impl Fn() -> u64 + 'static) {
        self.insert(name.into(), Metric::Counter(Box::new(read)));
    }

    /// Register and return a push-style [`Counter`].
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let c = Counter::default();
        let handle = c.clone();
        self.counter_fn(name, move || handle.get());
        c
    }

    /// Register a facility's utilisation and instantaneous queue length as
    /// `<prefix>.util` / `<prefix>.qlen`.
    pub fn facility(&self, prefix: &str, fac: &Facility) {
        let f = fac.clone();
        self.gauge(format!("{prefix}.util"), move || f.utilization());
        let f = fac.clone();
        self.gauge(format!("{prefix}.qlen"), move || f.queue_len() as f64);
    }

    fn insert(&self, name: String, metric: Metric) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            !inner.iter().any(|(n, _)| *n == name),
            "duplicate metric name {name:?}"
        );
        inner.push((name, metric));
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().iter().map(|(n, _)| n.clone()).collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Evaluate every metric, in registration order.
    pub fn read_all(&self) -> Vec<f64> {
        self.inner.borrow().iter().map(|(_, m)| m.value()).collect()
    }

    /// Freeze the current value of every metric into a plain-data
    /// [`Snapshot`](crate::Snapshot) that can leave the simulation thread.
    pub fn snapshot(&self) -> crate::Snapshot {
        let entries = self
            .inner
            .borrow()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Gauge(f) => crate::SnapValue::Gauge(f()),
                    Metric::Counter(f) => crate::SnapValue::Counter(f()),
                };
                (name.clone(), value)
            })
            .collect();
        crate::Snapshot { entries }
    }

    /// Current values as an insertion-ordered JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, metric) in self.inner.borrow().iter() {
            match metric {
                Metric::Gauge(_) => obj.set(name.clone(), metric.value()),
                Metric::Counter(f) => obj.set(name.clone(), f()),
            };
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_des::{Sim, SimDuration};

    #[test]
    fn gauges_and_counters_read_live_values() {
        let reg = Registry::new();
        let x = Rc::new(Cell::new(1.5f64));
        {
            let x = Rc::clone(&x);
            reg.gauge("x", move || x.get());
        }
        let c = reg.counter("hits");
        assert_eq!(reg.read_all(), vec![1.5, 0.0]);
        x.set(2.5);
        c.add(3);
        assert_eq!(reg.read_all(), vec![2.5, 3.0]);
        assert_eq!(reg.names(), vec!["x", "hits"]);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_rejected() {
        let reg = Registry::new();
        reg.gauge("x", || 0.0);
        reg.gauge("x", || 1.0);
    }

    #[test]
    fn facility_registration_tracks_utilization() {
        let sim = Sim::new();
        let env = sim.env();
        let cpu = Facility::new(&env, "cpu", 1);
        let reg = Registry::new();
        reg.facility("cpu", &cpu);
        {
            let cpu = cpu.clone();
            let env = env.clone();
            sim.spawn(async move {
                cpu.use_for(SimDuration::from_secs(1)).await;
                env.hold(SimDuration::from_secs(1)).await;
            });
        }
        sim.run();
        let vals = reg.read_all();
        assert_eq!(reg.names(), vec!["cpu.util", "cpu.qlen"]);
        assert!((vals[0] - 0.5).abs() < 1e-12);
        assert_eq!(vals[1], 0.0);
    }

    #[test]
    fn json_snapshot_distinguishes_counter_integers() {
        let reg = Registry::new();
        reg.gauge("g", || 0.25);
        let c = reg.counter("c");
        c.add(7);
        assert_eq!(reg.to_json().render(), r#"{"g":0.25,"c":7}"#);
    }
}
