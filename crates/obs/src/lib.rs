//! # ccdb-obs — observability layer for the simulator
//!
//! The pieces, designed to stay out of the hot path:
//!
//! * [`Registry`] — a named collection of *pull-based* metrics. Components
//!   register closures (gauges returning `f64`, counters returning `u64`)
//!   at wiring time; nothing is evaluated until a report or a sample asks.
//!   A run that never samples pays only the registration cost.
//! * [`SeriesRing`] + [`run_sampler`] — a simulation process that
//!   snapshots every registered metric at a simulated-time interval.
//!   The ring *adapts* instead of evicting: when the configured capacity
//!   would be exceeded it doubles the interval and folds adjacent
//!   samples pairwise, so long runs keep exact endpoints, bounded
//!   memory, and zero dropped samples. The frozen result is an owned
//!   [`SeriesSet`] — plain `Send` data.
//! * [`SeriesMerger`] — folds per-replication [`SeriesSet`]s onto a
//!   common grid (coarsest interval wins) into a [`MergedSeries`] with
//!   mean/min/max per point, mirroring [`SnapshotMerger`].
//! * [`Json`] — a small, dependency-free JSON document model with a
//!   deterministic serializer: the same value tree always renders to the
//!   same bytes, which is what makes byte-identical run reports testable.
//! * [`LatencyHistogram`] — a log-bucketed duration histogram
//!   (HdrHistogram-style, fixed geometric buckets) whose merge is
//!   bitwise associative and whose JSON encoding round-trips exactly,
//!   so percentiles survive the checkpoint/merge pipeline unchanged.
//! * [`Snapshot`] + [`SnapshotMerger`] — frozen, `Send`, plain-data
//!   registry values and their cross-replication merge (counters sum,
//!   gauges average), for carrying metrics out of worker threads and
//!   aggregating across seeds.
//!
//! The sampler only *reads* (facility utilisation getters are pure with
//! respect to simulation state), so enabling it never changes the
//! simulated outcome — a sampled run reports exactly the same results as
//! an unsampled one.

#![warn(missing_docs)]

mod hist;
mod json;
mod registry;
mod series;
mod series_merge;
mod snapshot;

pub use hist::LatencyHistogram;
pub use json::Json;
pub use registry::{Counter, Registry};
pub use series::{run_sampler, SeriesRing, SeriesSet};
pub use series_merge::{MergedSeries, MergedSeriesCol, SeriesMerger};
pub use snapshot::{
    MergedGauge, MergedSnapValue, MergedSnapshot, SnapValue, Snapshot, SnapshotMerger,
};
