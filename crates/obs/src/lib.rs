//! # ccdb-obs — observability layer for the simulator
//!
//! Three pieces, designed to stay out of the hot path:
//!
//! * [`Registry`] — a named collection of *pull-based* metrics. Components
//!   register closures (gauges returning `f64`, counters returning `u64`)
//!   at wiring time; nothing is evaluated until a report or a sample asks.
//!   A run that never samples pays only the registration cost.
//! * [`SeriesSet`] + [`run_sampler`] — a simulation process that snapshots
//!   every registered metric at a fixed simulated-time interval into
//!   per-metric ring buffers, turning end-of-run aggregates into
//!   trajectories (utilisation ramping as caches warm, lock tables
//!   growing under contention, ...).
//! * [`Json`] — a small, dependency-free JSON document model with a
//!   deterministic serializer: the same value tree always renders to the
//!   same bytes, which is what makes byte-identical run reports testable.
//! * [`Snapshot`] + [`SnapshotMerger`] — frozen, `Send`, plain-data
//!   registry values and their cross-replication merge (counters sum,
//!   gauges average), for carrying metrics out of worker threads and
//!   aggregating across seeds.
//!
//! The sampler only *reads* (facility utilisation getters are pure with
//! respect to simulation state), so enabling it never changes the
//! simulated outcome — a sampled run reports exactly the same results as
//! an unsampled one.

#![warn(missing_docs)]

mod json;
mod registry;
mod series;
mod snapshot;

pub use json::Json;
pub use registry::{Counter, Registry};
pub use series::{run_sampler, SeriesSet};
pub use snapshot::{
    MergedGauge, MergedSnapValue, MergedSnapshot, SnapValue, Snapshot, SnapshotMerger,
};
