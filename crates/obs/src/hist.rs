//! A dependency-free log-bucketed latency histogram with a deterministic
//! merge — the fixed-bucket cousin of HdrHistogram.
//!
//! Buckets are geometric: 16 per decade starting at 100 µs, 8 decades,
//! 128 buckets total. Everything below the first edge lands in bucket 0
//! and everything above the last edge in bucket 127, so `record` is
//! total. The exact maximum is tracked separately so `quantile` never
//! reports a value beyond anything observed.
//!
//! Two properties matter for the report pipeline:
//!
//! * **Determinism** — the state is bucket counts (`u64`), a total, and
//!   an exact max; [`merge`](LatencyHistogram::merge) adds counts and
//!   takes the larger max, so merging is associative and commutative
//!   *bitwise*, not just approximately. Replications can fold in any
//!   grouping and produce the same bytes.
//! * **Exact round-trip** — [`to_json`](LatencyHistogram::to_json) emits
//!   counts as integers and the max with shortest-round-trip formatting,
//!   so a histogram parsed back from a `ccdb.job/v2` record merges
//!   bit-identically to the live value it was written from.

use crate::json::Json;

/// First bucket edge, in seconds (100 µs).
const HIST_MIN: f64 = 1e-4;
/// Geometric buckets per decade.
const PER_DECADE: usize = 16;
/// Total bucket count (8 decades: 100 µs to 1000 s and beyond).
const BUCKETS: usize = 128;

/// A log-bucketed histogram of durations in seconds.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0.0,
        }
    }

    /// The multiplicative width of one bucket: a reported quantile is
    /// within this factor of the true sample quantile (for samples at or
    /// above the first bucket edge).
    pub fn bucket_ratio() -> f64 {
        10f64.powf(1.0 / PER_DECADE as f64)
    }

    fn bucket_of(seconds: f64) -> usize {
        if seconds <= HIST_MIN {
            return 0;
        }
        let idx = ((seconds / HIST_MIN).log10() * PER_DECADE as f64).floor();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Geometric midpoint of a bucket — the value quantiles report.
    fn bucket_mid(index: usize) -> f64 {
        HIST_MIN * 10f64.powf((index as f64 + 0.5) / PER_DECADE as f64)
    }

    /// Record one duration (seconds). Negative and non-finite inputs are
    /// clamped into the bottom bucket rather than poisoning the state.
    pub fn record(&mut self, seconds: f64) {
        let v = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the geometric
    /// midpoint of the bucket holding the rank-`⌈q·n⌉` sample, clamped
    /// to the exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`: bucket-wise count addition plus the
    /// larger exact max. Associative and commutative bit-for-bit.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Sparse JSON encoding: total count, exact max, and `[index, count]`
    /// pairs for the non-empty buckets (ascending index).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
            .collect();
        o.set("count", self.total)
            .set("max_s", self.max)
            .set("buckets", Json::Arr(buckets));
        o
    }

    /// Exact inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Result<LatencyHistogram, String> {
        let total = v
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("histogram: missing count")?;
        let max = v
            .get("max_s")
            .and_then(Json::as_f64)
            .ok_or("histogram: missing max_s")?;
        let mut h = LatencyHistogram::new();
        let mut sum = 0u64;
        for pair in v
            .get("buckets")
            .and_then(Json::items)
            .ok_or("histogram: missing buckets")?
        {
            let cells = pair.items().ok_or("histogram: bucket is not a pair")?;
            let (ix, count) = match cells {
                [a, b] => (
                    a.as_u64().ok_or("histogram: bad bucket index")? as usize,
                    b.as_u64().ok_or("histogram: bad bucket count")?,
                ),
                _ => return Err("histogram: bucket is not a pair".into()),
            };
            if ix >= BUCKETS {
                return Err(format!("histogram: bucket index {ix} out of range"));
            }
            h.counts[ix] = count;
            sum += count;
        }
        if sum != total {
            return Err(format!(
                "histogram: bucket counts sum to {sum}, header says {total}"
            ));
        }
        h.total = total;
        h.max = max;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_recorded_values_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record(i as f64 * 0.01); // 10 ms .. 1 s
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 1.0);
        let r = LatencyHistogram::bucket_ratio();
        for (q, want) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = h.quantile(q);
            assert!(
                got >= want / r && got <= want * r,
                "q{q}: got {got}, want within x{r} of {want}"
            );
        }
        // The top quantile is clamped to the exact max.
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.max(), 0.0);
        let back = LatencyHistogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 0..50 {
            let v = 0.001 * (i as f64 + 1.0) * 7.0;
            a.record(v);
            all.record(v);
        }
        for i in 0..30 {
            let v = 0.5 + 0.1 * i as f64;
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0.0, 1e-6, 3.3e-4, 0.125, 7.25, 123.0, 1e7] {
            h.record(v);
        }
        let rendered = h.to_json().render();
        let back = LatencyHistogram::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.to_json().render(), rendered);
    }

    #[test]
    fn extreme_inputs_are_clamped_not_lost() {
        let mut h = LatencyHistogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1e9);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1e9);
    }

    #[test]
    fn from_json_rejects_corrupt_documents() {
        for bad in [
            r#"{"count":1,"max_s":0.1,"buckets":[[999,1]]}"#,
            r#"{"count":2,"max_s":0.1,"buckets":[[3,1]]}"#,
            r#"{"count":1,"max_s":0.1,"buckets":[[3]]}"#,
            r#"{"max_s":0.1,"buckets":[]}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(LatencyHistogram::from_json(&doc).is_err(), "{bad}");
        }
    }
}
