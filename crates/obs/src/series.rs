//! Adaptive time-series sampling of registered metrics.
//!
//! All metrics are sampled together at one instant, so a series stores a
//! single shared time column plus one value column per metric. Two types
//! split the live and frozen halves:
//!
//! * [`SeriesRing`] — the live buffer the sampler process writes into.
//!   When the configured capacity would be exceeded it does **not** drop
//!   samples: it doubles the sampling interval and folds adjacent
//!   retained points pairwise (count-weighted means), so memory stays
//!   bounded, `dropped` is always 0, and the first and last points keep
//!   their exact sample times and values.
//! * [`SeriesSet`] — the frozen, owned result: plain `Send` data that can
//!   leave a worker thread, round-trip through JSON bit-exactly, and be
//!   merged across replications (`crate::SeriesMerger`).
//!
//! Each retained point is a *bucket*: the count of raw samples it covers,
//! their mean per metric, and the time of the latest raw sample folded
//! into it. Point 0 is never folded, and a fold always happens *before*
//! the next raw sample is appended, so the newest point is always a raw
//! sample — both endpoints stay exact. The fold schedule depends only on
//! the interval, capacity, and horizon (never on sampled values), so
//! every replication of one configuration samples on an identical grid.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use ccdb_des::{Env, SimDuration, SimTime};

use crate::json::Json;
use crate::registry::Registry;

/// A frozen, owned metric time series: the shared time column, the
/// per-bucket raw-sample counts, and one column of bucket means per
/// metric (registration order).
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSet {
    pub(crate) base_interval_s: f64,
    pub(crate) interval_s: f64,
    pub(crate) folds: u32,
    pub(crate) names: Vec<String>,
    pub(crate) times: Vec<f64>,
    pub(crate) counts: Vec<u64>,
    pub(crate) values: Vec<Vec<f64>>,
}

impl SeriesSet {
    fn empty(names: Vec<String>, interval_s: f64) -> SeriesSet {
        let values = names.iter().map(|_| Vec::new()).collect();
        SeriesSet {
            base_interval_s: interval_s,
            interval_s,
            folds: 0,
            names,
            times: Vec::new(),
            counts: Vec::new(),
            values,
        }
    }

    /// The interval the sampler started with (seconds).
    pub fn base_interval_s(&self) -> f64 {
        self.base_interval_s
    }

    /// The effective sampling interval (seconds) after adaptive folding:
    /// `base_interval_s * 2^folds`.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// How many times the ring folded (doubling the interval each time).
    pub fn folds(&self) -> u32 {
        self.folds
    }

    /// Retained points per metric.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Samples lost to the ring: always 0 — adaptive folding coarsens
    /// instead of evicting. Kept for schema continuity.
    pub fn dropped(&self) -> u64 {
        0
    }

    /// Total raw samples folded into the retained points.
    pub fn raw_samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Metric names, in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shared time column (seconds): each entry is the exact time of
    /// the latest raw sample folded into that bucket.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Raw samples per retained bucket (1 for never-folded points).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(time_s, value)` points of one metric (bucket means).
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(
            self.times
                .iter()
                .copied()
                .zip(self.values[idx].iter().copied())
                .collect(),
        )
    }

    /// JSON export: intervals, fold count, retained/dropped counts, the
    /// shared time and count columns, and one value array per metric
    /// (registration order). [`SeriesSet::from_json`] is the exact
    /// inverse; re-rendering a parsed set reproduces the input bytes.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("interval_s", self.interval_s)
            .set("base_interval_s", self.base_interval_s)
            .set("folds", self.folds)
            .set("samples", self.times.len())
            .set("dropped", 0u64)
            .set(
                "time_s",
                Json::Arr(self.times.iter().map(|&t| Json::Num(t)).collect()),
            )
            .set(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            );
        let mut series = Json::obj();
        for (name, col) in self.names.iter().zip(&self.values) {
            series.set(
                name.clone(),
                Json::Arr(col.iter().map(|&v| Json::Num(v)).collect()),
            );
        }
        obj.set("series", series);
        obj
    }

    /// Parse the [`SeriesSet::to_json`] form back into an owned set — the
    /// replay path for checkpointed sweep records. Tolerates the absence
    /// of the adaptive fields (`base_interval_s`, `folds`, `counts`) so
    /// fixed-interval series from older documents read back as unfolded.
    pub fn from_json(j: &Json) -> Result<SeriesSet, String> {
        let interval_s = j
            .get("interval_s")
            .and_then(Json::as_f64)
            .ok_or("series: missing interval_s")?;
        let base_interval_s = match j.get("base_interval_s") {
            Some(v) => v.as_f64().ok_or("series: bad base_interval_s")?,
            None => interval_s,
        };
        let folds = match j.get("folds") {
            Some(v) => u32::try_from(v.as_u64().ok_or("series: bad folds")?)
                .map_err(|_| "series: folds overflows")?,
            None => 0,
        };
        let times = j
            .get("time_s")
            .and_then(Json::items)
            .ok_or("series: missing time_s")?
            .iter()
            .map(|v| v.as_f64().ok_or("series: bad time_s entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let counts = match j.get("counts") {
            Some(arr) => arr
                .items()
                .ok_or("series: bad counts")?
                .iter()
                .map(|v| v.as_u64().ok_or("series: bad counts entry"))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![1; times.len()],
        };
        if counts.len() != times.len() {
            return Err("series: counts and time_s lengths differ".to_string());
        }
        let Some(Json::Obj(pairs)) = j.get("series") else {
            return Err("series: missing series object".to_string());
        };
        let mut names = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (name, col) in pairs {
            let col = col
                .items()
                .ok_or_else(|| format!("series {name:?}: expected an array"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("series {name:?}: bad value"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if col.len() != times.len() {
                return Err(format!("series {name:?}: length differs from time_s"));
            }
            names.push(name.clone());
            values.push(col);
        }
        Ok(SeriesSet {
            base_interval_s,
            interval_s,
            folds,
            names,
            times,
            counts,
            values,
        })
    }

    /// CSV export: a `time_s,count,<metric>,...` header then one row per
    /// retained bucket (`count` is the raw samples the bucket covers).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,count");
        for name in &self.names {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        for (i, t) in self.times.iter().enumerate() {
            let _ = write!(out, "{t},{}", self.counts[i]);
            for col in &self.values {
                let _ = write!(out, ",{}", col[i]);
            }
            out.push('\n');
        }
        out
    }
}

struct RingInner {
    set: SeriesSet,
    capacity: usize,
    interval: SimDuration,
}

impl RingInner {
    /// The adaptive step: keep point 0 exact, fold points `1..` pairwise
    /// (count-weighted means; a merged bucket takes the *later* point's
    /// time so bucket times remain exact raw-sample times), and double
    /// the interval. Frees at least one slot for any capacity >= 3.
    fn fold(&mut self) {
        let set = &mut self.set;
        let n = set.times.len();
        let mut w = 1usize;
        let mut r = 1usize;
        while r < n {
            if r + 1 < n {
                let c0 = set.counts[r];
                let c1 = set.counts[r + 1];
                let c = c0 + c1;
                set.times[w] = set.times[r + 1];
                set.counts[w] = c;
                for col in &mut set.values {
                    col[w] = (col[r] * c0 as f64 + col[r + 1] * c1 as f64) / c as f64;
                }
                r += 2;
            } else {
                set.times[w] = set.times[r];
                set.counts[w] = set.counts[r];
                for col in &mut set.values {
                    col[w] = col[r];
                }
                r += 1;
            }
            w += 1;
        }
        set.times.truncate(w);
        set.counts.truncate(w);
        for col in &mut set.values {
            col.truncate(w);
        }
        self.interval = self.interval + self.interval;
        set.interval_s = self.interval.as_secs_f64();
        set.folds += 1;
    }
}

/// The live, adaptively-folding sample buffer of every metric in a
/// [`Registry`].
///
/// Cheap to clone; clones share the buffer (the sampler process writes,
/// the runner freezes an owned [`SeriesSet`] at the end via
/// [`SeriesRing::into_set`]).
#[derive(Clone)]
pub struct SeriesRing {
    inner: Rc<RefCell<RingInner>>,
}

impl SeriesRing {
    /// Create a ring for the metrics currently in `registry`, retaining
    /// at most `capacity` points per metric. Capacity must be at least 3:
    /// a fold keeps point 0 and pairs the rest, which only frees a slot
    /// with two or more foldable points.
    pub fn new(registry: &Registry, interval: SimDuration, capacity: usize) -> Self {
        assert!(capacity >= 3, "adaptive series capacity must be >= 3");
        assert!(!interval.is_zero(), "sample interval must be positive");
        let set = SeriesSet::empty(registry.names(), interval.as_secs_f64());
        SeriesRing {
            inner: Rc::new(RefCell::new(RingInner {
                set,
                capacity,
                interval,
            })),
        }
    }

    /// The *current* sampling interval (doubled by each fold); the
    /// sampler re-reads it before every tick.
    pub fn interval(&self) -> SimDuration {
        self.inner.borrow().interval
    }

    /// Retained points per metric.
    pub fn len(&self) -> usize {
        self.inner.borrow().set.times.len()
    }

    /// True if nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take one sample of every metric at simulated time `now`. A repeat
    /// call at the time of the previous sample is a no-op (the runner
    /// forces a final sample at the horizon, which may coincide with the
    /// sampler's own last tick). If the ring is full it folds first —
    /// never drops — so the new raw sample is always appended.
    pub fn sample(&self, registry: &Registry, now: SimTime) {
        let readings = registry.read_all();
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            readings.len(),
            inner.set.names.len(),
            "registry changed after SeriesRing::new"
        );
        let t = now.as_secs_f64();
        if inner.set.times.last() == Some(&t) {
            return;
        }
        if inner.set.times.len() == inner.capacity {
            inner.fold();
        }
        inner.set.times.push(t);
        inner.set.counts.push(1);
        for (col, v) in inner.set.values.iter_mut().zip(readings) {
            col.push(v);
        }
    }

    /// Freeze the ring into an owned [`SeriesSet`].
    pub fn into_set(self) -> SeriesSet {
        self.inner.borrow().set.clone()
    }
}

/// The sampler process: snapshot the registry into `ring` at its current
/// interval (re-read every tick, so adaptive interval doubling takes
/// effect immediately). Runs until the simulation horizon cuts it off.
pub async fn run_sampler(env: Env, registry: Registry, ring: SeriesRing) {
    loop {
        let interval = ring.interval();
        env.hold(interval).await;
        ring.sample(&registry, env.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_des::{Facility, Sim};

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn below_capacity_keeps_raw_samples() {
        let reg = Registry::new();
        reg.gauge("a", || 1.0);
        reg.gauge("b", || 2.0);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 8);
        for i in 1..=5u64 {
            ring.sample(&reg, at(i));
        }
        let set = ring.into_set();
        assert_eq!(set.len(), 5);
        assert_eq!(set.folds(), 0);
        assert_eq!(set.dropped(), 0);
        assert_eq!(set.counts(), [1, 1, 1, 1, 1]);
        let a = set.series("a").unwrap();
        assert_eq!(
            a.iter().map(|p| p.0).collect::<Vec<_>>(),
            [1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert!(set.series("missing").is_none());
    }

    #[test]
    fn fold_keeps_endpoints_exact_and_doubles_interval() {
        let reg = Registry::new();
        let value = Rc::new(RefCell::new(0.0f64));
        {
            let value = Rc::clone(&value);
            reg.gauge("v", move || *value.borrow());
        }
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 4);
        for i in 1..=5u64 {
            *value.borrow_mut() = i as f64;
            ring.sample(&reg, at(i));
        }
        // Fifth sample folded [1,2,3,4] -> [1,(2,3),4] then appended 5.
        let set = ring.into_set();
        assert_eq!(set.folds(), 1);
        assert_eq!(set.interval_s(), 2.0);
        assert_eq!(set.base_interval_s(), 1.0);
        assert_eq!(set.times(), [1.0, 3.0, 4.0, 5.0]);
        assert_eq!(set.counts(), [1, 2, 1, 1]);
        let v = set.series("v").unwrap();
        assert_eq!(v[0], (1.0, 1.0), "first point exact");
        assert_eq!(v[1], (3.0, 2.5), "merged bucket holds the pair mean");
        assert_eq!(v[3], (5.0, 5.0), "last point exact");
        assert_eq!(set.raw_samples(), 5);
        assert_eq!(set.dropped(), 0);
    }

    #[test]
    fn long_run_stays_bounded_with_exact_endpoints() {
        let reg = Registry::new();
        reg.gauge("v", || 1.0);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 16);
        let n = 1600u64; // 100x the capacity*interval horizon
        for i in 1..=n {
            ring.sample(&reg, at(i));
        }
        let set = ring.into_set();
        assert!(set.len() <= 16, "retained {} > capacity", set.len());
        assert_eq!(set.dropped(), 0);
        assert_eq!(set.raw_samples(), n);
        assert_eq!(set.times().first(), Some(&1.0));
        assert_eq!(set.times().last(), Some(&(n as f64)));
        assert!(set.folds() > 0);
        // Fed directly (ignoring the doubled interval), the ring folds on
        // every append once full; the interval still only ever grows.
        assert!(set.interval_s() >= set.base_interval_s());
    }

    #[test]
    fn folded_mean_equals_raw_mean() {
        let reg = Registry::new();
        let value = Rc::new(RefCell::new(0.0f64));
        {
            let value = Rc::clone(&value);
            reg.gauge("v", move || *value.borrow());
        }
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 5);
        let mut raw_sum = 0.0;
        let n = 137u64;
        for i in 1..=n {
            let v = (i as f64).sin();
            *value.borrow_mut() = v;
            raw_sum += v;
            ring.sample(&reg, at(i));
        }
        let set = ring.into_set();
        let folded: f64 = set
            .series("v")
            .unwrap()
            .iter()
            .zip(set.counts())
            .map(|((_, v), &c)| v * c as f64)
            .sum();
        assert!((folded / n as f64 - raw_sum / n as f64).abs() < 1e-9);
    }

    #[test]
    fn duplicate_time_is_ignored() {
        let reg = Registry::new();
        reg.gauge("a", || 1.0);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 8);
        ring.sample(&reg, at(1));
        ring.sample(&reg, at(1));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn csv_and_json_agree_on_shape() {
        let reg = Registry::new();
        reg.gauge("u", || 0.5);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(2), 8);
        ring.sample(&reg, at(2));
        ring.sample(&reg, at(4));
        let set = ring.into_set();
        assert_eq!(set.to_csv(), "time_s,count,u\n2,1,0.5\n4,1,0.5\n");
        assert_eq!(
            set.to_json().render(),
            r#"{"interval_s":2,"base_interval_s":2,"folds":0,"samples":2,"dropped":0,"time_s":[2,4],"counts":[1,1],"series":{"u":[0.5,0.5]}}"#
        );
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let reg = Registry::new();
        let value = Rc::new(RefCell::new(0.0f64));
        {
            let value = Rc::clone(&value);
            reg.gauge("v", move || *value.borrow());
        }
        reg.gauge("flat", || 0.25);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 4);
        for i in 1..=9u64 {
            *value.borrow_mut() = 1.0 / i as f64;
            ring.sample(&reg, at(i));
        }
        let set = ring.into_set();
        assert!(set.folds() > 0);
        let text = set.to_json().render();
        let parsed = SeriesSet::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, set);
        assert_eq!(parsed.to_json().render(), text);
    }

    #[test]
    fn from_json_defaults_the_adaptive_fields() {
        let text =
            r#"{"interval_s":2,"samples":2,"dropped":0,"time_s":[2,4],"series":{"u":[0.5,0.5]}}"#;
        let set = SeriesSet::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(set.base_interval_s(), 2.0);
        assert_eq!(set.folds(), 0);
        assert_eq!(set.counts(), [1, 1]);
        assert_eq!(set.series("u").unwrap(), [(2.0, 0.5), (4.0, 0.5)]);
    }

    #[test]
    fn from_json_rejects_malformed_sets() {
        for bad in [
            r#"{"samples":0}"#,
            r#"{"interval_s":1,"time_s":[1],"series":{"u":[1,2]}}"#,
            r#"{"interval_s":1,"time_s":[1,2],"counts":[1],"series":{"u":[1,2]}}"#,
            r#"{"interval_s":1,"time_s":[1],"series":{"u":"x"}}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(SeriesSet::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn sampler_process_tracks_a_facility() {
        let sim = Sim::new();
        let env = sim.env();
        let cpu = Facility::new(&env, "cpu", 1);
        let reg = Registry::new();
        reg.facility("cpu", &cpu);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 64);
        env.spawn(run_sampler(env.clone(), reg.clone(), ring.clone()));
        {
            let cpu = cpu.clone();
            sim.spawn(async move {
                // Busy for the first 2s, idle afterwards.
                cpu.use_for(SimDuration::from_secs(2)).await;
            });
        }
        sim.run_until(at(4));
        let set = ring.into_set();
        let util = set.series("cpu.util").unwrap();
        assert_eq!(util.len(), 4);
        assert_eq!(util[0], (1.0, 1.0));
        assert_eq!(util[1], (2.0, 1.0));
        assert!((util[3].1 - 0.5).abs() < 1e-12);
        // The series endpoint equals the facility's own cumulative figure.
        assert_eq!(util[3].1, cpu.utilization());
    }

    #[test]
    fn sampler_doubles_its_own_tick_after_a_fold() {
        let sim = Sim::new();
        let env = sim.env();
        let reg = Registry::new();
        reg.gauge("g", || 1.0);
        let ring = SeriesRing::new(&reg, SimDuration::from_secs(1), 4);
        env.spawn(run_sampler(env.clone(), reg.clone(), ring.clone()));
        sim.run_until(at(40));
        let set = ring.into_set();
        assert!(set.len() <= 4);
        assert!(set.folds() > 0);
        // The sampler held the doubled interval after each fold, so far
        // fewer raw samples than 40 were ever taken.
        assert!(set.raw_samples() < 40);
        assert_eq!(set.times().first(), Some(&1.0));
    }
}
