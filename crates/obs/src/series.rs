//! Time-series sampling of registered metrics into ring buffers.
//!
//! All metrics are sampled together at one instant, so a [`SeriesSet`]
//! stores a single shared time column plus one value column per metric.
//! When the ring capacity is reached the *oldest* sample is dropped across
//! every column at once — retained samples always stay aligned.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use ccdb_des::{Env, SimDuration, SimTime};

use crate::json::Json;
use crate::registry::Registry;

struct Inner {
    interval: SimDuration,
    capacity: usize,
    names: Vec<String>,
    times: VecDeque<f64>,
    values: Vec<VecDeque<f64>>,
    dropped: u64,
}

/// Ring-buffered time series of every metric in a [`Registry`].
///
/// Cheap to clone; clones share the buffers (the sampler process writes,
/// the runner reads at the end).
#[derive(Clone)]
pub struct SeriesSet {
    inner: Rc<RefCell<Inner>>,
}

impl SeriesSet {
    /// Create a series set for the metrics currently in `registry`,
    /// keeping at most `capacity` samples per metric.
    pub fn new(registry: &Registry, interval: SimDuration, capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be positive");
        assert!(!interval.is_zero(), "sample interval must be positive");
        let names = registry.names();
        let values = names.iter().map(|_| VecDeque::new()).collect();
        SeriesSet {
            inner: Rc::new(RefCell::new(Inner {
                interval,
                capacity,
                names,
                times: VecDeque::new(),
                values,
                dropped: 0,
            })),
        }
    }

    /// The sampling interval.
    pub fn interval(&self) -> SimDuration {
        self.inner.borrow().interval
    }

    /// Take one sample of every metric at simulated time `now`. A repeat
    /// call at the time of the previous sample is a no-op (the runner
    /// forces a final sample at the horizon, which may coincide with the
    /// sampler's own last tick).
    pub fn sample(&self, registry: &Registry, now: SimTime) {
        let readings = registry.read_all();
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            readings.len(),
            inner.names.len(),
            "registry changed after SeriesSet::new"
        );
        let t = now.as_secs_f64();
        if inner.times.back() == Some(&t) {
            return;
        }
        if inner.times.len() == inner.capacity {
            inner.times.pop_front();
            for col in &mut inner.values {
                col.pop_front();
            }
            inner.dropped += 1;
        }
        inner.times.push_back(t);
        for (col, v) in inner.values.iter_mut().zip(readings) {
            col.push_back(v);
        }
    }

    /// Retained samples per metric.
    pub fn len(&self) -> usize {
        self.inner.borrow().times.len()
    }

    /// True if nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Metric names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().names.clone()
    }

    /// The `(time_s, value)` points of one metric.
    pub fn series(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        let inner = self.inner.borrow();
        let idx = inner.names.iter().position(|n| n == name)?;
        Some(
            inner
                .times
                .iter()
                .copied()
                .zip(inner.values[idx].iter().copied())
                .collect(),
        )
    }

    /// JSON export: interval, retained/dropped counts, the shared time
    /// column, and one value array per metric (registration order).
    pub fn to_json(&self) -> Json {
        let inner = self.inner.borrow();
        let mut obj = Json::obj();
        obj.set("interval_s", inner.interval.as_secs_f64())
            .set("samples", inner.times.len())
            .set("dropped", inner.dropped)
            .set(
                "time_s",
                Json::Arr(inner.times.iter().map(|&t| Json::Num(t)).collect()),
            );
        let mut series = Json::obj();
        for (name, col) in inner.names.iter().zip(&inner.values) {
            series.set(
                name.clone(),
                Json::Arr(col.iter().map(|&v| Json::Num(v)).collect()),
            );
        }
        obj.set("series", series);
        obj
    }

    /// CSV export: a `time_s,<metric>,...` header then one row per sample.
    pub fn to_csv(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("time_s");
        for name in &inner.names {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');
        for (i, t) in inner.times.iter().enumerate() {
            let _ = write!(out, "{t}");
            for col in &inner.values {
                let _ = write!(out, ",{}", col[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// The sampler process: every `interval` of simulated time, snapshot the
/// registry into `series`. Runs until the simulation horizon cuts it off.
pub async fn run_sampler(env: Env, registry: Registry, series: SeriesSet) {
    let interval = series.interval();
    loop {
        env.hold(interval).await;
        series.sample(&registry, env.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccdb_des::{Facility, Sim};

    #[test]
    fn samples_align_and_ring_drops_oldest() {
        let reg = Registry::new();
        reg.gauge("a", || 1.0);
        reg.gauge("b", || 2.0);
        let set = SeriesSet::new(&reg, SimDuration::from_secs(1), 3);
        for i in 1..=5u64 {
            set.sample(&reg, SimTime::ZERO + SimDuration::from_secs(i));
        }
        assert_eq!(set.len(), 3);
        assert_eq!(set.dropped(), 2);
        let a = set.series("a").unwrap();
        assert_eq!(a.iter().map(|p| p.0).collect::<Vec<_>>(), [3.0, 4.0, 5.0]);
        assert!(set.series("missing").is_none());
    }

    #[test]
    fn duplicate_time_is_ignored() {
        let reg = Registry::new();
        reg.gauge("a", || 1.0);
        let set = SeriesSet::new(&reg, SimDuration::from_secs(1), 8);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        set.sample(&reg, t);
        set.sample(&reg, t);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn csv_and_json_agree_on_shape() {
        let reg = Registry::new();
        reg.gauge("u", || 0.5);
        let set = SeriesSet::new(&reg, SimDuration::from_secs(2), 8);
        set.sample(&reg, SimTime::ZERO + SimDuration::from_secs(2));
        set.sample(&reg, SimTime::ZERO + SimDuration::from_secs(4));
        let csv = set.to_csv();
        assert_eq!(csv, "time_s,u\n2,0.5\n4,0.5\n");
        assert_eq!(
            set.to_json().render(),
            r#"{"interval_s":2,"samples":2,"dropped":0,"time_s":[2,4],"series":{"u":[0.5,0.5]}}"#
        );
    }

    #[test]
    fn sampler_process_tracks_a_facility() {
        let sim = Sim::new();
        let env = sim.env();
        let cpu = Facility::new(&env, "cpu", 1);
        let reg = Registry::new();
        reg.facility("cpu", &cpu);
        let set = SeriesSet::new(&reg, SimDuration::from_secs(1), 64);
        env.spawn(run_sampler(env.clone(), reg.clone(), set.clone()));
        {
            let cpu = cpu.clone();
            sim.spawn(async move {
                // Busy for the first 2s, idle afterwards.
                cpu.use_for(SimDuration::from_secs(2)).await;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(4));
        let util = set.series("cpu.util").unwrap();
        assert_eq!(util.len(), 4);
        assert_eq!(util[0], (1.0, 1.0));
        assert_eq!(util[1], (2.0, 1.0));
        assert!((util[3].1 - 0.5).abs() < 1e-12);
        // The series endpoint equals the facility's own cumulative figure.
        assert_eq!(util[3].1, cpu.utilization());
    }
}
