//! Plain-data snapshots of a [`Registry`](crate::Registry) and their
//! cross-replication merge.
//!
//! A live registry holds `Rc` closures and cannot leave the simulation
//! thread; a [`Snapshot`] is the frozen end-of-run value of every metric,
//! ordinary owned data that is `Send` and can be carried out of worker
//! threads, merged across replications, and exported as JSON. Counters
//! and gauges merge differently — counters sum (they are totals over the
//! measurement window), gauges average (they are levels/ratios) — which
//! is why the snapshot keeps the metric kind.

use crate::json::Json;

/// One frozen metric value, preserving its registry kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SnapValue {
    /// A level (utilisation, ratio, queue length): merged by averaging.
    Gauge(f64),
    /// A monotone total over the window: merged by summing.
    Counter(u64),
}

/// The frozen values of every registered metric, in registration order.
///
/// Plain owned data — unlike the registry it is `Send`, clonable without
/// sharing, and comparable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in registration order.
    pub entries: Vec<(String, SnapValue)>,
}

impl Snapshot {
    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The captured value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<SnapValue> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Insertion-ordered JSON object mirroring `Registry::to_json`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in &self.entries {
            match value {
                SnapValue::Gauge(g) => obj.set(name.clone(), *g),
                SnapValue::Counter(c) => obj.set(name.clone(), *c),
            };
        }
        obj
    }

    /// Kind-preserving JSON: each metric renders as `{"g": <f64>}` or
    /// `{"c": <u64>}` so [`Snapshot::from_json`] can reconstruct the exact
    /// snapshot. The plain [`Snapshot::to_json`] form cannot round-trip: an
    /// integral gauge (e.g. `0`) is indistinguishable from a counter once
    /// rendered as a bare number, and a mis-kinded metric would poison the
    /// [`SnapshotMerger`] shape check.
    pub fn to_json_typed(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in &self.entries {
            let mut cell = Json::obj();
            match value {
                SnapValue::Gauge(g) => cell.set("g", *g),
                SnapValue::Counter(c) => cell.set("c", *c),
            };
            obj.set(name.clone(), cell);
        }
        obj
    }

    /// Parse the [`Snapshot::to_json_typed`] form back into a snapshot.
    /// Non-finite gauges render as `null` and read back as NaN (the
    /// render/parse pair is total); metric order is preserved.
    pub fn from_json(json: &Json) -> Result<Snapshot, String> {
        let Json::Obj(pairs) = json else {
            return Err("snapshot: expected an object".to_string());
        };
        let mut entries = Vec::with_capacity(pairs.len());
        for (name, cell) in pairs {
            let value = if let Some(g) = cell.get("g") {
                SnapValue::Gauge(
                    g.as_f64()
                        .ok_or_else(|| format!("snapshot metric {name:?}: bad gauge value"))?,
                )
            } else if let Some(c) = cell.get("c") {
                SnapValue::Counter(
                    c.as_u64()
                        .ok_or_else(|| format!("snapshot metric {name:?}: bad counter value"))?,
                )
            } else {
                return Err(format!(
                    "snapshot metric {name:?}: expected a {{\"g\":..}} or {{\"c\":..}} cell"
                ));
            };
            entries.push((name.clone(), value));
        }
        Ok(Snapshot { entries })
    }
}

/// Folds per-replication [`Snapshot`]s into a [`MergedSnapshot`] without
/// retaining them: counters are summed, gauges averaged (with min/max
/// kept so the spread across seeds stays visible).
#[derive(Clone, Debug, Default)]
pub struct SnapshotMerger {
    entries: Vec<(String, MergedValue)>,
    merged: u32,
}

#[derive(Clone, Debug)]
enum MergedValue {
    Gauge { sum: f64, min: f64, max: f64 },
    Counter { total: u64 },
}

impl SnapshotMerger {
    /// An empty merger; the first [`push`](SnapshotMerger::push) fixes the
    /// metric names and order.
    pub fn new() -> Self {
        SnapshotMerger::default()
    }

    /// Number of snapshots merged so far.
    pub fn count(&self) -> u32 {
        self.merged
    }

    /// Fold one replication's snapshot in.
    ///
    /// Panics if `snap` does not have exactly the metrics (same names,
    /// same order, same kinds) of the first pushed snapshot — different
    /// shapes mean the replications did not run the same configuration,
    /// which is a harness bug, not a runtime condition.
    pub fn push(&mut self, snap: &Snapshot) {
        if self.merged == 0 {
            self.entries = snap
                .entries
                .iter()
                .map(|(name, value)| {
                    let merged = match value {
                        SnapValue::Gauge(g) => MergedValue::Gauge {
                            sum: *g,
                            min: *g,
                            max: *g,
                        },
                        SnapValue::Counter(c) => MergedValue::Counter { total: *c },
                    };
                    (name.clone(), merged)
                })
                .collect();
            self.merged = 1;
            return;
        }
        assert_eq!(
            self.entries.len(),
            snap.entries.len(),
            "snapshot shape mismatch: {} vs {} metrics",
            self.entries.len(),
            snap.entries.len()
        );
        for ((name, merged), (snap_name, value)) in self.entries.iter_mut().zip(&snap.entries) {
            assert_eq!(name, snap_name, "snapshot name mismatch");
            match (merged, value) {
                (MergedValue::Gauge { sum, min, max }, SnapValue::Gauge(g)) => {
                    *sum += g;
                    *min = min.min(*g);
                    *max = max.max(*g);
                }
                (MergedValue::Counter { total }, SnapValue::Counter(c)) => *total += c,
                _ => panic!("snapshot kind mismatch for metric {name:?}"),
            }
        }
        self.merged += 1;
    }

    /// The merged aggregate (None until at least one snapshot was pushed).
    pub fn finish(&self) -> Option<MergedSnapshot> {
        if self.merged == 0 {
            return None;
        }
        let n = self.merged as f64;
        let entries = self
            .entries
            .iter()
            .map(|(name, merged)| {
                let value = match merged {
                    MergedValue::Gauge { sum, min, max } => MergedGauge {
                        mean: sum / n,
                        min: *min,
                        max: *max,
                    }
                    .into(),
                    MergedValue::Counter { total } => MergedSnapValue::Counter { total: *total },
                };
                (name.clone(), value)
            })
            .collect();
        Some(MergedSnapshot {
            replications: self.merged,
            entries,
        })
    }
}

/// Aggregated gauge statistics across replications.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergedGauge {
    /// Mean of the per-replication values.
    pub mean: f64,
    /// Smallest per-replication value.
    pub min: f64,
    /// Largest per-replication value.
    pub max: f64,
}

/// One metric merged across replications.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MergedSnapValue {
    /// Gauge: mean with min/max spread.
    Gauge(MergedGauge),
    /// Counter: total across all replications.
    Counter {
        /// Sum over all replications.
        total: u64,
    },
}

impl From<MergedGauge> for MergedSnapValue {
    fn from(g: MergedGauge) -> Self {
        MergedSnapValue::Gauge(g)
    }
}

/// Every metric merged across `replications` snapshots, in registration
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedSnapshot {
    /// How many snapshots went into the merge.
    pub replications: u32,
    /// `(name, merged value)` pairs in registration order.
    pub entries: Vec<(String, MergedSnapValue)>,
}

impl MergedSnapshot {
    /// Insertion-ordered JSON object: gauges as `{"mean","min","max"}`,
    /// counters as plain totals.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (name, value) in &self.entries {
            match value {
                MergedSnapValue::Gauge(g) => {
                    let mut inner = Json::obj();
                    inner
                        .set("mean", g.mean)
                        .set("min", g.min)
                        .set("max", g.max);
                    obj.set(name.clone(), inner);
                }
                MergedSnapValue::Counter { total } => {
                    obj.set(name.clone(), *total);
                }
            };
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap(g: f64, c: u64) -> Snapshot {
        Snapshot {
            entries: vec![
                ("util".to_string(), SnapValue::Gauge(g)),
                ("hits".to_string(), SnapValue::Counter(c)),
            ],
        }
    }

    #[test]
    fn registry_snapshot_freezes_values() {
        let reg = Registry::new();
        reg.gauge("g", || 0.5);
        let c = reg.counter("c");
        c.add(3);
        let s = reg.snapshot();
        c.add(10);
        assert_eq!(s.get("g"), Some(SnapValue::Gauge(0.5)));
        assert_eq!(s.get("c"), Some(SnapValue::Counter(3)));
        assert_eq!(s.to_json().render(), r#"{"g":0.5,"c":3}"#);
    }

    #[test]
    fn typed_json_round_trips_exactly() {
        let original = Snapshot {
            entries: vec![
                ("util".to_string(), SnapValue::Gauge(0.125)),
                // Integral gauge: the untyped form would re-read as a
                // counter; the typed form must not.
                ("queue".to_string(), SnapValue::Gauge(0.0)),
                ("hits".to_string(), SnapValue::Counter(42)),
            ],
        };
        let text = original.to_json_typed().render();
        assert_eq!(
            text,
            r#"{"util":{"g":0.125},"queue":{"g":0},"hits":{"c":42}}"#
        );
        let parsed = Snapshot::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn typed_json_carries_nan_gauges_through_null() {
        let original = Snapshot {
            entries: vec![("ratio".to_string(), SnapValue::Gauge(f64::NAN))],
        };
        let text = original.to_json_typed().render();
        assert_eq!(text, r#"{"ratio":{"g":null}}"#);
        let parsed = Snapshot::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
        match parsed.entries[0].1 {
            SnapValue::Gauge(g) => assert!(g.is_nan()),
            _ => panic!("expected gauge"),
        }
        // And re-rendering reproduces the bytes.
        assert_eq!(parsed.to_json_typed().render(), text);
    }

    #[test]
    fn from_json_rejects_malformed_cells() {
        for bad in [
            r#"[1,2]"#,
            r#"{"m":5}"#,
            r#"{"m":{"x":1}}"#,
            r#"{"m":{"c":-1}}"#,
            r#"{"m":{"g":"hi"}}"#,
        ] {
            let doc = crate::Json::parse(bad).unwrap();
            assert!(Snapshot::from_json(&doc).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn merge_sums_counters_and_averages_gauges() {
        let mut m = SnapshotMerger::new();
        m.push(&snap(0.2, 10));
        m.push(&snap(0.6, 32));
        let merged = m.finish().unwrap();
        assert_eq!(merged.replications, 2);
        match merged.entries[0].1 {
            MergedSnapValue::Gauge(g) => {
                assert!((g.mean - 0.4).abs() < 1e-12);
                assert_eq!((g.min, g.max), (0.2, 0.6));
            }
            _ => panic!("expected gauge"),
        }
        assert_eq!(merged.entries[1].1, MergedSnapValue::Counter { total: 42 });
    }

    #[test]
    fn merged_json_is_deterministic() {
        let mut m = SnapshotMerger::new();
        m.push(&snap(0.25, 1));
        m.push(&snap(0.75, 2));
        let json = m.finish().unwrap().to_json().render();
        assert_eq!(
            json,
            r#"{"util":{"mean":0.5,"min":0.25,"max":0.75},"hits":3}"#
        );
    }

    #[test]
    fn empty_merger_yields_none() {
        assert!(SnapshotMerger::new().finish().is_none());
        assert_eq!(SnapshotMerger::new().count(), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_rejected() {
        let mut m = SnapshotMerger::new();
        m.push(&snap(0.2, 10));
        m.push(&Snapshot {
            entries: vec![("util".to_string(), SnapValue::Gauge(0.1))],
        });
    }
}
