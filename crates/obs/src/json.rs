//! A minimal JSON document model with a deterministic serializer and a
//! small recursive-descent parser.
//!
//! No external crates: the simulator's reports must serialize
//! byte-identically across runs, which this guarantees by construction —
//! object keys keep insertion order, and numbers use Rust's shortest
//! round-trip `f64` formatting (itself deterministic). The parser exists
//! for the *reader* path — consuming previously-emitted report documents
//! (including older schema versions) without external dependencies.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (objects only; panics otherwise).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Parse a JSON document. Numbers without a fraction or exponent parse
    /// as [`Json::Int`] / [`Json::UInt`]; everything else as [`Json::Num`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (any numeric variant). `null` reads as NaN:
    /// the writer renders non-finite floats as `null` (JSON has no NaN
    /// literal), so accepting `null` here makes the render/parse pair
    /// total — a document containing e.g. an undefined ratio still
    /// round-trips instead of failing in every numeric reader.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer (numeric variants with an exact
    /// unsigned value).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            Json::UInt(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Scalar-only arrays stay on one line (time series would
                // otherwise dominate the output vertically).
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    self.write(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            _ => self.write(out),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' but found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}' but found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe: operate
                    // on the str slice).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` prints integral floats without a fraction ("2"), which is still
    // a valid JSON number and round-trips exactly.
    let _ = write!(out, "{x}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_string()).render(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut o = Json::obj();
        o.set("z", 1u64).set("a", 2u64);
        assert_eq!(o.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let v = Json::Arr(vec![Json::from(1u64), Json::from(vec![2.0f64, 3.0])]);
        assert_eq!(v.render(), "[1,[2,3]]");
    }

    #[test]
    fn pretty_keeps_scalar_arrays_inline() {
        let mut o = Json::obj();
        o.set("t", vec![1.0f64, 2.0]);
        let s = o.render_pretty();
        assert!(s.contains("\"t\": [1,2]"), "{s}");
    }

    #[test]
    fn parse_roundtrips_rendered_documents() {
        let mut o = Json::obj();
        o.set("s", "a\"b\\c\nd")
            .set("i", 42u64)
            .set("neg", Json::Int(-3))
            .set("x", 1.5f64)
            .set("null", Json::Null)
            .set("flag", true)
            .set("arr", vec![1.0f64, 2.5]);
        let compact = o.render();
        assert_eq!(Json::parse(&compact).unwrap().render(), compact);
        // Pretty output parses back to the same document too.
        assert_eq!(Json::parse(&o.render_pretty()).unwrap().render(), compact);
    }

    #[test]
    fn non_finite_floats_round_trip_as_null_nan() {
        // Render: NaN/±inf have no JSON literal, so they become null ...
        let mut o = Json::obj();
        o.set("rel_precision", f64::NAN).set("count", 1u64);
        let text = o.render();
        assert_eq!(text, r#"{"rel_precision":null,"count":1}"#);
        // ... and parse: numeric readers accept that null back as NaN,
        // so the pair is total and re-rendering reproduces the bytes.
        let doc = Json::parse(&text).unwrap();
        let x = doc.get("rel_precision").unwrap().as_f64().unwrap();
        assert!(x.is_nan());
        assert_eq!(doc.render(), text);
        assert_eq!(Json::Num(x).render(), "null");
        // Integer readers still reject null.
        assert_eq!(doc.get("rel_precision").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a":{"b":[1,2.5,"x"]},"n":-7}"#).unwrap();
        assert_eq!(
            doc.get("a")
                .and_then(|a| a.get("b"))
                .unwrap()
                .items()
                .unwrap()
                .len(),
            3
        );
        let b = doc.get("a").unwrap().get("b").unwrap();
        assert_eq!(b.items().unwrap()[0].as_u64(), Some(1));
        assert_eq!(b.items().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(b.items().unwrap()[2].as_str(), Some("x"));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(-7.0));
        assert_eq!(doc.get("n").unwrap().as_u64(), None);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        // Raw multi-byte UTF-8 and \u escapes both decode.
        let doc = Json::parse(r#""snow ☃ man ☃""#).unwrap();
        assert_eq!(doc.as_str(), Some("snow \u{2603} man \u{2603}"));
        let escaped_input = "\"snow \\u2603 man\"";
        let esc = Json::parse(escaped_input).unwrap();
        assert_eq!(esc.as_str(), Some("snow \u{2603} man"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut o = Json::obj();
            o.set("x", 0.1f64 + 0.2).set("s", "hi").set("n", Json::Null);
            o.render()
        };
        assert_eq!(build(), build());
    }
}
