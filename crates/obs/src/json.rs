//! A minimal JSON document model with a deterministic serializer.
//!
//! No external crates: the simulator's reports must serialize
//! byte-identically across runs, which this guarantees by construction —
//! object keys keep insertion order, and numbers use Rust's shortest
//! round-trip `f64` formatting (itself deterministic).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair (objects only; panics otherwise).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value.into())),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                // Scalar-only arrays stay on one line (time series would
                // otherwise dominate the output vertically).
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    self.write(out);
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            _ => self.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` prints integral floats without a fraction ("2"), which is still
    // a valid JSON number and round-trips exactly.
    let _ = write!(out, "{x}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".to_string()).render(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn objects_keep_insertion_order() {
        let mut o = Json::obj();
        o.set("z", 1u64).set("a", 2u64);
        assert_eq!(o.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let v = Json::Arr(vec![Json::from(1u64), Json::from(vec![2.0f64, 3.0])]);
        assert_eq!(v.render(), "[1,[2,3]]");
    }

    #[test]
    fn pretty_keeps_scalar_arrays_inline() {
        let mut o = Json::obj();
        o.set("t", vec![1.0f64, 2.0]);
        let s = o.render_pretty();
        assert!(s.contains("\"t\": [1,2]"), "{s}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut o = Json::obj();
            o.set("x", 0.1f64 + 0.2).set("s", "hi").set("n", Json::Null);
            o.render()
        };
        assert_eq!(build(), build());
    }
}
