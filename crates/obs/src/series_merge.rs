//! Cross-replication merging of adaptive time series.
//!
//! [`SeriesMerger`] mirrors [`SnapshotMerger`](crate::SnapshotMerger):
//! per-replication [`SeriesSet`]s fold into one [`MergedSeries`] holding
//! mean/min/max per grid point. The wrinkle a snapshot does not have is
//! the *grid*: adaptive sampling may leave replications at different
//! effective intervals, so the merger aligns everything onto the
//! coarsest grid seen ("coarsest interval wins").
//!
//! Alignment leans on two properties of the adaptive ring: the fold
//! schedule depends only on (base interval, capacity, horizon) — never
//! on sampled values — so replications of one configuration normally
//! arrive with *identical* grids; and each fold merges adjacent buckets
//! keeping the later bucket's end time, so a coarser grid's end times
//! are a bitwise subset of any finer grid from the same schedule. That
//! makes exact `f64` equality the correct alignment test, and anything
//! that fails it is a harness bug worth a panic, not a runtime
//! condition.
//!
//! When regridding *accumulated* state onto a coarser incoming grid, the
//! mean column stays exact (count-weighted sums commute with folding);
//! min/max become a conservative envelope (min-of-mins / max-of-maxes
//! over the folded buckets). In practice the identical-grid fast path
//! makes regridding rare.

use crate::json::Json;
use crate::series::SeriesSet;

/// Folds per-replication [`SeriesSet`]s into a [`MergedSeries`] without
/// retaining them. The first push adopts that set's grid; later pushes
/// must carry the same metric names and base interval, and their grids
/// are aligned by folding whichever side is finer.
#[derive(Clone, Debug, Default)]
pub struct SeriesMerger {
    merged: u32,
    grid: Option<MergeGrid>,
}

#[derive(Clone, Debug)]
struct MergeGrid {
    base_interval_s: f64,
    interval_s: f64,
    names: Vec<String>,
    times: Vec<f64>,
    counts: Vec<u64>,
    cols: Vec<Vec<PointAcc>>,
}

/// Accumulated per-grid-point state: sums of per-replication bucket
/// means, plus the envelope across replications.
#[derive(Clone, Copy, Debug)]
struct PointAcc {
    sum: f64,
    min: f64,
    max: f64,
}

/// For each coarse bucket, the half-open range of fine buckets that fold
/// into it. Panics unless the coarse end times are a bitwise subset of
/// the fine end times (see the module docs for why they must be).
fn bucket_ranges(fine_times: &[f64], coarse_times: &[f64]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(coarse_times.len());
    let mut i = 0usize;
    for &end in coarse_times {
        let start = i;
        while i < fine_times.len() && fine_times[i] < end {
            i += 1;
        }
        assert!(
            i < fine_times.len() && fine_times[i] == end,
            "series grid mismatch: no fine bucket ends at t={end}"
        );
        i += 1;
        ranges.push((start, i));
    }
    assert_eq!(
        i,
        fine_times.len(),
        "series grid mismatch: fine grid extends past the coarse grid"
    );
    ranges
}

impl SeriesMerger {
    /// An empty merger; the first [`push`](SeriesMerger::push) adopts
    /// that set's metric names and grid.
    pub fn new() -> Self {
        SeriesMerger::default()
    }

    /// Number of series merged so far.
    pub fn count(&self) -> u32 {
        self.merged
    }

    /// Fold one replication's series in.
    ///
    /// Panics if `set` does not carry exactly the metrics (same names,
    /// same order) and base interval of the first pushed set, or if the
    /// grids cannot be aligned by folding — all of which mean the
    /// replications did not run the same sampling schedule, a harness
    /// bug rather than a runtime condition.
    pub fn push(&mut self, set: &SeriesSet) {
        let Some(grid) = &mut self.grid else {
            self.grid = Some(MergeGrid {
                base_interval_s: set.base_interval_s,
                interval_s: set.interval_s,
                names: set.names.clone(),
                times: set.times.clone(),
                counts: set.counts.clone(),
                cols: set
                    .values
                    .iter()
                    .map(|col| {
                        col.iter()
                            .map(|&v| PointAcc {
                                sum: v,
                                min: v,
                                max: v,
                            })
                            .collect()
                    })
                    .collect(),
            });
            self.merged = 1;
            return;
        };
        assert_eq!(
            grid.names, set.names,
            "series shape mismatch: metric names differ"
        );
        assert!(
            grid.base_interval_s == set.base_interval_s,
            "series base interval mismatch: {} vs {}",
            grid.base_interval_s,
            set.base_interval_s
        );
        if set.interval_s > grid.interval_s {
            // Incoming grid is coarser: regrid the accumulated state onto
            // it before accumulating.
            let ranges = bucket_ranges(&grid.times, &set.times);
            for (j, &(start, end)) in ranges.iter().enumerate() {
                let total: u64 = grid.counts[start..end].iter().sum();
                assert!(
                    total == set.counts[j],
                    "series grid mismatch: bucket at t={} covers {} samples vs {}",
                    set.times[j],
                    total,
                    set.counts[j]
                );
            }
            for col in &mut grid.cols {
                let folded: Vec<PointAcc> = ranges
                    .iter()
                    .map(|&(start, end)| {
                        let total: u64 = grid.counts[start..end].iter().sum();
                        let mut sum = 0.0;
                        let mut min = f64::INFINITY;
                        let mut max = f64::NEG_INFINITY;
                        for (acc, &c) in col[start..end].iter().zip(&grid.counts[start..end]) {
                            sum += acc.sum * c as f64;
                            min = min.min(acc.min);
                            max = max.max(acc.max);
                        }
                        PointAcc {
                            sum: sum / total as f64,
                            min,
                            max,
                        }
                    })
                    .collect();
                *col = folded;
            }
            grid.interval_s = set.interval_s;
            grid.times = set.times.clone();
            grid.counts = set.counts.clone();
        }
        if set.times == grid.times {
            // Fast (and, with a value-independent fold schedule, the
            // usual) path: identical grids accumulate point-wise.
            assert_eq!(
                grid.counts, set.counts,
                "series grid mismatch: counts differ"
            );
            for (col, values) in grid.cols.iter_mut().zip(&set.values) {
                for (acc, &v) in col.iter_mut().zip(values) {
                    acc.sum += v;
                    acc.min = acc.min.min(v);
                    acc.max = acc.max.max(v);
                }
            }
        } else {
            // Incoming set is finer: fold it onto the accumulated grid.
            let ranges = bucket_ranges(&set.times, &grid.times);
            for (j, &(start, end)) in ranges.iter().enumerate() {
                let total: u64 = set.counts[start..end].iter().sum();
                assert!(
                    total == grid.counts[j],
                    "series grid mismatch: bucket at t={} covers {} samples vs {}",
                    grid.times[j],
                    total,
                    grid.counts[j]
                );
            }
            for (col, values) in grid.cols.iter_mut().zip(&set.values) {
                for (acc, &(start, end)) in col.iter_mut().zip(&ranges) {
                    let total: u64 = set.counts[start..end].iter().sum();
                    let mut sum = 0.0;
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    for (&v, &c) in values[start..end].iter().zip(&set.counts[start..end]) {
                        sum += v * c as f64;
                        min = min.min(v);
                        max = max.max(v);
                    }
                    let mean = sum / total as f64;
                    acc.sum += mean;
                    acc.min = acc.min.min(min);
                    acc.max = acc.max.max(max);
                }
            }
        }
        self.merged += 1;
    }

    /// The merged series (None until at least one set was pushed).
    pub fn finish(&self) -> Option<MergedSeries> {
        let grid = self.grid.as_ref()?;
        let n = self.merged as f64;
        let entries = grid
            .names
            .iter()
            .zip(&grid.cols)
            .map(|(name, col)| {
                let merged = MergedSeriesCol {
                    mean: col.iter().map(|acc| acc.sum / n).collect(),
                    min: col.iter().map(|acc| acc.min).collect(),
                    max: col.iter().map(|acc| acc.max).collect(),
                };
                (name.clone(), merged)
            })
            .collect();
        Some(MergedSeries {
            replications: self.merged,
            base_interval_s: grid.base_interval_s,
            interval_s: grid.interval_s,
            times: grid.times.clone(),
            counts: grid.counts.clone(),
            entries,
        })
    }
}

/// One metric's columns after merging: per grid point, the mean of the
/// per-replication bucket means plus the min/max envelope across
/// replications.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedSeriesCol {
    /// Mean of the per-replication bucket means.
    pub mean: Vec<f64>,
    /// Smallest value any replication folded into this bucket.
    pub min: Vec<f64>,
    /// Largest value any replication folded into this bucket.
    pub max: Vec<f64>,
}

/// Every metric's series merged across `replications` runs, on the
/// common (coarsest) grid.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedSeries {
    /// How many series went into the merge.
    pub replications: u32,
    /// The interval the samplers started with (seconds).
    pub base_interval_s: f64,
    /// The common grid's effective interval (seconds).
    pub interval_s: f64,
    /// Shared time column: bucket end times (exact raw-sample times).
    pub times: Vec<f64>,
    /// Raw samples per bucket (per replication; identical across them).
    pub counts: Vec<u64>,
    /// `(name, merged columns)` pairs in registration order.
    pub entries: Vec<(String, MergedSeriesCol)>,
}

impl MergedSeries {
    /// Grid points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The merged columns of one metric, if present.
    pub fn col(&self, name: &str) -> Option<&MergedSeriesCol> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, col)| col)
    }

    /// JSON export mirroring [`SeriesSet::to_json`], with each metric as
    /// a `{"mean":[..],"min":[..],"max":[..]}` object.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("replications", self.replications)
            .set("interval_s", self.interval_s)
            .set("base_interval_s", self.base_interval_s)
            .set("samples", self.times.len())
            .set(
                "time_s",
                Json::Arr(self.times.iter().map(|&t| Json::Num(t)).collect()),
            )
            .set(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::UInt(c)).collect()),
            );
        let mut series = Json::obj();
        for (name, col) in &self.entries {
            let mut cell = Json::obj();
            cell.set(
                "mean",
                Json::Arr(col.mean.iter().map(|&v| Json::Num(v)).collect()),
            )
            .set(
                "min",
                Json::Arr(col.min.iter().map(|&v| Json::Num(v)).collect()),
            )
            .set(
                "max",
                Json::Arr(col.max.iter().map(|&v| Json::Num(v)).collect()),
            );
            series.set(name.clone(), cell);
        }
        obj.set("series", series);
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(times: &[f64], counts: &[u64], values: &[f64], interval_s: f64) -> SeriesSet {
        assert_eq!(times.len(), counts.len());
        assert_eq!(times.len(), values.len());
        let folds = (interval_s / 1.0).log2() as u32;
        SeriesSet {
            base_interval_s: 1.0,
            interval_s,
            folds,
            names: vec!["v".to_string()],
            times: times.to_vec(),
            counts: counts.to_vec(),
            values: vec![values.to_vec()],
        }
    }

    #[test]
    fn identical_grids_merge_pointwise() {
        let mut m = SeriesMerger::new();
        m.push(&set(&[1.0, 2.0], &[1, 1], &[0.2, 0.4], 1.0));
        m.push(&set(&[1.0, 2.0], &[1, 1], &[0.6, 0.8], 1.0));
        let merged = m.finish().unwrap();
        assert_eq!(merged.replications, 2);
        assert_eq!(merged.times, [1.0, 2.0]);
        let col = merged.col("v").unwrap();
        assert_eq!(col.mean, [0.4, 0.6000000000000001]);
        assert_eq!(col.min, [0.2, 0.4]);
        assert_eq!(col.max, [0.6, 0.8]);
    }

    #[test]
    fn finer_incoming_series_folds_onto_the_grid() {
        let mut m = SeriesMerger::new();
        // Coarse first: buckets end at t=2 (2 raw samples) and t=4 (2).
        m.push(&set(&[2.0, 4.0], &[2, 2], &[1.5, 3.5], 2.0));
        // Fine second: raw samples at t=1..4.
        m.push(&set(
            &[1.0, 2.0, 3.0, 4.0],
            &[1, 1, 1, 1],
            &[10.0, 20.0, 30.0, 40.0],
            1.0,
        ));
        let merged = m.finish().unwrap();
        assert_eq!(merged.times, [2.0, 4.0]);
        assert_eq!(merged.counts, [2, 2]);
        let col = merged.col("v").unwrap();
        // Fine buckets fold to means 15 and 35 before averaging in.
        assert_eq!(col.mean, [(1.5 + 15.0) / 2.0, (3.5 + 35.0) / 2.0]);
        assert_eq!(col.min, [1.5, 3.5]);
        assert_eq!(col.max, [20.0, 40.0]);
    }

    #[test]
    fn coarser_incoming_series_regrids_the_accumulated_state() {
        let mut m = SeriesMerger::new();
        m.push(&set(
            &[1.0, 2.0, 3.0, 4.0],
            &[1, 1, 1, 1],
            &[10.0, 20.0, 30.0, 40.0],
            1.0,
        ));
        m.push(&set(&[2.0, 4.0], &[2, 2], &[1.5, 3.5], 2.0));
        let merged = m.finish().unwrap();
        assert_eq!(merged.interval_s, 2.0);
        assert_eq!(merged.times, [2.0, 4.0]);
        let col = merged.col("v").unwrap();
        // Same buckets as the finer-incoming test, so the same means.
        assert_eq!(col.mean, [(15.0 + 1.5) / 2.0, (35.0 + 3.5) / 2.0]);
        // Envelope is conservative: it keeps the fine extremes.
        assert_eq!(col.min, [1.5, 3.5]);
        assert_eq!(col.max, [20.0, 40.0]);
    }

    #[test]
    fn unequal_weight_buckets_merge_by_count() {
        let mut m = SeriesMerger::new();
        // Adaptive grid: exact first point, folded middle, raw tail.
        m.push(&set(&[1.0, 3.0, 4.0], &[1, 2, 1], &[1.0, 2.5, 4.0], 2.0));
        m.push(&set(
            &[1.0, 2.0, 3.0, 4.0],
            &[1, 1, 1, 1],
            &[2.0, 4.0, 6.0, 8.0],
            1.0,
        ));
        let merged = m.finish().unwrap();
        assert_eq!(merged.times, [1.0, 3.0, 4.0]);
        assert_eq!(merged.counts, [1, 2, 1]);
        let col = merged.col("v").unwrap();
        assert_eq!(col.mean, [1.5, (2.5 + 5.0) / 2.0, 6.0]);
    }

    #[test]
    fn merged_json_is_deterministic_and_shaped() {
        let mut m = SeriesMerger::new();
        m.push(&set(&[1.0, 2.0], &[1, 1], &[0.25, 0.75], 1.0));
        m.push(&set(&[1.0, 2.0], &[1, 1], &[0.75, 0.25], 1.0));
        let json = m.finish().unwrap().to_json().render();
        assert_eq!(
            json,
            r#"{"replications":2,"interval_s":1,"base_interval_s":1,"samples":2,"time_s":[1,2],"counts":[1,1],"series":{"v":{"mean":[0.5,0.5],"min":[0.25,0.25],"max":[0.75,0.75]}}}"#
        );
    }

    #[test]
    fn empty_merger_yields_none() {
        assert!(SeriesMerger::new().finish().is_none());
        assert_eq!(SeriesMerger::new().count(), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_names_rejected() {
        let mut m = SeriesMerger::new();
        m.push(&set(&[1.0], &[1], &[0.5], 1.0));
        let mut other = set(&[1.0], &[1], &[0.5], 1.0);
        other.names = vec!["w".to_string()];
        m.push(&other);
    }

    #[test]
    #[should_panic(expected = "grid mismatch")]
    fn misaligned_grids_rejected() {
        let mut m = SeriesMerger::new();
        m.push(&set(&[2.0, 4.0], &[2, 2], &[1.0, 2.0], 2.0));
        // End time 3.0 never appears in the coarse grid.
        m.push(&set(&[1.0, 3.0], &[1, 1], &[1.0, 2.0], 1.0));
    }
}
